//! A live replicated-decision service, watched as it runs.
//!
//! Three acts tie all three execution styles to one question — "what
//! does the group decide, and when?":
//!
//! 1. **Online dashboard**: a 4-node `DecisionService` fleet (consensus
//!    over the membership-emulated `P`) rides a crash and a healed
//!    partition while clients keep submitting commands; every fault,
//!    view change, decision and post-heal state transfer streams out as
//!    it happens.
//! 2. **Campaign**: the same scenario fanned across seeds through
//!    `rfd_sim::Campaign` — the summary a capacity planner would read.
//! 3. **Stream**: the batch counterpart — the same rotating-coordinator
//!    core in the simulator under an oracle `P`, its decisions surfaced
//!    live by `StreamRun`'s `Decided` events.
//!
//! Run with: `cargo run --release --example live_service`

use realistic_failure_detectors::algo::consensus::{ConsensusAutomaton, RotatingConsensus};
use realistic_failure_detectors::core::oracles::{Oracle, PerfectOracle};
use realistic_failure_detectors::core::{FailurePattern, ProcessId, ProcessSet, Time};
use realistic_failure_detectors::net::clock::Nanos;
use realistic_failure_detectors::net::estimator::ChenEstimator;
use realistic_failure_detectors::net::online::{Fault, FaultSchedule, OnlineScenario};
use realistic_failure_detectors::net::service::{
    run_service, ServiceEvent, ServiceRunner, ServiceScenario,
};
use realistic_failure_detectors::sim::{
    ticks_for_rounds, Campaign, SimConfig, StopCondition, StreamEvent, StreamRun,
};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn chen() -> ChenEstimator {
    ChenEstimator::new(ms(150), 16, ms(600))
}

fn scenario(seed: u64) -> ServiceScenario {
    let mut s = ServiceScenario {
        online: OnlineScenario {
            n: 4,
            duration: ms(24_000),
            seed,
            heal_merge: true,
            // The cut leaves a 3-node quorum deciding (p3 must catch up
            // by state transfer after the heal); the old coordinator
            // only crashes once the fleet has re-merged.
            schedule: FaultSchedule::new()
                .at(ms(5_000), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(13_000), Fault::Heal)
                .at(ms(18_000), Fault::Crash(p(0))),
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    };
    for i in 0..8u64 {
        // Clients avoid the crashed coordinator and the cut minority.
        s = s.command(ms(1_000 + i * 2_500), p(1 + (i as usize) % 2), 100 + i);
    }
    s
}

fn main() {
    // ---- act 1: the dashboard ------------------------------------------
    println!("== act 1: live decision service (cut+heal p3, then crash p0) ==");
    let mut runner = ServiceRunner::new(chen(), scenario(0));
    while let Some(events) = runner.step() {
        for event in events {
            match event {
                ServiceEvent::Fault { at, fault } => {
                    println!("[t={:>6}ms] ⚡ fault: {fault:?}", at.as_millis());
                }
                ServiceEvent::Submitted { at, node, value } => {
                    println!(
                        "[t={:>6}ms] client → {node}: submit {value}",
                        at.as_millis()
                    );
                }
                ServiceEvent::Decided { at, node, decision } if node == p(1) => {
                    println!(
                        "[t={:>6}ms] {node} decided log[{}] = {} (view {}:{})",
                        at.as_millis(),
                        decision.index,
                        decision.value,
                        decision.view.id,
                        decision.view.member_set(4)
                    );
                }
                ServiceEvent::ViewInstalled { at, node, view } if node == p(1) => {
                    println!(
                        "[t={:>6}ms] {node} installed view {}: {}",
                        at.as_millis(),
                        view.id,
                        view.members
                    );
                }
                ServiceEvent::Transferred {
                    at,
                    node,
                    adopted,
                    lost,
                } => {
                    println!(
                        "[t={:>6}ms] {node} state transfer: +{adopted} entries ({lost} lost)",
                        at.as_millis()
                    );
                }
                _ => {}
            }
        }
    }
    let report = runner.report();
    assert!(report.agreement_holds(), "logs must never fork");
    assert!(report.live_logs_converged(), "healed fleet must converge");
    assert_eq!(report.decided_values().len(), 8, "every command decided");
    assert!(
        report.membership.decisions_transferred > 0,
        "the healed minority catches up by state transfer"
    );
    println!(
        "final log ({} entries): {:?}",
        report.decided_len(),
        report.decided_values()
    );
    println!(
        "transferred {} entries post-heal, {} lost\n",
        report.membership.decisions_transferred, report.membership.decisions_lost
    );

    // ---- act 2: the campaign -------------------------------------------
    println!("== act 2: the same scenario across 6 seeds (campaign API) ==");
    let reports = Campaign::sweep(0..6).map(|seed| {
        let report = run_service(chen(), &scenario(seed));
        assert!(report.agreement_holds());
        (
            report.decided_len(),
            report.membership.decisions_transferred,
            report.membership.view_changes,
        )
    });
    for (seed, (decided, transferred, views)) in reports.iter().enumerate() {
        println!("seed {seed}: {decided} decided, {transferred} transferred, {views} view changes");
    }
    let avg = reports.iter().map(|r| r.0).sum::<u64>() as f64 / reports.len() as f64;
    println!("mean decided throughput: {:.2}/s\n", avg / 24.0);

    // ---- act 3: the batch counterpart, streamed ------------------------
    println!("== act 3: batch rotating-coordinator consensus via StreamRun ==");
    let n = 4;
    let pattern = FailurePattern::new(n).with_crash(p(0), Time::new(30));
    let rounds = 400;
    let history = PerfectOracle::new(6, 2).generate(&pattern, ticks_for_rounds(n, rounds), 7);
    let proposals: Vec<u64> = vec![104, 104, 104, 104];
    let automata = ConsensusAutomaton::<RotatingConsensus<u64>>::fleet(&proposals);
    let config = SimConfig::new(7, rounds).with_stop(StopCondition::EachCorrectOutput(1));
    let mut decided = 0;
    for event in StreamRun::new(&pattern, &history, automata, &config) {
        if let StreamEvent::Decided {
            process,
            round,
            value,
        } = event
        {
            println!("round {round}: {process} decided {value}");
            assert_eq!(value, 104, "validity");
            decided += 1;
        }
    }
    assert!(decided >= 3, "every survivor decides");
    println!("online service and batch algorithm agree on the decision pipeline");
}
