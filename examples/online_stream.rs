//! Online detection: the streaming run driver and the live QoS monitors.
//!
//! The paper's §1.3 point: practitioners run failure detection as a
//! long-lived *service*, not a batch job. This example shows both new
//! online surfaces:
//!
//! 1. `sim::StreamRun` — a consensus run consumed incrementally: crashes,
//!    emulated-detector transitions and decisions arrive as typed events
//!    while the run executes.
//! 2. `net::OnlineRunner` — a heartbeat fleet under churn (crash, then
//!    recovery, then a final crash), with per-pair QoS read *live* from
//!    incremental monitors that provably equal the batch accounting.
//!
//! Run with: `cargo run --example online_stream`

use realistic_failure_detectors::algo::consensus::FloodSetConsensus;
use realistic_failure_detectors::algo::reduction::PerfectEmulation;
use realistic_failure_detectors::core::oracles::{Oracle, PerfectOracle};
use realistic_failure_detectors::core::{FailurePattern, ProcessId, Time};
use realistic_failure_detectors::net::clock::Nanos;
use realistic_failure_detectors::net::estimator::JacobsonEstimator;
use realistic_failure_detectors::net::online::{
    Fault, FaultSchedule, OnlineEvent, OnlineRunner, OnlineScenario,
};
use realistic_failure_detectors::sim::{ticks_for_rounds, SimConfig, StreamEvent, StreamRun};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn main() {
    // ---- 1. Streaming a simulated run ---------------------------------
    let n = 4;
    let rounds = 400;
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(2), Time::new(60));
    let history = PerfectOracle::new(6, 3).generate(&pattern, ticks_for_rounds(n, rounds), 42);
    let automata = PerfectEmulation::<FloodSetConsensus<u64>>::fleet(n);
    let config = SimConfig::new(42, rounds);
    let mut stream = StreamRun::new(&pattern, &history, automata, &config);
    println!("== streaming the T_(D⇒P) reduction run ==");
    let mut transitions = 0u32;
    while let Some(event) = stream.next_event() {
        match event {
            StreamEvent::Crashed { process, at } => {
                println!("[t={at:?}] {process} crashed");
            }
            StreamEvent::SuspectsChanged {
                process, suspects, ..
            } => {
                transitions += 1;
                println!(
                    "[round {}] {process} emulated output(P) = {suspects}",
                    stream.scheduler().rounds()
                );
            }
            StreamEvent::Output { event, .. } => {
                println!(
                    "[t={:?}] {} delivered output {:?}",
                    event.time, event.process, event.value
                );
            }
            StreamEvent::Decided { process, value, .. } => {
                println!("{process} decided {value:?}");
            }
            StreamEvent::Delivery(_) => {}
        }
    }
    let result = stream.finish();
    println!(
        "run complete: {} rounds, {} deliveries, {} detector transitions observed live\n",
        result.trace.rounds, result.trace.messages_delivered, transitions
    );

    // ---- 2. The online runner under churn -----------------------------
    let p2 = ProcessId::new(2);
    let scenario = OnlineScenario {
        n: 4,
        duration: ms(24_000),
        schedule: FaultSchedule::new()
            .at(ms(6_000), Fault::Crash(p2))
            .at(ms(12_000), Fault::Recover(p2))
            .at(ms(18_000), Fault::Crash(p2)),
        ..OnlineScenario::default()
    };
    let mut runner =
        OnlineRunner::new(JacobsonEstimator::new(4.0, ms(500)), scenario).with_batch_shadow();
    println!("== online detection under churn (jacobson, n=4) ==");
    while let Some(events) = runner.step() {
        for event in events {
            match event {
                OnlineEvent::Fault { at, fault } => println!("[t={at}] fault: {fault:?}"),
                OnlineEvent::Suspicion {
                    observer,
                    target,
                    at,
                    suspected,
                } => {
                    if observer == ProcessId::new(0) {
                        println!(
                            "[t={at}] {observer} now {} {target}",
                            if suspected { "suspects" } else { "trusts" }
                        );
                    }
                }
            }
        }
    }
    let report = runner
        .report(ProcessId::new(0), p2)
        .expect("p0 monitors p2");
    println!(
        "p0 about p2: T_D={:?}  λ_M={:.3}/s  T_M={}  P_A={:.4}",
        report.detection_time,
        report.mistake_rate,
        report.avg_mistake_duration,
        report.query_accuracy
    );
    assert!(
        runner.monitor_matches_batch(ProcessId::new(0), p2),
        "incremental QoS must equal the batch accounting exactly"
    );
    println!("live monitor == batch finalize: verified");
}
