//! Wall-clock churn over **real UDP sockets**: the online runtime off
//! the simulator.
//!
//! Two acts, both over loopback `UdpSocket`s wrapped in the
//! `FaultyTransport` fault plane and paced by the `SystemClock`:
//!
//! 1. A detector fleet rides a crash → recover → crash schedule; the
//!    `OnlineRunner` streams fault/suspicion events as they happen and
//!    the live per-pair `QosMonitor`s deliver the final QoS report.
//! 2. A heal-merge membership fleet is partitioned and healed; the
//!    `MembershipWatcher` reports split-brain duration and the time the
//!    healed sides took to reconverge onto one view.
//!
//! Everything the simulated experiments (E11, E12) measure, measured
//! again on a genuine network stack — the paper's §1.3 "realistic"
//! deployment, literally.
//!
//! Run with: `cargo run --release --example udp_churn`

use realistic_failure_detectors::core::{ProcessId, ProcessSet};
use realistic_failure_detectors::net::clock::{Nanos, SystemClock};
use realistic_failure_detectors::net::estimator::ChenEstimator;
use realistic_failure_detectors::net::online::{
    run_membership_churn_over, Fault, FaultSchedule, OnlineEvent, OnlineRunner, OnlineScenario,
};
use realistic_failure_detectors::net::transport::faulty_cluster;
use realistic_failure_detectors::net::transport::udp::loopback_cluster;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn chen() -> ChenEstimator {
    ChenEstimator::new(ms(100), 16, ms(400))
}

fn main() -> std::io::Result<()> {
    // ---- 1. Detector fleet under churn ---------------------------------
    let victim = p(2);
    let scenario = OnlineScenario {
        n: 3,
        period: ms(50),
        sample_every: ms(10),
        duration: ms(4_200),
        schedule: FaultSchedule::new()
            .at(ms(1_000), Fault::Crash(victim))
            .at(ms(2_000), Fault::Recover(victim))
            .at(ms(3_000), Fault::Crash(victim)),
        ..OnlineScenario::default()
    };
    let clock = SystemClock::new();
    let transports = loopback_cluster(scenario.n)?;
    let (nodes, injector) = faulty_cluster(transports, 0.0, 0, clock.clone());
    let mut runner = OnlineRunner::over(chen(), scenario, nodes, injector.clone(), clock);

    println!("== act 1: 3-node chen fleet on UDP loopback, crash→recover→crash p2 ==");
    while let Some(events) = runner.step() {
        for event in events {
            match event {
                OnlineEvent::Fault { at, fault } => {
                    println!("[t={:>6}ms] ⚡ fault: {fault:?}", at.as_millis());
                }
                OnlineEvent::Suspicion {
                    observer,
                    target,
                    at,
                    suspected,
                } if observer == p(0) => {
                    println!(
                        "[t={:>6}ms] {observer} now {} {target}",
                        at.as_millis(),
                        if suspected { "suspects" } else { "trusts" }
                    );
                }
                OnlineEvent::Suspicion { .. } => {}
            }
        }
    }
    let (forwarded, dropped) = injector.stats();
    println!("fault plane: {forwarded} datagrams forwarded, {dropped} dropped");
    for observer in [p(0), p(1)] {
        let r = runner.report(observer, victim).expect("monitored pair");
        println!(
            "{observer} about p2: T_D={}  mistakes={}  λ_M={:.3}/s  P_A={:.4}",
            r.detection_time
                .map_or("missed".into(), |d| format!("{}ms", d.as_millis())),
            r.mistakes,
            r.mistake_rate,
            r.query_accuracy
        );
        assert!(
            r.detection_time.is_some(),
            "{observer} must detect the final crash over real sockets"
        );
        assert!(
            r.mistakes >= 1,
            "the transient outage must register as a mistake episode"
        );
    }

    // ---- 2. Heal-merge membership under a real partition ---------------
    let mut minority = ProcessSet::empty();
    minority.insert(p(2));
    minority.insert(p(3));
    let scenario = OnlineScenario {
        n: 4,
        period: ms(50),
        sample_every: ms(10),
        duration: ms(5_000),
        schedule: FaultSchedule::new()
            .at(ms(1_000), Fault::Partition(minority))
            .at(ms(2_400), Fault::Heal),
        heal_merge: true,
        ..OnlineScenario::default()
    };
    println!("\n== act 2: 4-node heal-merge membership, partition {{p2,p3}} then heal ==");
    let clock = SystemClock::new();
    let transports = loopback_cluster(scenario.n)?;
    let (nodes, injector) = faulty_cluster(transports, 0.0, 0, clock.clone());
    let report = run_membership_churn_over(chen(), &scenario, nodes, injector, clock);
    let reconverge = report.time_to_reconverge[0];
    println!(
        "split-brain: {}ms   time-to-reconverge after heal: {}   view changes: {}   by-fiat false exclusions: {}",
        report.split_brain_duration.as_millis(),
        reconverge.map_or("never".into(), |d| format!("{}ms", d.as_millis())),
        report.view_changes,
        report.false_exclusions
    );
    assert!(
        !report.false_exclusions.is_empty(),
        "the cut minority is excluded by fiat while partitioned"
    );
    let reconverge = reconverge.expect("healed sides must merge back into one view");
    // Generous wall-clock bound (typical: well under 100 ms) so a loaded
    // CI runner cannot flake the smoke run.
    assert!(
        reconverge < ms(2_000),
        "reconvergence took {reconverge} — merge did not engage"
    );
    println!("healed split-brain merged back into a single authoritative view");
    Ok(())
}
