//! Group membership as a Perfect failure detector — §1.3, end to end.
//!
//! The paper's closing observation: real systems emulate `P` with a
//! membership service — "when a process is suspected, it is excluded
//! from the group: every suspicion hence turns out to be accurate."
//!
//! This example runs a five-node membership over the lossy virtual
//! network, crashes two nodes, then *formally verifies* — with the same
//! class checker used for the theory experiments — that the emulated
//! detector history is in class `P`.
//!
//! Run with: `cargo run --example membership_emulates_p`

use realistic_failure_detectors::core::{class_report, CheckParams, ClassId, ProcessId, Time};
use realistic_failure_detectors::net::clock::Nanos;
use realistic_failure_detectors::net::estimator::ChenEstimator;
use realistic_failure_detectors::net::membership::{run_membership, MembershipScenario};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn main() {
    let scenario = MembershipScenario {
        n: 5,
        crashes: vec![
            (ProcessId::new(2), ms(5_000)),
            (ProcessId::new(0), ms(12_000)), // the coordinator itself
        ],
        period: ms(50),
        loss: 0.05,
        delay: (ms(1), ms(5)),
        duration: ms(30_000),
        seed: 7,
    };
    println!("membership: 5 nodes, 5% loss, crashes at 5s (p2) and 12s (p0 = coordinator)");
    let outcome = run_membership(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);

    println!("view changes installed : {}", outcome.view_changes);
    println!("false exclusions       : {}", outcome.false_exclusions);
    println!("datagrams sent         : {}", outcome.messages);

    // The paper's claim, machine-checked: the exclusion history IS a
    // Perfect failure detector history for the ground-truth pattern.
    let params = CheckParams::with_margin(Time::new(outcome.duration_ms), 10_000);
    let report = class_report(&outcome.pattern, &outcome.emulated, &params);
    println!(
        "emulated detector class: P={} S={} ◇P={}",
        report.is_in(ClassId::Perfect),
        report.is_in(ClassId::Strong),
        report.is_in(ClassId::EventuallyPerfect),
    );
    assert!(report.is_in(ClassId::Perfect), "{report:?}");
    assert_eq!(outcome.false_exclusions, 0);
    println!("the membership service emulates a Perfect failure detector ✓");
}
