//! A tour of the failure detector zoo: classify every oracle against the
//! Chandra–Toueg classes and test it for realism (§3).
//!
//! Prints the E5-style membership matrix interactively, including the
//! paper's two stars: the Scribe (realistic, in `P`) and the Marabout
//! (clairvoyant, rejected by the §3.1 check with a concrete witness).
//!
//! Run with: `cargo run --example detector_zoo`

use rand::rngs::StdRng;
use rand::SeedableRng;
use realistic_failure_detectors::core::oracles::{
    scribe_suspects, EventuallyPerfectOracle, EventuallyStrongOracle, MaraboutOracle, Oracle,
    PerfectOracle, RankedOracle, ScribeOracle, StrongOracle, WeakWitnessOracle,
};
use realistic_failure_detectors::core::realism::{check_realism, RealismCheck};
use realistic_failure_detectors::core::{
    class_report, CheckParams, ClassId, FailurePattern, ProcessId, Time,
};

fn classify<O: Oracle<Value = realistic_failure_detectors::core::ProcessSet>>(
    oracle: &O,
    runs: u64,
) -> (String, bool) {
    let horizon = Time::new(500);
    let params = CheckParams::with_margin(horizon, 50);
    let mut rng = StdRng::seed_from_u64(2002);
    let mut counts = [0usize; 5];
    for seed in 0..runs {
        let pattern = FailurePattern::random(6, 5, Time::new(250), &mut rng);
        let h = oracle.generate(&pattern, horizon, seed);
        let report = class_report(&pattern, &h, &params);
        for (k, class) in ClassId::ALL.into_iter().enumerate() {
            counts[k] += usize::from(report.is_in(class));
        }
    }
    let battery = RealismCheck::new(horizon, 4, 16);
    let realistic = check_realism(oracle, 5, 12, &battery, &mut rng).is_ok();
    let cells: Vec<String> = ClassId::ALL
        .iter()
        .zip(counts)
        .map(|(c, k)| format!("{c}:{k:>2}/{runs}"))
        .collect();
    (cells.join("  "), realistic)
}

fn main() {
    let runs = 12;
    println!("classifying oracles over {runs} random unbounded-failure patterns (n=6)\n");
    let rows: Vec<(&str, (String, bool))> = vec![
        ("perfect", classify(&PerfectOracle::new(5, 3), runs)),
        (
            "eventually-perfect",
            classify(&EventuallyPerfectOracle::new(Time::new(80), 5, 3), runs),
        ),
        (
            "eventually-strong",
            classify(&EventuallyStrongOracle::new(4), runs),
        ),
        (
            "partially-perfect",
            classify(&RankedOracle::new(5, 3), runs),
        ),
        ("weak-witness", classify(&WeakWitnessOracle::new(5), runs)),
        (
            "strong-clairvoyant",
            classify(&StrongOracle::new(4, Time::new(60)), runs),
        ),
        ("marabout", classify(&MaraboutOracle::new(), runs)),
    ];
    for (name, (cells, realistic)) in &rows {
        println!(
            "{name:>20}  {cells}   realistic: {}",
            if *realistic { "yes" } else { "NO" }
        );
    }

    // The Scribe has a different range (pattern prefixes); project it.
    let pattern = FailurePattern::new(4).with_crash(ProcessId::new(1), Time::new(40));
    let notes = ScribeOracle::new().generate(&pattern, Time::new(200), 0);
    let projected = scribe_suspects(&notes);
    let report = class_report(&pattern, &projected, &CheckParams::new(Time::new(200)));
    println!(
        "\n{:>20}  projected onto suspect sets: P:{}   (the paper's §3.2.1 example)",
        "scribe",
        if report.is_in(ClassId::Perfect) {
            "yes"
        } else {
            "no"
        }
    );

    // The §6.3 collapse, read off the rows above.
    let strong_clairvoyant_realistic = rows
        .iter()
        .find(|(n, _)| *n == "strong-clairvoyant")
        .map(|(_, (_, r))| *r)
        .unwrap();
    assert!(!strong_clairvoyant_realistic);
    println!(
        "\ncollapse check: every oracle that is Strong-but-not-Perfect above is non-realistic ✓"
    );
}
