//! Quickstart: the paper's pipeline in one page.
//!
//! 1. Build a failure pattern (who crashes when).
//! 2. Generate a realistic Perfect oracle history for it.
//! 3. Run uniform consensus over the simulator — any number of crashes.
//! 4. Run the `T_{D⇒P}` reduction and verify the emulated detector is
//!    Perfect — the paper's headline theorem, executed.
//!
//! Run with: `cargo run --example quickstart`

use realistic_failure_detectors::algo::check::check_consensus;
use realistic_failure_detectors::algo::consensus::{ConsensusAutomaton, FloodSetConsensus};
use realistic_failure_detectors::algo::reduction::PerfectEmulation;
use realistic_failure_detectors::core::oracles::{Oracle, PerfectOracle};
use realistic_failure_detectors::core::{
    class_report, CheckParams, ClassId, FailurePattern, ProcessId, Time,
};
use realistic_failure_detectors::sim::{run, ticks_for_rounds, SimConfig, StopCondition};

fn main() {
    let n = 5;
    // Three of five processes crash — more than a majority; ◇S-style
    // protocols are hopeless here, but P-based ones are not.
    let pattern = FailurePattern::new(n)
        .with_crash(ProcessId::new(1), Time::new(40))
        .with_crash(ProcessId::new(3), Time::new(120))
        .with_crash(ProcessId::new(4), Time::new(200));
    println!("pattern: {pattern:?}");

    let rounds = 600;
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 42);

    // --- Consensus for any f --------------------------------------------
    let proposals: Vec<u64> = vec![10, 20, 30, 40, 50];
    let automata = ConsensusAutomaton::<FloodSetConsensus<u64>>::fleet(&proposals);
    let config = SimConfig::new(42, rounds).with_stop(StopCondition::EachCorrectOutput(1));
    let result = run(&pattern, &history, automata, &config);
    let verdict = check_consensus(&pattern, &result.trace, &proposals);
    println!(
        "consensus: uniform={} (decisions: {:?})",
        verdict.is_uniform_consensus(),
        result
            .trace
            .first_outputs(n)
            .iter()
            .map(|e| e.map(|ev| ev.value))
            .collect::<Vec<_>>()
    );
    assert!(verdict.is_uniform_consensus());

    // Totality (Lemma 4.1): every decision consulted every survivor.
    assert!(result.trace.check_totality(&pattern).is_ok());
    println!("totality: every decision's causal chain covers all survivors");

    // --- The reduction T_{D⇒P} ------------------------------------------
    let automata = PerfectEmulation::<FloodSetConsensus<u64>>::fleet(n);
    let result = run(&pattern, &history, automata, &SimConfig::new(7, rounds));
    let emulated = result.emulated.expect("output(P) exposed");
    let end = result.trace.end_time;
    let report = class_report(
        &pattern,
        &emulated,
        &CheckParams::with_margin(end, end.ticks() / 10),
    );
    println!(
        "reduction: emulated detector is Perfect = {}",
        report.is_in(ClassId::Perfect)
    );
    assert!(report.is_in(ClassId::Perfect));
    println!("q.e.d. — P is attainable from any realistic detector that solves consensus");
}
