//! A replicated log (state machine replication) on atomic broadcast.
//!
//! The paper's motivation (§1.1): "solving [atomic broadcast] is a key
//! to building highly available and consistent replicated services."
//! This example builds exactly that: five replicas atomically broadcast
//! bank-account commands, two replicas crash mid-stream, and the
//! survivors end with identical logs and identical balances — because
//! the broadcast rides on `P`-based consensus, which survives **any**
//! number of crashes.
//!
//! Run with: `cargo run --example replicated_log`

use realistic_failure_detectors::algo::broadcast::AtomicBroadcast;
use realistic_failure_detectors::core::oracles::{Oracle, PerfectOracle};
use realistic_failure_detectors::core::{FailurePattern, ProcessId, Time};
use realistic_failure_detectors::sim::{run, ticks_for_rounds, SimConfig};

/// A command: (account, signed amount), encoded as a sortable u64 pair.
fn command(account: u8, amount: i32) -> u64 {
    (u64::from(account) << 32) | (amount as u32 as u64)
}

fn apply(balances: &mut [i64; 4], cmd: u64) {
    let account = (cmd >> 32) as usize % 4;
    let amount = cmd as u32 as i32;
    balances[account] += i64::from(amount);
}

fn main() {
    let n = 5;
    // Replicas 1 and 4 crash while traffic is in flight.
    let pattern = FailurePattern::new(n)
        .with_crash(ProcessId::new(1), Time::new(60))
        .with_crash(ProcessId::new(4), Time::new(140));
    let rounds = 2_000;
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 3);

    // Each replica submits a few commands.
    let submissions: Vec<Vec<u64>> = vec![
        vec![command(0, 100), command(1, 50)],
        vec![command(2, 75)], // this replica crashes — its command may or may not survive
        vec![command(0, -30), command(3, 10)],
        vec![command(1, 5)],
        vec![command(3, -10)],
    ];
    let automata = AtomicBroadcast::fleet(submissions);
    let result = run(&pattern, &history, automata, &SimConfig::new(3, rounds));

    // Rebuild each survivor's log from its delivery events.
    let correct = pattern.correct();
    let mut logs: Vec<Vec<u64>> = vec![Vec::new(); n];
    for ev in &result.trace.events {
        logs[ev.process.index()].push(ev.value.value);
    }
    let reference = correct
        .iter()
        .next()
        .map(|p| logs[p.index()].clone())
        .expect("some correct replica");
    println!("survivors: {correct}");
    println!("log length: {} commands", reference.len());
    for p in correct {
        assert_eq!(
            logs[p.index()],
            reference,
            "total order: all survivors have identical logs"
        );
    }

    // Identical logs ⇒ identical state.
    let mut balances = [0i64; 4];
    for &cmd in &reference {
        apply(&mut balances, cmd);
    }
    println!("balances after replay: {balances:?}");
    println!(
        "all {} survivors agree on the log and the state",
        correct.len()
    );
}
