//! A live φ-accrual failure detector cluster over real UDP sockets.
//!
//! Three nodes heartbeat each other on loopback; after two seconds node 2
//! is killed, and the survivors' φ-accrual detectors report the
//! suspicion as it accrues — the "realistic" detector of the paper's
//! title, on a real network stack.
//!
//! Run with: `cargo run --example udp_detector`

use realistic_failure_detectors::core::ProcessId;
use realistic_failure_detectors::net::clock::{Clock, Nanos, SystemClock};
use realistic_failure_detectors::net::detector::DetectorNode;
use realistic_failure_detectors::net::estimator::PhiAccrual;
use realistic_failure_detectors::net::transport::udp::loopback_cluster;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let n = 3;
    let transports = loopback_cluster(n)?;
    let clock = SystemClock::new();
    let period = Nanos::from_millis(50);
    let prototype = PhiAccrual::new(3.0, 32, Nanos::from_millis(300));
    let mut nodes: Vec<_> = transports
        .into_iter()
        .map(|t| DetectorNode::new(n, prototype.clone(), t, clock.clone(), period))
        .collect();

    let victim = ProcessId::new(2);
    let kill_at = Nanos::from_millis(2_000);
    let end_at = Nanos::from_millis(4_500);
    let mut killed = false;
    let mut last_print = Nanos::ZERO;

    println!("3-node φ-accrual cluster on UDP loopback; killing p2 at t=2s");
    while clock.now() < end_at {
        let now = clock.now();
        if !killed && now >= kill_at {
            killed = true;
            println!("t={:>5}ms  ⚡ p2 killed", now.as_millis());
        }
        for (ix, node) in nodes.iter_mut().enumerate() {
            if killed && ix == victim.index() {
                continue; // the victim stops polling (and heartbeating)
            }
            node.poll();
        }
        if now.saturating_sub(last_print) >= Nanos::from_millis(500) {
            last_print = now;
            let d0 = nodes[0].detector();
            println!(
                "t={:>5}ms  p0 view: suspects={} φ(p1)={:.2} φ(p2)={:.2}",
                now.as_millis(),
                d0.suspects(now),
                d0.suspicion_level(ProcessId::new(1), now),
                d0.suspicion_level(victim, now),
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let now = clock.now();
    let suspects0 = nodes[0].detector().suspects(now);
    let suspects1 = nodes[1].detector().suspects(now);
    println!("final: p0 suspects {suspects0}, p1 suspects {suspects1}");
    assert!(
        suspects0.contains(victim) && suspects1.contains(victim),
        "both survivors must have detected the kill"
    );
    assert!(
        !suspects0.contains(ProcessId::new(1)),
        "p1 is alive and trusted"
    );
    println!("crash detected by every survivor; no false suspicion of live nodes");
    Ok(())
}
