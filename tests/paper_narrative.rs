//! The paper's storyline as one cross-crate integration test file,
//! exercised through the facade crate's public API.

use rand::rngs::StdRng;
use rand::SeedableRng;
use realistic_failure_detectors::algo::check::{check_consensus, check_trb};
use realistic_failure_detectors::algo::consensus::{
    ConsensusAutomaton, FloodSetConsensus, RankedConsensus, RotatingConsensus, StrongConsensus,
};
use realistic_failure_detectors::algo::reduction::{PerfectEmulation, TrbEmulation};
use realistic_failure_detectors::algo::trb::TrbProcess;
use realistic_failure_detectors::core::oracles::{
    EventuallyStrongOracle, MaraboutOracle, Oracle, PerfectOracle, RankedOracle,
};
use realistic_failure_detectors::core::realism::{check_realism, RealismCheck};
use realistic_failure_detectors::core::{
    class_report, CheckParams, ClassId, FailurePattern, ProcessId, Time,
};
use realistic_failure_detectors::sim::{
    run, ticks_for_rounds, Adversary, SimConfig, StopCondition,
};

const ROUNDS: u64 = 700;

/// §1.2: `◇S` needs a correct majority; `P` does not. (The collapse's
/// practical consequence.)
#[test]
fn narrative_unbounded_failures_demand_perfect() {
    let n = 4;
    // A majority (p0, p1) crashes immediately.
    let pattern = FailurePattern::new(n)
        .with_crash(ProcessId::new(0), Time::ZERO)
        .with_crash(ProcessId::new(1), Time::ZERO);
    let props: Vec<u64> = vec![1, 2, 3, 4];
    let horizon = ticks_for_rounds(n, ROUNDS);

    // ◇S blocks...
    let evs_history = EventuallyStrongOracle::new(8).generate(&pattern, horizon, 0);
    let automata = ConsensusAutomaton::<RotatingConsensus<u64>>::fleet(&props);
    let config = SimConfig::new(0, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    let result = run(&pattern, &evs_history, automata, &config);
    let v = check_consensus(&pattern, &result.trace, &props);
    assert!(v.termination.is_err(), "◇S must block: {v:?}");

    // ...P decides.
    let p_history = PerfectOracle::new(6, 3).generate(&pattern, horizon, 0);
    let automata = ConsensusAutomaton::<FloodSetConsensus<u64>>::fleet(&props);
    let result = run(&pattern, &p_history, automata, &config);
    let v = check_consensus(&pattern, &result.trace, &props);
    assert!(v.is_uniform_consensus(), "P must decide: {v:?}");
}

/// §4: the round trip — `P` solves consensus for any `f`, and any
/// realistic detector solving consensus yields `P` back via `T_{D⇒P}`.
#[test]
fn narrative_perfect_is_the_fixed_point() {
    let n = 4;
    let pattern = FailurePattern::new(n)
        .with_crash(ProcessId::new(1), Time::new(150))
        .with_crash(ProcessId::new(2), Time::new(350));
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 11);

    // Forward: consensus works.
    let props: Vec<u64> = vec![5, 6, 7, 8];
    let automata = ConsensusAutomaton::<StrongConsensus<u64>>::fleet(&props);
    let config = SimConfig::new(11, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    let cons = run(&pattern, &history, automata, &config);
    assert!(check_consensus(&pattern, &cons.trace, &props).is_uniform_consensus());
    assert_eq!(cons.trace.check_totality(&pattern), Ok(()));

    // Back: the emulated detector is Perfect again.
    let automata = PerfectEmulation::<StrongConsensus<u64>>::fleet(n);
    let red = run(&pattern, &history, automata, &SimConfig::new(12, ROUNDS));
    let emulated = red.emulated.expect("output(P)");
    let end = red.trace.end_time;
    let report = class_report(
        &pattern,
        &emulated,
        &CheckParams::with_margin(end, end.ticks() / 10),
    );
    assert!(report.is_in(ClassId::Perfect), "{report:?}");
}

/// §5: the same fixed point through terminating reliable broadcast.
#[test]
fn narrative_trb_round_trip() {
    let n = 4;
    let oracle = PerfectOracle::new(6, 3);

    // Forward: TRB works even when the initiator crashes mid-broadcast.
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(3));
    let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 21);
    let automata = TrbProcess::fleet(n, ProcessId::new(0), 99u64);
    let config = SimConfig::new(21, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    let result = run(&pattern, &history, automata, &config);
    assert!(check_trb(&pattern, &result.trace, ProcessId::new(0), &99).is_trb());

    // Back: nil deliveries rebuild P.
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(2), Time::new(400));
    let rounds = 1_500u64;
    let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 22);
    let automata = TrbEmulation::fleet(n);
    let result = run(&pattern, &history, automata, &SimConfig::new(22, rounds));
    let emulated = result.emulated.expect("output(P)");
    let end = result.trace.end_time;
    let report = class_report(
        &pattern,
        &emulated,
        &CheckParams::with_margin(end, end.ticks() / 8),
    );
    assert!(report.is_in(ClassId::Perfect), "{report:?}");
}

/// §6.1 + §3: clairvoyance breaks the lower bound, and the realism
/// checker is exactly what rules it out.
#[test]
fn narrative_realism_is_the_boundary() {
    let mut rng = StdRng::seed_from_u64(0x1306);
    let battery = RealismCheck::new(Time::new(400), 4, 16);
    assert!(check_realism(&PerfectOracle::new(5, 3), 5, 15, &battery, &mut rng).is_ok());
    assert!(check_realism(&RankedOracle::new(5, 3), 5, 15, &battery, &mut rng).is_ok());
    let violation = check_realism(&MaraboutOracle::new(), 5, 15, &battery, &mut rng)
        .expect_err("the Marabout sees the future");
    // The violation is a concrete §3.2.2-style pair.
    assert!(violation
        .pattern
        .agrees_up_to(&violation.alternative, violation.prefix_time));
}

/// §6.2: uniform vs correct-restricted, end to end over the facade.
#[test]
fn narrative_uniformity_gap() {
    let n = 3;
    let oracle = RankedOracle::new(5, 0);
    let props: Vec<u64> = vec![10, 20, 30];
    let horizon = ticks_for_rounds(n, ROUNDS);
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(4));
    let history = oracle.generate(&pattern, horizon, 0);
    let automata = ConsensusAutomaton::<RankedConsensus<u64>>::fleet(&props);
    let config = SimConfig::new(0, ROUNDS)
        .with_adversary(Adversary::HoldFrom(ProcessId::new(0), Time::new(600)))
        .with_stop(StopCondition::EachCorrectOutput(1));
    let result = run(&pattern, &history, automata, &config);
    let v = check_consensus(&pattern, &result.trace, &props);
    assert!(v.is_correct_restricted_consensus());
    assert!(!v.is_uniform_consensus());
    // The disagreement pair involves the faulty p0.
    let d = v.uniform_agreement.unwrap_err();
    assert!(d.a.0 == ProcessId::new(0) || d.b.0 == ProcessId::new(0));
}
