//! # realistic-failure-detectors
//!
//! A comprehensive Rust reproduction of
//! *"A Realistic Look At Failure Detectors"* (C. Delporte-Gallet,
//! H. Fauconnier, R. Guerraoui — DSN 2002).
//!
//! The paper shows that in an environment with an **unbounded number of
//! crash failures**, the class `P` of Perfect failure detectors is the
//! *weakest realistic* class solving uniform consensus (hence atomic
//! broadcast) and terminating reliable broadcast — collapsing the
//! Chandra–Toueg hierarchy and explaining why practical systems build on
//! group membership services that emulate `P`.
//!
//! This facade crate re-exports the four workspace layers:
//!
//! * [`core`] ([`rfd_core`]) — failure patterns, histories, detector
//!   classes, realism, oracle generators.
//! * [`sim`] ([`rfd_sim`]) — the FLP + failure detector execution model:
//!   automata, schedulers, crash injection, causal ("alive tag")
//!   tracking, and the streaming run driver ([`rfd_sim::stream`]) for
//!   long-running, incrementally observed executions.
//! * [`algo`] ([`rfd_algo`]) — consensus, terminating reliable broadcast,
//!   reliable/atomic broadcast, and the paper's reductions
//!   `T_{D⇒P}` (§4.3) and TRB ⇒ `P` (§5).
//! * [`net`] ([`rfd_net`]) — the realistic runtime: lossy virtual-time /
//!   UDP transports (churn- and partition-capable), adaptive heartbeat
//!   detectors (fixed, Chen, Jacobson, φ-accrual), batch and incremental
//!   QoS metrics, a membership service emulating `P`, and the online
//!   scenario runner ([`rfd_net::online`]) for detection as a
//!   long-running service.
//!
//! The three execution paths and their entry points (see
//! `ARCHITECTURE.md` for the full map):
//!
//! * **batch** — [`rfd_sim::run`] / [`rfd_sim::Campaign`] spin a
//!   scenario to completion and return the trace;
//! * **stream** — [`rfd_sim::stream::StreamRun`] yields the same run as
//!   typed events, resumable at any boundary;
//! * **online** — [`rfd_net::online::OnlineRunner`] drives a live fleet
//!   under churn, scored tick by tick by [`rfd_net::qos::QosMonitor`]s
//!   that provably equal the batch accounting, over simulated or real
//!   ([`rfd_net::transport::FaultyTransport`]) networks.
//!
//! ## Quickstart
//!
//! ```
//! use realistic_failure_detectors::core::oracles::{Oracle, PerfectOracle};
//! use realistic_failure_detectors::core::{class_report, CheckParams, ClassId,
//!                                         FailurePattern, ProcessId, Time};
//!
//! // p1 crashes at t=40 in a 4-process system.
//! let pattern = FailurePattern::new(4).with_crash(ProcessId::new(1), Time::new(40));
//! let history = PerfectOracle::default().generate(&pattern, Time::new(400), 7);
//! let report = class_report(&pattern, &history, &CheckParams::new(Time::new(400)));
//! assert!(report.is_in(ClassId::Perfect));
//! ```
//!
//! See `examples/` for end-to-end scenarios and `EXPERIMENTS.md` for the
//! experiment-by-experiment reproduction of the paper's results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// The formal model layer (re-export of [`rfd_core`]).
pub use rfd_core as core;

/// The simulation layer (re-export of [`rfd_sim`]).
pub use rfd_sim as sim;

/// The algorithms and reductions layer (re-export of [`rfd_algo`]).
pub use rfd_algo as algo;

/// The realistic runtime layer (re-export of [`rfd_net`]).
pub use rfd_net as net;
