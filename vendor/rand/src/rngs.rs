//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
/// see the crate docs.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            let mut x = 0xDEAD_BEEF_u64;
            for w in &mut s {
                *w = splitmix64(&mut x);
            }
        }
        Self { s }
    }
}

/// A small, fast generator — here simply an alias body over the same
/// xoshiro core.
pub type SmallRng = StdRng;
