//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! deterministic, high-quality PRNG. It is **not** the same stream as the
//! upstream `StdRng` (ChaCha12); everything in this workspace only relies
//! on determinism for a fixed seed, never on a specific stream.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A random number generator core: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Sampling distributions (uniform ranges and the standard
    //! distribution of the primitive types).

    use super::RngCore;

    /// Types sampleable "by default" via [`super::Rng::gen`].
    pub trait Standard: Sized {
        /// Samples one value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub mod uniform {
        //! Uniform sampling over ranges.

        use crate::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// A type with a uniform sampler over an interval.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Samples uniformly from `[lo, hi]` (both inclusive).
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        debug_assert!(lo <= hi);
                        let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                        if span == u128::MAX {
                            // Full 128-bit range: one draw of 128 bits.
                            let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                            return word as $t;
                        }
                        let span = span + 1;
                        // Multiply-shift bounded sampling with one rejection
                        // round cap: bias is < 2^-64 for the small spans used
                        // here, and determinism — the only property the
                        // workspace relies on — is exact.
                        let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                        let offset = (word % span) as i128;
                        ((lo as i128).wrapping_add(offset)) as $t
                    }
                }
            )*};
        }

        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for u128 {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = hi.wrapping_sub(lo);
                let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                if span == u128::MAX {
                    word
                } else {
                    lo.wrapping_add(word % (span + 1))
                }
            }
        }

        impl SampleUniform for f64 {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + unit * (hi - lo)
            }
        }

        /// Range expressions accepted by [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Samples one value from the range.
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + HasPrev> SampleRange<T> for Range<T> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample from an empty range");
                T::sample_inclusive(self.start, self.end.prev(), rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from an empty range");
                T::sample_inclusive(lo, hi, rng)
            }
        }

        /// Integer predecessor, used to turn `lo..hi` into `lo..=hi-1`.
        pub trait HasPrev {
            /// The immediately preceding value.
            fn prev(self) -> Self;
        }

        macro_rules! impl_has_prev {
            ($($t:ty),*) => {$(
                impl HasPrev for $t {
                    fn prev(self) -> Self { self - 1 }
                }
            )*};
        }

        impl_has_prev!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
