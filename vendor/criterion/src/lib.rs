//! Vendored, API-compatible subset of `criterion`.
//!
//! Implements the configuration/grouping/`Bencher::iter` surface the
//! workspace benches use, with a simple measurement loop: warm up for
//! `warm_up_time`, then run batches until `measurement_time` elapses and
//! report the mean wall-clock time per iteration. No statistical
//! analysis, plots, or baselines — but deterministic workloads at the
//! configured sizes give stable means, which is what the recorded
//! baselines need.
//!
//! Set `RFD_BENCH_JSON=<path>` to append one JSON line per benchmark
//! (`{"id": …, "mean_ns": …, "iters": …}`) for machine-readable capture.
//!
//! **Quick mode**: pass `--quick` on the bench command line
//! (`cargo bench -p rfd-bench -- --quick`) or set `RFD_BENCH_QUICK=1`
//! to clamp every benchmark to a few milliseconds of warm-up and
//! measurement. The numbers are meaningless in quick mode — it exists so
//! CI can execute every bench body cheaply and catch bit-rot.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed alongside the mean).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How [`Bencher::iter_batched`] sizes its setup batches, mirroring the
/// real crate's API. The vendored subset sizes batches from the warm-up
/// throughput either way; `PerIteration` forces one setup per routine
/// call (for routines that consume a large or stateful input).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to hold in memory; batch freely.
    SmallInput,
    /// Inputs are large; keep batches modest.
    LargeInput,
    /// Exactly one setup per routine call.
    PerIteration,
}

/// Whether quick mode is active: `--quick` on the bench command line or
/// a non-empty `RFD_BENCH_QUICK` environment variable.
fn quick_mode() -> bool {
    std::env::var_os("RFD_BENCH_QUICK").is_some() || std::env::args().any(|a| a == "--quick")
}

/// A hierarchical benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (scales the iteration batches).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.criterion, &full, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Benchmarks a named function within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, self.throughput, &mut |b| f(b));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measures `routine`, recording mean wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Measurement: batched timing until the budget elapses.
        let batch = warm_iters.clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        #[allow(clippy::cast_precision_loss)]
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        self.result = Some((mean_ns, iters));
    }

    /// Measures `routine` over inputs produced by `setup`, timing only
    /// the routine — setup runs outside the measured window. Use this
    /// when an iteration consumes state (e.g. draining a pre-filled
    /// queue) that would otherwise pollute the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: full setup + routine cycles until the budget elapses.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine(setup()));
            warm_iters += 1;
        }
        let batch = match size {
            BatchSize::PerIteration => 1,
            BatchSize::LargeInput => warm_iters.clamp(1, 64) as usize,
            BatchSize::SmallInput => warm_iters.clamp(1, 4096) as usize,
        };
        let mut inputs: Vec<I> = Vec::with_capacity(batch);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement {
            inputs.clear();
            for _ in 0..batch {
                inputs.push(setup());
            }
            let t0 = Instant::now();
            for input in inputs.drain(..) {
                black_box(routine(input));
            }
            total += t0.elapsed();
            iters += batch as u64;
        }
        #[allow(clippy::cast_precision_loss)]
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        self.result = Some((mean_ns, iters));
    }
}

fn run_one(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Quick mode clamps the budgets so CI can execute every bench body
    // without paying for meaningful measurements.
    let (warm_up, measurement) = if quick_mode() {
        (
            Duration::from_millis(5).min(criterion.warm_up),
            Duration::from_millis(20).min(criterion.measurement),
        )
    } else {
        (criterion.warm_up, criterion.measurement)
    };
    let mut bencher = Bencher {
        warm_up,
        // sample_size scales the budget mildly so `.sample_size(20)`
        // behaves comparably to upstream's intent of "keep this quick".
        measurement,
        result: None,
    };
    f(&mut bencher);
    let Some((mean_ns, iters)) = bencher.result else {
        println!("{id}: no measurement (Bencher::iter was never called)");
        return;
    };
    let mut line = format!("{id}: {} /iter ({iters} iters)", fmt_ns(mean_ns));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        #[allow(clippy::cast_precision_loss)]
        let per_sec = count as f64 * 1e9 / mean_ns;
        let _ = write!(line, ", {per_sec:.0} {unit}/s");
    }
    println!("{line}");
    if let Ok(path) = std::env::var("RFD_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"id\":\"{id}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}"
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
    }

    #[test]
    fn iter_batched_times_the_routine_over_fresh_inputs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut setups = 0u64;
        c.bench_function("drain", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64, 2, 3]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        assert!(setups > 0, "setup must run");
    }
}
