//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()`
//! returns the guard directly (no poisoning `Result`). A poisoned
//! std lock is recovered transparently — matching `parking_lot`, which
//! has no poisoning at all.

#![warn(missing_docs)]

use std::fmt;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader–writer lock whose acquire methods return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
