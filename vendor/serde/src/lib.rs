//! Vendored, API-compatible subset of `serde`.
//!
//! The build environment has no registry access, so the workspace ships
//! this minimal serialization framework: a JSON-like [`Value`] tree as
//! the data model, [`Serialize`]/[`Deserialize`] traits over it, and
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! sibling `serde_derive` proc-macro crate) covering the shapes used in
//! this workspace — named structs, tuple/newtype structs, generic
//! structs, and unit-variant enums.
//!
//! The wire format lives in the sibling `serde_json` crate. This is not
//! the real serde's zero-copy visitor architecture; round-tripping
//! fidelity (including full `u128` precision) is what the workspace
//! needs, and that is exact.

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The data model: a JSON-like tree with exact integers.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (exact up to `u128`).
    UInt(u128),
    /// A negative integer (exact down to `i128::MIN`).
    Int(i128),
    /// A binary float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a map field by name.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a map or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected a map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Views the value as a sequence.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a sequence.
    pub fn seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::new(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Indexes into a sequence.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a sequence or is too short.
    pub fn element(&self, ix: usize) -> Result<&Value, Error> {
        self.seq()?
            .get(ix)
            .ok_or_else(|| Error::new(format!("sequence too short: no element {ix}")))
    }

    /// A short name for the variant, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an error if the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u128::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::new(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u128)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::UInt(u) => {
                usize::try_from(*u).map_err(|_| Error::new(format!("{u} out of range for usize")))
            }
            other => Err(Error::new(format!(
                "expected usize, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i128::from(*self);
                if v >= 0 {
                    Value::UInt(v as u128)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::UInt(u) => i128::try_from(*u)
                        .map_err(|_| Error::new(format!("{u} out of range for {}", stringify!($t))))?,
                    Value::Int(i) => *i,
                    other => {
                        return Err(Error::new(format!(
                            "expected {}, found {}", stringify!($t), other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::new(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).map(|x| x as isize)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_precision_loss)]
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::new(format!("expected f64, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected a single-character string")),
        }
    }
}

// -------------------------------------------------------------- compounds

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(v.element($ix)?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(u128::from_value(&u128::MAX.to_value()).unwrap(), u128::MAX);
    }

    #[test]
    fn options_and_vecs_roundtrip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let back = Vec::<Option<u64>>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1u8, String::from("x"));
        let back = <(u8, String)>::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
