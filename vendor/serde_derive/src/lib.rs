//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly over `proc_macro::TokenStream` (the environment
//! has no registry access, hence no `syn`/`quote`). Supported input
//! shapes — exactly the ones appearing in this workspace:
//!
//! * named-field structs, optionally generic (`struct H<R> { … }`);
//! * tuple and newtype structs (`struct Time(u64);`);
//! * unit structs;
//! * enums whose variants all carry no data (`enum ClassId { A, B }`).
//!
//! Anything else produces a compile error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed skeleton of a type definition.
struct TypeDef {
    name: String,
    /// Generic parameter names (type params only; no lifetimes/consts
    /// appear in this workspace).
    generics: Vec<GenericParam>,
    body: Body,
}

struct GenericParam {
    name: String,
    /// Inline bounds from the definition (e.g. `Clone` in `<R: Clone>`),
    /// re-emitted on the generated impl.
    bounds: String,
}

enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    UnitEnum(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let def = match parse(input) {
        Ok(def) => def,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("compile_error tokens")
        }
    };
    let code = if serialize {
        render_serialize(&def)
    } else {
        render_deserialize(&def)
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive generated invalid code: {e}\");")
            .parse()
            .expect("compile_error tokens")
    })
}

// ------------------------------------------------------------------ parse

fn parse(input: TokenStream) -> Result<TypeDef, String> {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kw = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    pos += 1;
    let generics = parse_generics(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err("`where` clauses are not supported by the vendored serde_derive".to_string());
    }
    let body = match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::UnitEnum(parse_unit_variants(g.stream())?)
            }
            other => return Err(format!("expected an enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };
    // Consume the body token so trailing tokens do not confuse anyone.
    let _ = tokens.drain(..);
    Ok(TypeDef {
        name,
        generics,
        body,
    })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`: the bracket group follows.
                *pos += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Result<Vec<GenericParam>, String> {
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Ok(Vec::new());
    }
    *pos += 1;
    // Collect raw tokens of the parameter list at depth 0.
    let mut depth = 0usize;
    let mut raw: Vec<TokenTree> = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                raw.push(tokens[*pos].clone());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                if depth == 0 {
                    *pos += 1;
                    break;
                }
                depth -= 1;
                raw.push(tokens[*pos].clone());
            }
            Some(t) => raw.push(t.clone()),
            None => return Err("unterminated generic parameter list".to_string()),
        }
        *pos += 1;
    }
    // Split on top-level commas into parameters.
    let mut params = Vec::new();
    for chunk in split_top_level(&raw) {
        if chunk.is_empty() {
            continue;
        }
        if matches!(&chunk[0], TokenTree::Punct(p) if p.as_char() == '\'') {
            return Err(
                "lifetime parameters are not supported by the vendored serde_derive".to_string(),
            );
        }
        let name = match &chunk[0] {
            TokenTree::Ident(id) if id.to_string() == "const" => {
                return Err(
                    "const generic parameters are not supported by the vendored serde_derive"
                        .to_string(),
                )
            }
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unexpected generic parameter token: {other:?}")),
        };
        let bounds = match chunk.get(1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => tokens_to_string(&chunk[2..]),
            _ => String::new(),
        };
        params.push(GenericParam { name, bounds });
    }
    Ok(params)
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    for chunk in split_top_level(&tokens) {
        let mut pos = 0usize;
        skip_attrs_and_vis(&chunk, &mut pos);
        if pos >= chunk.len() {
            continue; // trailing comma
        }
        match &chunk[pos] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => return Err(format!("expected a field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for chunk in split_top_level(&tokens) {
        let mut pos = 0usize;
        skip_attrs_and_vis(&chunk, &mut pos);
        if pos >= chunk.len() {
            continue;
        }
        let name = match &chunk[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        if chunk.len() > pos + 1 {
            return Err(format!(
                "variant `{name}` carries data; the vendored serde_derive only supports \
                 unit-variant enums"
            ));
        }
        variants.push(name);
    }
    Ok(variants)
}

/// Splits a token list on commas at `<>` depth zero. Delimited groups are
/// single tokens, so only angle brackets need explicit depth tracking.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(t.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

// ----------------------------------------------------------------- render

impl TypeDef {
    /// `impl<R: Clone + ::serde::Serialize>` — the generics introducer.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generics.is_empty() {
            return String::new();
        }
        let params: Vec<String> = self
            .generics
            .iter()
            .map(|p| {
                if p.bounds.is_empty() {
                    format!("{}: {bound}", p.name)
                } else {
                    format!("{}: {} + {bound}", p.name, p.bounds)
                }
            })
            .collect();
        format!("<{}>", params.join(", "))
    }

    /// `Foo<R>` — the type with its parameters applied.
    fn ty(&self) -> String {
        if self.generics.is_empty() {
            self.name.clone()
        } else {
            let names: Vec<&str> = self.generics.iter().map(|p| p.name.as_str()).collect();
            format!("{}<{}>", self.name, names.join(", "))
        }
    }
}

fn render_serialize(def: &TypeDef) -> String {
    let body = match &def.body {
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(k) => {
            let items: Vec<String> = (0..*k)
                .map(|ix| format!("::serde::Serialize::to_value(&self.{ix})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))",
                        def.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{ig} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        ig = def.impl_generics("::serde::Serialize"),
        ty = def.ty(),
    )
}

fn render_deserialize(def: &TypeDef) -> String {
    let body = match &def.body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?"))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Body::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Body::Tuple(k) => {
            let items: Vec<String> = (0..*k)
                .map(|ix| format!("::serde::Deserialize::from_value(v.element({ix})?)?"))
                .collect();
            format!("::std::result::Result::Ok(Self({}))", items.join(", "))
        }
        Body::Unit => "::std::result::Result::Ok(Self)".to_string(),
        Body::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({}::{v})", def.name))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms},\n\
                         other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"expected a variant name of {name}, found {{}}\", \
                         other.kind()))),\n\
                 }}",
                arms = arms.join(",\n"),
                name = def.name,
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{ig} ::serde::Deserialize for {ty} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        ig = def.impl_generics("::serde::Deserialize"),
        ty = def.ty(),
    )
}
