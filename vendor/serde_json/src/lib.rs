//! Vendored, API-compatible subset of `serde_json`: JSON rendering and
//! parsing over the vendored serde [`Value`] model.
//!
//! Integers round-trip exactly up to `u128`/`i128`; floats render via
//! Rust's shortest-roundtrip formatting.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encoding/decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as a JSON string.
///
/// # Errors
///
/// Returns an error for non-finite floats (JSON has no representation).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- render

fn render(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite float"));
            }
            let s = format!("{x:?}");
            out.push_str(&s);
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u128>() {
                    if v == 0 {
                        return Ok(Value::UInt(0));
                    }
                    if let Ok(i) = text.parse::<i128>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(v) = text.parse::<u128>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        let max = u128::MAX;
        assert_eq!(from_str::<u128>(&to_string(&max).unwrap()).unwrap(), max);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<(u64, Option<String>)> = vec![(1, Some("a\"b\\c\n".to_string())), (2, None)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, Option<String>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_roundtrip() {
        let x = 1.25e-3f64;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert!((x - back).abs() < 1e-12);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 garbage").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
