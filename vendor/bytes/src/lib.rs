//! Vendored, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with the
//! big-endian integer accessors the workspace codec uses. [`Bytes`] is a
//! cheaply clonable, reference-counted immutable byte buffer; the
//! zero-copy slicing machinery of the real crate is not reproduced.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with the given capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor; integer accessors are big-endian
/// (network order), matching the real crate.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.copy_to_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_to_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_array())
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        u128::from_be_bytes(self.copy_to_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {N}", self.len());
        let (head, tail) = self.split_at(N);
        let out = head.try_into().expect("exact length split");
        *self = tail;
        out
    }
}

/// Write access to a byte sink; integer writers are big-endian (network
/// order), matching the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_roundtrip_through_bytesmut() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0xFD02);
        b.put_u8(7);
        b.put_u64(0xDEAD_BEEF);
        b.put_u128(42);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u16(), 0xFD02);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u64(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u128(), 42);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slice_cursor_advances() {
        let data = [0u8, 1, 2, 3];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u16(), 1);
        assert_eq!(cursor.len(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u64();
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..], b"hello");
    }
}
