//! Vendored, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with the
//! big-endian integer accessors the workspace codec uses. [`Bytes`] is a
//! cheaply clonable, reference-counted immutable byte buffer; the
//! zero-copy slicing machinery of the real crate is not reproduced.
//!
//! ## Buffer recycling
//!
//! Both types share one backing representation (`Arc<Vec<u8>>`), with
//! [`BytesMut`] holding its `Arc` uniquely. That makes the mutable →
//! immutable → mutable cycle allocation-free in steady state:
//!
//! * [`BytesMut::freeze`] *moves* the backing storage into a [`Bytes`] —
//!   no copy, no allocation (the real crate's `freeze` has the same
//!   complexity; the previous vendored version copied);
//! * [`Bytes::try_into_mut`] reclaims the storage as a [`BytesMut`] when
//!   the caller holds the last reference, so a sender that keeps one
//!   handle past the fan-out can [`BytesMut::clear`] and refill the same
//!   buffer next period.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (copied into owned storage; the
    /// vendored subset has no zero-copy static representation).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reclaims the backing storage as a [`BytesMut`] if this is the
    /// last handle to it (no allocation, no copy); hands `self` back
    /// otherwise. The recycling half of [`BytesMut::freeze`].
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when other clones of the buffer are still
    /// alive.
    pub fn try_into_mut(mut self) -> Result<BytesMut, Bytes> {
        if Arc::get_mut(&mut self.data).is_some() {
            Ok(BytesMut { data: self.data })
        } else {
            Err(self)
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self {
            data: Arc::new(Vec::new()),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building messages.
///
/// Holds its backing `Arc<Vec<u8>>` uniquely, so mutation never copies
/// and [`BytesMut::freeze`] is a move. Cloning deep-copies to preserve
/// that uniqueness.
#[derive(Debug)]
pub struct BytesMut {
    /// Invariant: uniquely referenced (strong count 1). Every
    /// constructor creates a fresh `Arc` and [`Bytes::try_into_mut`]
    /// checks uniqueness before handing the storage back.
    data: Arc<Vec<u8>>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with the given capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Arc::new(Vec::with_capacity(capacity)),
        }
    }

    /// The uniquely held backing vector.
    fn vec_mut(&mut self) -> &mut Vec<u8> {
        // `make_mut` is `get_mut` on the unique invariant; if the
        // invariant were ever broken it degrades to copy-on-write
        // instead of panicking.
        Arc::make_mut(&mut self.data)
    }

    /// Direct access to the backing vector, paying the uniqueness check
    /// once instead of per [`BufMut`] call — the batch-write fast path
    /// for encoders that append many fields to one frame. Mutating the
    /// vector cannot break the uniqueness invariant.
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        self.vec_mut()
    }

    /// Freezes the buffer into an immutable [`Bytes`] — a move of the
    /// backing storage, no copy or allocation. Recycle it later with
    /// [`Bytes::try_into_mut`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Clears the buffer, retaining its capacity.
    pub fn clear(&mut self) {
        self.vec_mut().clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec_mut().reserve(additional);
    }

    /// The buffer's capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        Self {
            data: Arc::new(Vec::new()),
        }
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        Self {
            data: Arc::new(self.data.as_ref().clone()),
        }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for BytesMut {}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor; integer accessors are big-endian
/// (network order), matching the real crate.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.copy_to_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_to_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_array())
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        u128::from_be_bytes(self.copy_to_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {N}", self.len());
        let (head, tail) = self.split_at(N);
        let out = head.try_into().expect("exact length split");
        *self = tail;
        out
    }
}

/// Write access to a byte sink; integer writers are big-endian (network
/// order), matching the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec_mut().extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_roundtrip_through_bytesmut() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0xFD02);
        b.put_u8(7);
        b.put_u64(0xDEAD_BEEF);
        b.put_u128(42);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u16(), 0xFD02);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u64(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u128(), 42);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slice_cursor_advances() {
        let data = [0u8, 1, 2, 3];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u16(), 1);
        assert_eq!(cursor.len(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u64();
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..], b"hello");
    }

    #[test]
    fn freeze_then_reclaim_preserves_capacity_without_copying() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(b"first message");
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"first message");
        let mut reclaimed = frozen.try_into_mut().expect("sole owner reclaims");
        assert!(reclaimed.capacity() >= 64, "capacity survives the cycle");
        reclaimed.clear();
        assert!(reclaimed.is_empty());
        reclaimed.put_slice(b"second");
        assert_eq!(&reclaimed.freeze()[..], b"second");
    }

    #[test]
    fn reclaim_fails_while_clones_are_alive() {
        let a = Bytes::copy_from_slice(b"shared");
        let b = a.clone();
        let a = a.try_into_mut().expect_err("clone keeps it shared");
        assert_eq!(&a[..], b"shared");
        drop(b);
        assert!(a.try_into_mut().is_ok(), "last handle reclaims");
    }

    #[test]
    fn bytesmut_clone_is_independent() {
        let mut a = BytesMut::new();
        a.put_slice(b"abc");
        let mut b = a.clone();
        b.put_slice(b"def");
        assert_eq!(&a[..], b"abc");
        assert_eq!(&b[..], b"abcdef");
        assert_ne!(a, b);
    }
}
