//! `any::<T>()` — the standard strategy of a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Samples one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for i128 {
    #[allow(clippy::cast_possible_wrap)]
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: uniform in a wide symmetric range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (unit - 0.5) * 2.0e12
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-range strategy of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = case_rng("arbitrary_tests", 0);
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(s.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
