//! `prop::option` — strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generates `Some` from the inner strategy with the given probability
/// (`None` otherwise). Mirrors upstream's `prop::option::weighted`.
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool(self.some_probability) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Option<T>` values that are `Some` three times out of four (the
/// upstream default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.75, inner)
}

/// `Option<T>` values that are `Some` with probability `some_probability`.
///
/// # Panics
///
/// Panics if `some_probability` is not within `0.0..=1.0`.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    assert!(
        (0.0..=1.0).contains(&some_probability),
        "probability must be in [0, 1]"
    );
    OptionStrategy {
        inner,
        some_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn of_mixes_some_and_none_in_bounds() {
        let mut rng = case_rng("option_tests", 0);
        let s = of(5u64..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..1_000 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!((5..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }

    #[test]
    fn weighted_extremes_are_deterministic() {
        let mut rng = case_rng("option_tests", 1);
        assert_eq!(weighted(0.0, 0u64..5).generate(&mut rng), None);
        assert!(weighted(1.0, 0u64..5).generate(&mut rng).is_some());
    }
}
