//! Vendored, API-compatible subset of `proptest`.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro
//! (including `#![proptest_config(…)]`), range / tuple / `any` /
//! `prop_map` / `prop::collection::vec` strategies, and the
//! `prop_assert*` macros. Cases are sampled deterministically (the RNG is
//! derived from the test's module path and case index), so failures
//! reproduce without persistence files. Shrinking is not implemented: a
//! failing case panics with the sampled inputs via the assertion message.
//!
//! The default case count is 64 (the workspace's property tests are
//! simulation-heavy); set `PROPTEST_CASES` to override.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// `prop::…` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn f(x in 0..10u32) {…} }`.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident (
        $($arg:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __cases = __config.effective_cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __rng,
                    );)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
