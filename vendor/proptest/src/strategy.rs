//! The [`Strategy`] trait and the combinators used in this workspace.

use crate::test_runner::TestRng;
use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a new strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values, retrying until `pred` passes (with a
    /// bounded retry budget).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Boxes the strategy (object-safe dispatch).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A boxed, dynamically dispatched strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: std::fmt::Debug, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").field("inner", &self.inner).finish()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: std::fmt::Debug, F> std::fmt::Debug for FlatMap<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatMap")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// The [`Strategy::prop_filter`] combinator.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: std::fmt::Debug, F> std::fmt::Debug for Filter<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Filter")
            .field("inner", &self.inner)
            .field("whence", &self.whence)
            .finish()
    }
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform,
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform,
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = case_rng("strategy_tests", 0);
        for _ in 0..1_000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..=4).generate(&mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = case_rng("strategy_tests", 1);
        let s = (0u64..10, 0u64..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = case_rng("strategy_tests", 2);
        assert_eq!(Just(9u8).generate(&mut rng), 9);
    }
}
