//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An admissible length range for a generated collection.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end || r.start == 0, "empty size range");
        Self {
            lo: r.start,
            hi: r.end.saturating_sub(1).max(r.start),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        Self { lo, hi }
    }
}

/// Generates `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = case_rng("collection_tests", 0);
        let s = vec(0u64..5, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn zero_length_ranges_work() {
        let mut rng = case_rng("collection_tests", 1);
        let s = vec(0u8..3, 0..1);
        assert!(s.generate(&mut rng).is_empty());
    }
}
