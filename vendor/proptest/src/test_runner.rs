//! Test-run configuration and deterministic case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG driving strategy sampling.
pub type TestRng = StdRng;

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to sample per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The configured case count, overridable via `PROPTEST_CASES`.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Derives the deterministic RNG for one case of one test.
#[must_use]
pub fn case_rng(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32) ^ u64::from(case))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rngs_are_deterministic_and_distinct() {
        let a = case_rng("x::y", 0).next_u64();
        let b = case_rng("x::y", 0).next_u64();
        let c = case_rng("x::y", 1).next_u64();
        let d = case_rng("x::z", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
