//! Broadcast primitives: reliable broadcast and atomic broadcast.
//!
//! Atomic broadcast is the paper's second headline problem: solving it is
//! equivalent to consensus in systems with reliable channels (§1.1, after
//! Chandra–Toueg), so `P` is also its weakest realistic class when
//! failures are unbounded. [`AtomicBroadcast`] implements the classic
//! consensus-sequence transformation; [`ConsensusViaAbcast`] closes the
//! equivalence in the other direction (decide the first A-delivered
//! value); [`ReliableBroadcast`] is the dissemination substrate.

mod atomic;
mod reliable;
mod via_abcast;

pub use atomic::{AbDelivery, AbMsg, AtomicBroadcast, Batch, Item};
pub use reliable::{RbDelivery, RbMsg, ReliableBroadcast};
pub use via_abcast::ConsensusViaAbcast;
