//! Atomic broadcast by a sequence of consensus instances.
//!
//! The Chandra–Toueg transformation that makes atomic broadcast
//! equivalent to consensus (§1.1 of the paper): gossip messages
//! reliably, then agree — instance by instance — on the next *batch* to
//! deliver; deliver each decided batch in a deterministic order. Running
//! it over the `P`-based flood-set consensus gives an atomic broadcast
//! that tolerates any number of crashes, as the paper's collapse
//! predicts.

use crate::consensus::{ConsensusCore, FloodSetConsensus, FloodSetMsg, Outbox};
use rfd_core::ProcessId;
use rfd_sim::{Automaton, Envelope, StepContext};
use std::collections::BTreeSet;

/// An atomically-broadcast message: origin index, per-origin sequence,
/// payload.
pub type Item<V> = (u16, u64, V);

/// A consensus batch: a sorted set of items. Ordering is customized so
/// that **non-empty batches sort before the empty one** — the flood-set
/// decision rule picks the minimum proposal, and an empty proposal must
/// never win over real work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch<V>(pub Vec<Item<V>>);

impl<V: Ord> PartialOrd for Batch<V> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<V: Ord> Ord for Batch<V> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        match (self.0.is_empty(), other.0.is_empty()) {
            (true, true) => core::cmp::Ordering::Equal,
            (true, false) => core::cmp::Ordering::Greater,
            (false, true) => core::cmp::Ordering::Less,
            (false, false) => self.0.cmp(&other.0),
        }
    }
}

/// Messages of the atomic broadcast protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbMsg<V> {
    /// Reliable diffusion of one item.
    Gossip(Item<V>),
    /// Embedded consensus traffic for the numbered instance.
    Consensus {
        /// Instance number.
        k: u64,
        /// Flood-set message over batches.
        inner: FloodSetMsg<Batch<V>>,
    },
}

/// A total-order delivery event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbDelivery<V> {
    /// Consensus instance that ordered the item.
    pub instance: u64,
    /// Originating process.
    pub origin: ProcessId,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Payload.
    pub value: V,
}

/// Atomic broadcast automaton over flood-set (`P`-based) consensus.
#[derive(Clone, Debug)]
pub struct AtomicBroadcast<V> {
    me: ProcessId,
    n: usize,
    to_send: Vec<V>,
    sent: bool,
    /// Items seen (gossiped) but not yet delivered.
    pending: BTreeSet<Item<V>>,
    /// Keys of delivered items.
    delivered: BTreeSet<(u16, u64)>,
    /// Gossip keys already forwarded.
    forwarded: BTreeSet<(u16, u64)>,
    /// Current consensus instance number.
    k: u64,
    inner: Option<FloodSetConsensus<Batch<V>>>,
    /// Consensus messages for instances ahead of us.
    buffered: Vec<(u64, ProcessId, FloodSetMsg<Batch<V>>)>,
}

impl<V: Clone + Eq + Ord> AtomicBroadcast<V> {
    /// Creates a process that A-broadcasts `to_send`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, to_send: Vec<V>) -> Self {
        Self {
            me,
            n,
            to_send,
            sent: false,
            pending: BTreeSet::new(),
            delivered: BTreeSet::new(),
            forwarded: BTreeSet::new(),
            k: 0,
            inner: None,
            buffered: Vec::new(),
        }
    }

    /// Builds a fleet from per-process payload lists.
    #[must_use]
    pub fn fleet(payloads: Vec<Vec<V>>) -> Vec<Self> {
        let n = payloads.len();
        payloads
            .into_iter()
            .enumerate()
            .map(|(ix, msgs)| Self::new(ProcessId::new(ix), n, msgs))
            .collect()
    }

    fn proposal(&self) -> Batch<V> {
        Batch(self.pending.iter().cloned().collect())
    }

    fn ensure_instance(&mut self) {
        if self.inner.is_none() {
            self.inner = Some(FloodSetConsensus::new(self.me, self.n, self.proposal()));
        }
    }

    fn replay_buffered(&mut self, ctx: &mut StepContext<AbMsg<V>, AbDelivery<V>>) {
        let k = self.k;
        let buffered = std::mem::take(&mut self.buffered);
        for (bk, from, msg) in buffered {
            if bk == k {
                self.ensure_instance();
                self.drive_inner(Some((from, &msg)), ctx);
            } else if bk > k {
                self.buffered.push((bk, from, msg));
            }
        }
    }

    fn drive_inner(
        &mut self,
        input: Option<(ProcessId, &FloodSetMsg<Batch<V>>)>,
        ctx: &mut StepContext<AbMsg<V>, AbDelivery<V>>,
    ) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let mut out = Outbox::new(self.me, self.n);
        let decided = inner.step(input, ctx.suspects(), &mut out);
        let k = self.k;
        for (to, msg) in out.drain() {
            ctx.send(to, AbMsg::Consensus { k, inner: msg });
        }
        if let Some(Batch(items)) = decided {
            for item in items {
                let key = (item.0, item.1);
                if self.delivered.insert(key) {
                    self.pending.remove(&item);
                    ctx.output(AbDelivery {
                        instance: k,
                        origin: ProcessId::new(item.0 as usize),
                        seq: item.1,
                        value: item.2,
                    });
                }
            }
            self.k += 1;
            self.inner = None;
            self.replay_buffered(ctx);
        }
    }
}

impl<V: Clone + Eq + Ord> Automaton for AtomicBroadcast<V> {
    type Msg = AbMsg<V>;
    type Output = AbDelivery<V>;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        // A-broadcast own payloads once, via gossip diffusion.
        if !self.sent {
            self.sent = true;
            let me = self.me.index() as u16;
            for (seq, value) in self.to_send.clone().into_iter().enumerate() {
                let item: Item<V> = (me, seq as u64, value);
                self.pending.insert(item.clone());
                self.forwarded.insert((item.0, item.1));
                ctx.broadcast_others(AbMsg::Gossip(item));
            }
        }
        // Handle the input.
        let mut inner_input: Option<(ProcessId, FloodSetMsg<Batch<V>>)> = None;
        if let Some(env) = input {
            match &env.payload {
                AbMsg::Gossip(item) => {
                    let key = (item.0, item.1);
                    if self.forwarded.insert(key) {
                        ctx.broadcast_others(AbMsg::Gossip(item.clone()));
                    }
                    if !self.delivered.contains(&key) {
                        self.pending.insert(item.clone());
                    }
                }
                AbMsg::Consensus { k, inner } => {
                    if *k == self.k {
                        self.ensure_instance();
                        inner_input = Some((env.from, inner.clone()));
                    } else if *k > self.k {
                        self.buffered.push((*k, env.from, inner.clone()));
                    }
                }
            }
        }
        // Start an instance when there is work to order.
        if self.inner.is_none() && !self.pending.is_empty() {
            self.ensure_instance();
        }
        if self.inner.is_some() {
            self.drive_inner(inner_input.as_ref().map(|(f, m)| (*f, m)), ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_ordering_prefers_nonempty() {
        let empty: Batch<u64> = Batch(Vec::new());
        let one = Batch(vec![(0, 0, 5u64)]);
        assert!(one < empty);
        assert_eq!(empty.cmp(&Batch(Vec::new())), core::cmp::Ordering::Equal);
        let two = Batch(vec![(0, 0, 5u64), (1, 0, 6)]);
        assert!(one < two, "lexicographic on contents otherwise");
    }

    #[test]
    fn proposal_reflects_pending() {
        let mut ab: AtomicBroadcast<u64> = AtomicBroadcast::new(ProcessId::new(0), 2, vec![]);
        assert!(ab.proposal().0.is_empty());
        ab.pending.insert((1, 0, 9));
        assert_eq!(ab.proposal().0, vec![(1, 0, 9)]);
    }
}
