//! Consensus from atomic broadcast — the easy direction of the §1.1
//! equivalence.
//!
//! "Solving [atomic broadcast] is known to be equivalent to solving the
//! consensus problem" (§1.1, after Chandra–Toueg). The transformation in
//! this direction is one line of protocol: **propose** by atomically
//! broadcasting your value, **decide** the first value A-delivered.
//! Total order makes everyone's "first" identical; validity follows from
//! the broadcast's no-creation property. Together with
//! [`super::AtomicBroadcast`] (consensus → atomic broadcast) this closes
//! the equivalence loop executable both ways.

use super::atomic::{AbDelivery, AbMsg, AtomicBroadcast};
use rfd_core::ProcessId;
use rfd_sim::{Automaton, Envelope, StepContext};

/// Consensus automaton built on an embedded [`AtomicBroadcast`].
#[derive(Clone, Debug)]
pub struct ConsensusViaAbcast<V> {
    inner: AtomicBroadcast<V>,
    decision: Option<V>,
}

impl<V: Clone + Eq + Ord> ConsensusViaAbcast<V> {
    /// Creates the process `me` of `n` proposing `proposal`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, proposal: V) -> Self {
        Self {
            inner: AtomicBroadcast::new(me, n, vec![proposal]),
            decision: None,
        }
    }

    /// Builds the fleet from a proposal vector.
    #[must_use]
    pub fn fleet(proposals: &[V]) -> Vec<Self> {
        let n = proposals.len();
        proposals
            .iter()
            .enumerate()
            .map(|(ix, v)| Self::new(ProcessId::new(ix), n, v.clone()))
            .collect()
    }

    /// The decision, if reached.
    #[must_use]
    pub fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

impl<V: Clone + Eq + Ord> Automaton for ConsensusViaAbcast<V> {
    type Msg = AbMsg<V>;
    type Output = V;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        // Drive the inner broadcast, capturing its deliveries.
        let mut carrier: StepContext<AbMsg<V>, AbDelivery<V>> =
            StepContext::new_for_embedding(ctx.me(), ctx.num_processes(), ctx.suspects());
        self.inner.on_step(input, &mut carrier);
        let (sends, deliveries) = carrier.into_effects();
        for (to, msg) in sends {
            ctx.send(to, msg);
        }
        for d in deliveries {
            if self.decision.is_none() {
                // Decide the FIRST A-delivered value.
                self.decision = Some(d.value.clone());
                ctx.output(d.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_consensus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfd_core::oracles::{Oracle, PerfectOracle};
    use rfd_core::{FailurePattern, Time};
    use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};

    #[test]
    fn consensus_via_abcast_is_uniform_consensus() {
        let mut rng = StdRng::seed_from_u64(0xAB2);
        let oracle = PerfectOracle::new(6, 3);
        let rounds = 2_000u64;
        for seed in 0..10u64 {
            let n = 4;
            let pattern = FailurePattern::random(n, n - 1, Time::new(300), &mut rng);
            let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), seed);
            let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
            let automata = ConsensusViaAbcast::fleet(&props);
            let config =
                SimConfig::new(seed, rounds).with_stop(StopCondition::EachCorrectOutput(1));
            let result = run(&pattern, &history, automata, &config);
            let v = check_consensus(&pattern, &result.trace, &props);
            assert!(
                v.is_uniform_consensus(),
                "seed={seed} pattern={pattern:?}: {v:?}"
            );
        }
    }

    #[test]
    fn decides_exactly_once() {
        let n = 3;
        let pattern = FailurePattern::new(n);
        let oracle = PerfectOracle::new(6, 3);
        let rounds = 2_000u64;
        let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 1);
        let props: Vec<u64> = vec![1, 2, 3];
        let automata = ConsensusViaAbcast::fleet(&props);
        let config = SimConfig::new(1, rounds).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        for ix in 0..n {
            assert!(
                result.trace.outputs_of(ProcessId::new(ix)).count() <= 1,
                "p{ix} decided more than once"
            );
        }
    }
}
