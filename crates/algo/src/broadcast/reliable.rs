//! Reliable broadcast by message diffusion.
//!
//! The crash-stop classic: deliver on first receipt and forward to all.
//! If any correct process delivers `m`, every correct process does
//! (agreement); a correct sender's messages are delivered by all correct
//! processes (validity); no duplication, no creation.

use rfd_core::ProcessId;
use rfd_sim::{Automaton, Envelope, StepContext};
use std::collections::BTreeSet;

/// A reliable-broadcast message: origin, per-origin sequence number,
/// payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RbMsg<V> {
    /// Index of the originating process.
    pub origin: u16,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Payload.
    pub value: V,
}

/// A delivery event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RbDelivery<V> {
    /// Originating process.
    pub origin: ProcessId,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Payload.
    pub value: V,
}

/// Reliable broadcast automaton. Each process is given the payloads it
/// must broadcast; deliveries are output events.
#[derive(Clone, Debug)]
pub struct ReliableBroadcast<V> {
    to_send: Vec<V>,
    sent: bool,
    seen: BTreeSet<(u16, u64)>,
}

impl<V: Clone> ReliableBroadcast<V> {
    /// Creates a process that broadcasts `to_send` (possibly empty).
    #[must_use]
    pub fn new(to_send: Vec<V>) -> Self {
        Self {
            to_send,
            sent: false,
            seen: BTreeSet::new(),
        }
    }

    /// Builds a fleet from per-process payload lists.
    #[must_use]
    pub fn fleet(payloads: Vec<Vec<V>>) -> Vec<Self> {
        payloads.into_iter().map(Self::new).collect()
    }
}

impl<V: Clone> Automaton for ReliableBroadcast<V> {
    type Msg = RbMsg<V>;
    type Output = RbDelivery<V>;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        if !self.sent {
            self.sent = true;
            let me = ctx.me().index() as u16;
            for (seq, value) in self.to_send.iter().enumerate() {
                ctx.broadcast(RbMsg {
                    origin: me,
                    seq: seq as u64,
                    value: value.clone(),
                });
            }
        }
        if let Some(env) = input {
            let key = (env.payload.origin, env.payload.seq);
            if self.seen.insert(key) {
                // First receipt: deliver and diffuse.
                ctx.output(RbDelivery {
                    origin: ProcessId::new(env.payload.origin as usize),
                    seq: env.payload.seq,
                    value: env.payload.value.clone(),
                });
                ctx.broadcast_others(env.payload.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_core::{FailurePattern, History, ProcessSet, Time};
    use rfd_sim::{run, SimConfig};

    #[test]
    fn all_correct_deliver_everything_exactly_once() {
        let n = 4;
        let payloads: Vec<Vec<u64>> = (0..n as u64).map(|i| vec![i * 10, i * 10 + 1]).collect();
        let pattern = FailurePattern::new(n);
        let silent = History::new(n, ProcessSet::empty());
        let result = run(
            &pattern,
            &silent,
            ReliableBroadcast::fleet(payloads),
            &SimConfig::new(5, 400),
        );
        for ix in 0..n {
            let mut got: Vec<(usize, u64, u64)> = result
                .trace
                .outputs_of(ProcessId::new(ix))
                .map(|e| (e.value.origin.index(), e.value.seq, e.value.value))
                .collect();
            got.sort_unstable();
            assert_eq!(got.len(), 2 * n, "p{ix} must deliver all 8 messages once");
        }
    }

    #[test]
    fn diffusion_survives_sender_crash_after_partial_send() {
        // p0 crashes early; if anyone delivered its message, all correct
        // must. (With crash at t=0 p0 sends nothing at all — also fine.)
        let n = 4;
        let payloads = vec![vec![1u64], vec![], vec![], vec![]];
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(3));
        let silent = History::new(n, ProcessSet::empty());
        let result = run(
            &pattern,
            &silent,
            ReliableBroadcast::fleet(payloads),
            &SimConfig::new(9, 400),
        );
        let delivered_by: Vec<bool> = (0..n)
            .map(|ix| {
                result
                    .trace
                    .outputs_of(ProcessId::new(ix))
                    .any(|e| e.value.value == 1)
            })
            .collect();
        let any_correct = delivered_by[1] || delivered_by[2] || delivered_by[3];
        if any_correct {
            assert!(
                delivered_by[1] && delivered_by[2] && delivered_by[3],
                "agreement: all correct must deliver"
            );
        }
    }
}
