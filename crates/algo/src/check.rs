//! Trace verdicts: consensus, correct-restricted consensus, TRB.
//!
//! Every experiment judges runs with these checkers; all of them return
//! structured witnesses rather than booleans so failures are debuggable
//! and reportable in the experiment tables.

use core::fmt;
use rfd_core::{FailurePattern, ProcessId, ProcessSet};
use rfd_sim::Trace;

/// Two processes decided differently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement<V> {
    /// First decider and its value.
    pub a: (ProcessId, V),
    /// Second decider and its conflicting value.
    pub b: (ProcessId, V),
}

impl<V: fmt::Debug> fmt::Display for Disagreement<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} decided {:?} but {} decided {:?}",
            self.a.0, self.a.1, self.b.0, self.b.1
        )
    }
}

/// A decision that was never proposed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidDecision<V> {
    /// The deciding process.
    pub process: ProcessId,
    /// The unproposed value it decided.
    pub value: V,
}

/// The verdict of a consensus run.
#[derive(Clone, Debug)]
pub struct ConsensusVerdict<V> {
    /// `Ok` iff every correct process decided; `Err` carries the correct
    /// processes that did not.
    pub termination: Result<(), ProcessSet>,
    /// Uniform agreement: no two processes (correct or not) decided
    /// differently.
    pub uniform_agreement: Result<(), Disagreement<V>>,
    /// Correct-restricted agreement: no two *correct* processes decided
    /// differently.
    pub correct_agreement: Result<(), Disagreement<V>>,
    /// Every decided value was proposed.
    pub validity: Result<(), InvalidDecision<V>>,
}

impl<V> ConsensusVerdict<V> {
    /// `true` iff the run satisfies **uniform** consensus.
    #[must_use]
    pub fn is_uniform_consensus(&self) -> bool {
        self.termination.is_ok() && self.uniform_agreement.is_ok() && self.validity.is_ok()
    }

    /// `true` iff the run satisfies **correct-restricted** consensus.
    #[must_use]
    pub fn is_correct_restricted_consensus(&self) -> bool {
        self.termination.is_ok() && self.correct_agreement.is_ok() && self.validity.is_ok()
    }
}

/// Judges a consensus trace: `proposals[i]` is `pᵢ`'s proposal; the
/// decision of a process is its **first** output event.
#[must_use]
pub fn check_consensus<V: Clone + Eq>(
    pattern: &FailurePattern,
    trace: &Trace<V>,
    proposals: &[V],
) -> ConsensusVerdict<V> {
    let n = pattern.num_processes();
    assert_eq!(proposals.len(), n, "one proposal per process");
    let firsts = trace.first_outputs(n);
    let decisions: Vec<Option<(ProcessId, V)>> = firsts
        .iter()
        .map(|ev| ev.map(|e| (e.process, e.value.clone())))
        .collect();

    let mut missing = ProcessSet::empty();
    for pid in pattern.correct() {
        if decisions[pid.index()].is_none() {
            missing.insert(pid);
        }
    }
    let termination = if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    };

    let disagreement_among = |filter: &dyn Fn(ProcessId) -> bool| {
        let mut seen: Option<(ProcessId, V)> = None;
        for d in decisions.iter().flatten() {
            if !filter(d.0) {
                continue;
            }
            match &seen {
                None => seen = Some(d.clone()),
                Some(first) if first.1 != d.1 => {
                    return Err(Disagreement {
                        a: first.clone(),
                        b: d.clone(),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(())
    };
    let uniform_agreement = disagreement_among(&|_| true);
    let correct = pattern.correct();
    let correct_agreement = disagreement_among(&|p| correct.contains(p));

    let mut validity = Ok(());
    for d in decisions.iter().flatten() {
        if !proposals.contains(&d.1) {
            validity = Err(InvalidDecision {
                process: d.0,
                value: d.1.clone(),
            });
            break;
        }
    }
    ConsensusVerdict {
        termination,
        uniform_agreement,
        correct_agreement,
        validity,
    }
}

/// The verdict of a terminating-reliable-broadcast run (§5 properties).
#[derive(Clone, Debug)]
pub struct TrbVerdict<V> {
    /// Every correct process delivered something.
    pub termination: Result<(), ProcessSet>,
    /// All correct processes delivered the same value.
    pub agreement: Result<(), Disagreement<V>>,
    /// If the initiator is correct, everyone delivered its message (the
    /// §5 validity property).
    pub validity: Result<(), InvalidDecision<V>>,
}

impl<V> TrbVerdict<V> {
    /// `true` iff the run satisfies TRB.
    #[must_use]
    pub fn is_trb(&self) -> bool {
        self.termination.is_ok() && self.agreement.is_ok() && self.validity.is_ok()
    }
}

/// Judges a TRB trace where delivery events carry `Option<V>`
/// (`None` = the paper's `nil`). `initiator` broadcast `message`.
#[must_use]
pub fn check_trb<V: Clone + Eq>(
    pattern: &FailurePattern,
    trace: &Trace<Option<V>>,
    initiator: ProcessId,
    message: &V,
) -> TrbVerdict<Option<V>> {
    let n = pattern.num_processes();
    let firsts = trace.first_outputs(n);
    let mut missing = ProcessSet::empty();
    for pid in pattern.correct() {
        if firsts[pid.index()].is_none() {
            missing.insert(pid);
        }
    }
    let termination = if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    };

    let correct = pattern.correct();
    let mut agreement = Ok(());
    let mut seen: Option<(ProcessId, Option<V>)> = None;
    for ev in firsts.iter().flatten() {
        if !correct.contains(ev.process) {
            continue;
        }
        match &seen {
            None => seen = Some((ev.process, ev.value.clone())),
            Some(first) if first.1 != ev.value => {
                agreement = Err(Disagreement {
                    a: first.clone(),
                    b: (ev.process, ev.value.clone()),
                });
                break;
            }
            Some(_) => {}
        }
    }

    // Validity: a correct initiator's message must be delivered by every
    // correct process; any delivered non-nil value must be the message.
    let mut validity = Ok(());
    for ev in firsts.iter().flatten() {
        match &ev.value {
            Some(v) if v != message => {
                validity = Err(InvalidDecision {
                    process: ev.process,
                    value: ev.value.clone(),
                });
                break;
            }
            None if correct.contains(initiator) && correct.contains(ev.process) => {
                validity = Err(InvalidDecision {
                    process: ev.process,
                    value: None,
                });
                break;
            }
            _ => {}
        }
    }
    TrbVerdict {
        termination,
        agreement,
        validity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_core::Time;
    use rfd_sim::OutputEvent;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn trace_of<V: Clone>(events: Vec<(usize, V)>) -> Trace<V> {
        Trace {
            events: events
                .into_iter()
                .enumerate()
                .map(|(k, (ix, value))| OutputEvent {
                    process: p(ix),
                    time: Time::new(k as u64),
                    value,
                    causal_past: ProcessSet::empty(),
                })
                .collect(),
            messages_sent: 0,
            messages_delivered: 0,
            steps: 0,
            end_time: Time::new(10),
            rounds: 1,
        }
    }

    #[test]
    fn unanimous_run_is_uniform_consensus() {
        let pattern = FailurePattern::new(3);
        let trace = trace_of(vec![(0, 5u64), (1, 5), (2, 5)]);
        let v = check_consensus(&pattern, &trace, &[5, 6, 7]);
        assert!(v.is_uniform_consensus());
        assert!(v.is_correct_restricted_consensus());
    }

    #[test]
    fn faulty_disagreement_breaks_uniform_but_not_correct_restricted() {
        let pattern = FailurePattern::new(3).with_crash(p(0), Time::new(1));
        // Faulty p0 decided 1; correct p1, p2 decided 2.
        let trace = trace_of(vec![(0, 1u64), (1, 2), (2, 2)]);
        let v = check_consensus(&pattern, &trace, &[1, 2, 3]);
        assert!(!v.is_uniform_consensus());
        assert!(v.uniform_agreement.is_err());
        assert!(v.is_correct_restricted_consensus());
    }

    #[test]
    fn missing_correct_decider_fails_termination() {
        let pattern = FailurePattern::new(3);
        let trace = trace_of(vec![(0, 1u64), (1, 1)]);
        let v = check_consensus(&pattern, &trace, &[1, 2, 3]);
        assert_eq!(v.termination, Err(ProcessSet::singleton(p(2))));
    }

    #[test]
    fn unproposed_value_fails_validity() {
        let pattern = FailurePattern::new(2);
        let trace = trace_of(vec![(0, 9u64), (1, 9)]);
        let v = check_consensus(&pattern, &trace, &[1, 2]);
        assert!(v.validity.is_err());
    }

    #[test]
    fn trb_nil_with_correct_initiator_fails_validity() {
        let pattern = FailurePattern::new(2);
        let trace = trace_of(vec![(0, Some(7u64)), (1, None)]);
        let v = check_trb(&pattern, &trace, p(0), &7);
        assert!(v.validity.is_err());
        assert!(v.agreement.is_err());
    }

    #[test]
    fn trb_nil_with_crashed_initiator_is_fine() {
        let pattern = FailurePattern::new(2).with_crash(p(0), Time::ZERO);
        let trace = trace_of(vec![(1, None::<u64>)]);
        let v = check_trb(&pattern, &trace, p(0), &7);
        assert!(v.is_trb(), "{v:?}");
    }

    #[test]
    fn trb_wrong_message_fails_validity() {
        let pattern = FailurePattern::new(2);
        let trace = trace_of(vec![(0, Some(7u64)), (1, Some(8))]);
        let v = check_trb(&pattern, &trace, p(0), &7);
        assert!(v.validity.is_err());
    }
}
