//! Early-deciding flood-set consensus over `P`.
//!
//! The plain [`super::FloodSetConsensus`] always runs `n` rounds — the
//! worst case for `f = n − 1`. In failure-light runs that is wasteful:
//! the classic early-stopping rule decides as soon as the participant
//! set has been **stable for two consecutive rounds** (the `min(f+2, n)`
//! flavor: one stable round proves everyone converged on the same value
//! set; the second guards *uniform* agreement against a decider that
//! crashes immediately after deciding while slower processes still
//! observe churn).
//!
//! This is the design-choice ablation `DESIGN.md` calls out: experiment
//! E9b compares its decision latency against the fixed-round version as
//! `f` varies.

use super::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};
use std::collections::BTreeSet;

/// Messages of the early-deciding flood-set algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EarlyFloodSetMsg<V> {
    /// Round-`r` flood of the sender's value set.
    Round {
        /// Round number, `1..`.
        r: u32,
        /// The sender's value set at the start of its round `r`.
        values: Vec<V>,
    },
    /// Decision announcement.
    Decided(V),
}

/// Early-deciding flood-set consensus state machine (class `P`).
#[derive(Clone, Debug)]
pub struct EarlyFloodSetConsensus<V> {
    n: usize,
    round: u32,
    values: BTreeSet<V>,
    sent_this_round: bool,
    received: ProcessSet,
    /// Participant set of the previous completed round.
    prev_participants: Option<ProcessSet>,
    /// Consecutive rounds with an unchanged participant set.
    stable_streak: u32,
    buffered: Vec<(u32, ProcessId, Vec<V>)>,
    decision: Option<V>,
    announced: bool,
}

impl<V: Clone + Eq + Ord> EarlyFloodSetConsensus<V> {
    /// The round this process is currently in (diagnostic; the ablation
    /// reads it to compare round counts).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    fn absorb(&mut self, from: ProcessId, values: Vec<V>) {
        self.received.insert(from);
        self.values.extend(values);
    }

    fn enter_round(&mut self) {
        self.sent_this_round = false;
        self.received = ProcessSet::empty();
        let round = self.round;
        let pending: Vec<(u32, ProcessId, Vec<V>)> = std::mem::take(&mut self.buffered);
        for (r, from, values) in pending {
            if r == round {
                self.absorb(from, values);
            } else if r > round {
                self.buffered.push((r, from, values));
            }
        }
    }

    fn wait_satisfied(&self, suspects: ProcessSet) -> bool {
        (0..self.n).all(|ix| {
            let q = ProcessId::new(ix);
            self.received.contains(q) || suspects.contains(q)
        })
    }

    fn decide(&mut self, out: &mut Outbox<EarlyFloodSetMsg<V>>) -> Option<V> {
        let v = self
            .values
            .iter()
            .next()
            .expect("own proposal present")
            .clone();
        self.decision = Some(v.clone());
        self.announced = true;
        out.broadcast(EarlyFloodSetMsg::Decided(v.clone()));
        Some(v)
    }
}

impl<V: Clone + Eq + Ord> ConsensusCore for EarlyFloodSetConsensus<V> {
    type Msg = EarlyFloodSetMsg<V>;
    type Val = V;

    fn new(_me: ProcessId, n: usize, proposal: V) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut values = BTreeSet::new();
        values.insert(proposal);
        Self {
            n,
            round: 1,
            values,
            sent_this_round: false,
            received: ProcessSet::empty(),
            prev_participants: None,
            stable_streak: 0,
            buffered: Vec::new(),
            decision: None,
            announced: false,
        }
    }

    fn step(
        &mut self,
        input: Option<(ProcessId, &EarlyFloodSetMsg<V>)>,
        suspects: ProcessSet,
        out: &mut Outbox<EarlyFloodSetMsg<V>>,
    ) -> Option<V> {
        match input {
            Some((_, EarlyFloodSetMsg::Decided(v))) => {
                if self.decision.is_none() {
                    self.decision = Some(v.clone());
                    if !self.announced {
                        self.announced = true;
                        out.broadcast(EarlyFloodSetMsg::Decided(v.clone()));
                    }
                    return Some(v.clone());
                }
                return None;
            }
            Some((from, EarlyFloodSetMsg::Round { r, values })) if self.decision.is_none() => {
                if *r == self.round {
                    self.absorb(from, values.clone());
                } else if *r > self.round {
                    self.buffered.push((*r, from, values.clone()));
                }
            }
            _ => {}
        }
        if self.decision.is_some() {
            return None;
        }
        if !self.sent_this_round {
            self.sent_this_round = true;
            out.broadcast(EarlyFloodSetMsg::Round {
                r: self.round,
                values: self.values.iter().cloned().collect(),
            });
        }
        if self.wait_satisfied(suspects) {
            // Round completed: compare the participant set with the
            // previous round's.
            if self.prev_participants == Some(self.received) {
                self.stable_streak += 1;
            } else {
                self.stable_streak = 0;
            }
            self.prev_participants = Some(self.received);
            // Two consecutive stable rounds, or the exhaustive bound.
            if self.stable_streak >= 2 || self.round as usize >= self.n {
                return self.decide(out);
            }
            self.round += 1;
            self.enter_round();
        }
        None
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_consensus;
    use crate::consensus::ConsensusAutomaton;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfd_core::oracles::{Oracle, PerfectOracle};
    use rfd_core::{FailurePattern, Time};
    use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};

    const ROUNDS: u64 = 700;

    #[test]
    fn early_floodset_is_uniform_consensus_random_sweep() {
        let mut rng = StdRng::seed_from_u64(0xEF);
        let oracle = PerfectOracle::new(6, 3);
        for n in [3usize, 5, 7] {
            for seed in 0..15u64 {
                let pattern = FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng);
                let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
                let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
                let automata = ConsensusAutomaton::<EarlyFloodSetConsensus<u64>>::fleet(&props);
                let config =
                    SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
                let result = run(&pattern, &history, automata, &config);
                let v = check_consensus(&pattern, &result.trace, &props);
                assert!(
                    v.is_uniform_consensus(),
                    "n={n} seed={seed} pattern={pattern:?}: {v:?}"
                );
            }
        }
    }

    #[test]
    fn early_decider_finishes_before_the_exhaustive_bound_when_failure_free() {
        let n = 8;
        let pattern = FailurePattern::new(n);
        let oracle = PerfectOracle::new(6, 3);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 0);
        let props: Vec<u64> = (0..n as u64).collect();
        let automata = ConsensusAutomaton::<EarlyFloodSetConsensus<u64>>::fleet(&props);
        let config = SimConfig::new(1, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        // The first decider must have stopped well before n rounds.
        let max_round = result
            .automata
            .iter()
            .map(|a| a.core().round())
            .max()
            .unwrap();
        assert!(
            max_round < n as u32,
            "early stopping should beat the n-round bound (saw round {max_round})"
        );
    }

    #[test]
    fn early_floodset_is_total() {
        let oracle = PerfectOracle::new(6, 3);
        let mut rng = StdRng::seed_from_u64(0xEE);
        for seed in 0..10u64 {
            let n = 5;
            let pattern = FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng);
            let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
            let props: Vec<u64> = (0..n as u64).collect();
            let automata = ConsensusAutomaton::<EarlyFloodSetConsensus<u64>>::fleet(&props);
            let config =
                SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
            let result = run(&pattern, &history, automata, &config);
            assert_eq!(result.trace.check_totality(&pattern), Ok(()), "seed={seed}");
        }
    }
}
