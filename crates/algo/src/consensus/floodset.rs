//! Flood-set consensus over a Perfect failure detector.
//!
//! The sufficiency half of Proposition 4.3: `P` solves uniform consensus
//! no matter how many processes crash. The algorithm floods known values
//! for `n` asynchronous rounds, each round waiting for a round-`r` message
//! from every process not currently suspected. With at most `n − 1`
//! crashes, some round is crash-free, after which all participants hold
//! the same value set; deciding `min` of the set after round `n` is then
//! uniform.
//!
//! The algorithm is **total** (Lemma 4.1): with a strongly accurate
//! detector, every round's wait covers every non-crashed process, so the
//! decision's causal chain contains a message from each of them.

use super::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};
use std::collections::BTreeSet;

/// Messages of the flood-set algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FloodSetMsg<V> {
    /// Round-`r` flood of the sender's value set.
    Round {
        /// Round number, `1..=n`.
        r: u32,
        /// The sender's value set at the start of its round `r`.
        values: Vec<V>,
    },
    /// Decision announcement (received values are adopted and relayed).
    Decided(V),
}

/// Flood-set consensus state machine (class `P`).
#[derive(Clone, Debug)]
pub struct FloodSetConsensus<V> {
    n: usize,
    round: u32,
    values: BTreeSet<V>,
    sent_this_round: bool,
    received: ProcessSet,
    /// Round-`r` messages for rounds we have not reached yet.
    buffered: Vec<(u32, ProcessId, Vec<V>)>,
    decision: Option<V>,
    announced: bool,
}

impl<V: Clone + Eq + Ord> FloodSetConsensus<V> {
    fn enter_round(&mut self) {
        self.sent_this_round = false;
        self.received = ProcessSet::empty();
        let round = self.round;
        let pending: Vec<(u32, ProcessId, Vec<V>)> = std::mem::take(&mut self.buffered);
        for (r, from, values) in pending {
            if r == round {
                self.absorb(from, values);
            } else if r > round {
                self.buffered.push((r, from, values));
            }
        }
    }

    fn absorb(&mut self, from: ProcessId, values: Vec<V>) {
        self.received.insert(from);
        self.values.extend(values);
    }

    fn wait_satisfied(&self, suspects: ProcessSet) -> bool {
        (0..self.n).all(|ix| {
            let q = ProcessId::new(ix);
            self.received.contains(q) || suspects.contains(q)
        })
    }

    fn decide(&mut self, out: &mut Outbox<FloodSetMsg<V>>) -> Option<V> {
        let v = self
            .values
            .iter()
            .next()
            .expect("own proposal is always present")
            .clone();
        self.decision = Some(v.clone());
        self.announced = true;
        out.broadcast(FloodSetMsg::Decided(v.clone()));
        Some(v)
    }
}

impl<V: Clone + Eq + Ord> ConsensusCore for FloodSetConsensus<V> {
    type Msg = FloodSetMsg<V>;
    type Val = V;

    fn new(_me: ProcessId, n: usize, proposal: V) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut values = BTreeSet::new();
        values.insert(proposal);
        Self {
            n,
            round: 1,
            values,
            sent_this_round: false,
            received: ProcessSet::empty(),
            buffered: Vec::new(),
            decision: None,
            announced: false,
        }
    }

    fn step(
        &mut self,
        input: Option<(ProcessId, &FloodSetMsg<V>)>,
        suspects: ProcessSet,
        out: &mut Outbox<FloodSetMsg<V>>,
    ) -> Option<V> {
        // Handle the received message.
        match input {
            Some((_, FloodSetMsg::Decided(v))) => {
                if self.decision.is_none() {
                    self.decision = Some(v.clone());
                    if !self.announced {
                        self.announced = true;
                        out.broadcast(FloodSetMsg::Decided(v.clone()));
                    }
                    return Some(v.clone());
                }
                return None;
            }
            Some((from, FloodSetMsg::Round { r, values })) if self.decision.is_none() => {
                if *r == self.round {
                    self.absorb(from, values.clone());
                } else if *r > self.round {
                    self.buffered.push((*r, from, values.clone()));
                }
                // Older rounds are stale: discard (crucial for
                // uniformity — late floods from crashed processes must
                // not contaminate settled value sets).
            }
            _ => {}
        }
        if self.decision.is_some() {
            return None;
        }
        // Send this round's flood once.
        if !self.sent_this_round {
            self.sent_this_round = true;
            out.broadcast(FloodSetMsg::Round {
                r: self.round,
                values: self.values.iter().cloned().collect(),
            });
        }
        // Advance when every non-suspected process has been heard.
        if self.wait_satisfied(suspects) {
            if self.round as usize >= self.n {
                return self.decide(out);
            }
            self.round += 1;
            self.enter_round();
        }
        None
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn single_process_decides_its_own_value() {
        let mut c: FloodSetConsensus<u64> = FloodSetConsensus::new(p(0), 1, 42);
        let mut out = Outbox::new(p(0), 1);
        // First step sends the flood; own message not yet delivered.
        assert_eq!(c.step(None, ProcessSet::empty(), &mut out), None);
        // Deliver own round-1 message: the wait closes and round 1 = n,
        // so the process decides.
        let msg = FloodSetMsg::Round {
            r: 1,
            values: vec![42],
        };
        let mut out2 = Outbox::new(p(0), 1);
        assert_eq!(
            c.step(Some((p(0), &msg)), ProcessSet::empty(), &mut out2),
            Some(42)
        );
        assert_eq!(c.decision(), Some(&42));
    }

    #[test]
    fn suspected_processes_are_not_waited_for() {
        let mut c: FloodSetConsensus<u64> = FloodSetConsensus::new(p(0), 2, 5);
        let everyone_else = ProcessSet::singleton(p(1));
        let mut out = Outbox::new(p(0), 2);
        c.step(None, everyone_else, &mut out);
        // p1 suspected; own message still outstanding.
        assert_eq!(c.decision(), None);
        let own = FloodSetMsg::Round {
            r: 1,
            values: vec![5],
        };
        let mut out2 = Outbox::new(p(0), 2);
        c.step(Some((p(0), &own)), everyone_else, &mut out2);
        // Round 2 of 2 still pending: need own round-2 message.
        let own2 = FloodSetMsg::Round {
            r: 2,
            values: vec![5],
        };
        let mut out3 = Outbox::new(p(0), 2);
        let d = c.step(Some((p(0), &own2)), everyone_else, &mut out3);
        assert_eq!(d, Some(5));
    }

    #[test]
    fn decided_message_short_circuits() {
        let mut c: FloodSetConsensus<u64> = FloodSetConsensus::new(p(1), 3, 9);
        let mut out = Outbox::new(p(1), 3);
        let d = c.step(
            Some((p(0), &FloodSetMsg::Decided(3))),
            ProcessSet::empty(),
            &mut out,
        );
        assert_eq!(d, Some(3));
        // The decision is relayed exactly once.
        assert_eq!(out.drain().len(), 3);
        let mut out2 = Outbox::new(p(1), 3);
        let again = c.step(
            Some((p(2), &FloodSetMsg::Decided(3))),
            ProcessSet::empty(),
            &mut out2,
        );
        assert_eq!(again, None);
        assert!(out2.drain().is_empty());
    }

    #[test]
    fn future_round_messages_are_buffered_not_lost() {
        let mut c: FloodSetConsensus<u64> = FloodSetConsensus::new(p(0), 2, 7);
        let mut out = Outbox::new(p(0), 2);
        // p1 races ahead: its round-2 message arrives while we are in
        // round 1.
        let future = FloodSetMsg::Round {
            r: 2,
            values: vec![1],
        };
        c.step(Some((p(1), &future)), ProcessSet::empty(), &mut out);
        assert!(!c.values.contains(&1), "future values must not merge early");
        // Round-1 messages from both close round 1.
        let r1_own = FloodSetMsg::Round {
            r: 1,
            values: vec![7],
        };
        let r1_p1 = FloodSetMsg::Round {
            r: 1,
            values: vec![1],
        };
        let mut o = Outbox::new(p(0), 2);
        c.step(Some((p(0), &r1_own)), ProcessSet::empty(), &mut o);
        let mut o = Outbox::new(p(0), 2);
        c.step(Some((p(1), &r1_p1)), ProcessSet::empty(), &mut o);
        // Entering round 2 replays the buffered message.
        assert_eq!(c.round, 2);
        assert!(c.received.contains(p(1)));
        assert!(c.values.contains(&1));
    }
}
