//! The `P<`-based *correct-restricted* consensus algorithm (§6.2).
//!
//! §6.2 separates uniform from correct-restricted consensus: with the
//! Partially Perfect class `P<` (strong accuracy, but only higher-index
//! processes must detect a crash) there is an algorithm — after
//! Guerraoui's atomic-commit construction [8] — that solves
//! correct-restricted consensus for **any** number of failures, although
//! `P<` is strictly weaker than `P`. Uniform agreement, however, can
//! fail: a low-index process may decide its own value and crash before
//! anyone hears it. Experiment E4 exhibits exactly that run.
//!
//! Protocol for process `pᵢ`: wait until, for every `j < i`, either
//! `pⱼ`'s decision has been received or `pⱼ` is suspected; then decide
//! the decision of the **highest-index** process heard from (falling back
//! to the own proposal if none), and announce it. The chain argument:
//! every decider above the lowest correct process `c` transitively adopts
//! `c`'s decision, because `c` can never be suspected (strong accuracy)
//! and so must be heard.

use super::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};

/// Messages of the ranked algorithm: a process announces its decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankedMsg<V> {
    /// The announcer's decision.
    pub decision: V,
}

/// `P<`-based correct-restricted consensus state machine.
#[derive(Clone, Debug)]
pub struct RankedConsensus<V> {
    me: ProcessId,
    proposal: V,
    /// Decisions received from lower-index processes.
    heard: Vec<Option<V>>,
    decision: Option<V>,
}

impl<V: Clone + Eq + Ord> ConsensusCore for RankedConsensus<V> {
    type Msg = RankedMsg<V>;
    type Val = V;

    fn new(me: ProcessId, n: usize, proposal: V) -> Self {
        assert!(n >= 1, "need at least one process");
        Self {
            me,
            proposal,
            heard: vec![None; n],
            decision: None,
        }
    }

    fn step(
        &mut self,
        input: Option<(ProcessId, &RankedMsg<V>)>,
        suspects: ProcessSet,
        out: &mut Outbox<RankedMsg<V>>,
    ) -> Option<V> {
        if let Some((from, msg)) = input {
            // Only lower-index announcements matter for the wait.
            self.heard[from.index()].get_or_insert_with(|| msg.decision.clone());
        }
        if self.decision.is_some() {
            return None;
        }
        let all_resolved = (0..self.me.index())
            .all(|j| self.heard[j].is_some() || suspects.contains(ProcessId::new(j)));
        if !all_resolved {
            return None;
        }
        let adopted = (0..self.me.index())
            .rev()
            .find_map(|j| self.heard[j].clone())
            .unwrap_or_else(|| self.proposal.clone());
        self.decision = Some(adopted.clone());
        out.broadcast(RankedMsg {
            decision: adopted.clone(),
        });
        Some(adopted)
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn p0_decides_immediately_with_its_own_value() {
        let mut c: RankedConsensus<u64> = RankedConsensus::new(p(0), 3, 10);
        let mut out = Outbox::new(p(0), 3);
        assert_eq!(c.step(None, ProcessSet::empty(), &mut out), Some(10));
        assert_eq!(out.drain().len(), 3);
    }

    #[test]
    fn higher_process_adopts_highest_heard_decision() {
        let mut c: RankedConsensus<u64> = RankedConsensus::new(p(2), 3, 30);
        let mut out = Outbox::new(p(2), 3);
        // Hears p0's decision but still waits for p1.
        assert_eq!(
            c.step(
                Some((p(0), &RankedMsg { decision: 10 })),
                ProcessSet::empty(),
                &mut out
            ),
            None
        );
        // Hears p1 (which had suspected p0 and decided 20): adopts p1's —
        // the highest-index — decision, matching the chain argument.
        let mut out2 = Outbox::new(p(2), 3);
        assert_eq!(
            c.step(
                Some((p(1), &RankedMsg { decision: 20 })),
                ProcessSet::empty(),
                &mut out2
            ),
            Some(20)
        );
    }

    #[test]
    fn suspicion_substitutes_for_a_missing_decision() {
        let mut c: RankedConsensus<u64> = RankedConsensus::new(p(1), 2, 20);
        let mut out = Outbox::new(p(1), 2);
        assert_eq!(c.step(None, ProcessSet::empty(), &mut out), None);
        let mut out2 = Outbox::new(p(1), 2);
        assert_eq!(
            c.step(None, ProcessSet::singleton(p(0)), &mut out2),
            Some(20)
        );
    }

    #[test]
    fn decides_at_most_once() {
        let mut c: RankedConsensus<u64> = RankedConsensus::new(p(0), 2, 1);
        let mut out = Outbox::new(p(0), 2);
        assert_eq!(c.step(None, ProcessSet::empty(), &mut out), Some(1));
        let mut out2 = Outbox::new(p(0), 2);
        assert_eq!(c.step(None, ProcessSet::empty(), &mut out2), None);
        assert!(out2.drain().is_empty());
    }
}
