//! The Chandra–Toueg `◇S` rotating-coordinator consensus algorithm.
//!
//! The paper's baseline (§1.2): `◇S` solves consensus **only** with a
//! majority of correct processes, and the algorithm is **not total**
//! (footnote 4: "only a majority needs to be consulted, even if all
//! processes are correct") — which is why `◇S` escapes the `T_{D⇒P}`
//! reduction, and why it stops terminating once `f ≥ ⌈n/2⌉` (experiment
//! E9's crossover).
//!
//! Structure (Chandra & Toueg, JACM 1996, Fig. 6), per round `r` with
//! coordinator `c = r mod n`:
//!
//! 1. everyone sends its timestamped estimate to `c`;
//! 2. `c` collects `⌈(n+1)/2⌉` estimates and proposes the one with the
//!    highest timestamp;
//! 3. participants wait for `c`'s proposal **or** suspect `c`: adopt +
//!    ack, or nack;
//! 4. `c` collects `⌈(n+1)/2⌉` replies; if all are acks it reliably
//!    broadcasts the decision.

use super::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};
use std::collections::BTreeMap;

/// Messages of the `◇S` rotating-coordinator algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RotatingMsg<V> {
    /// Phase-1 estimate sent to the round's coordinator.
    Estimate {
        /// Round number.
        r: u64,
        /// Timestamp: the round in which the estimate was last adopted.
        ts: u64,
        /// The estimate.
        v: V,
    },
    /// Phase-2 coordinator proposal.
    Propose {
        /// Round number.
        r: u64,
        /// Proposed value.
        v: V,
    },
    /// Phase-3 positive reply.
    Ack {
        /// Round number.
        r: u64,
    },
    /// Phase-3 negative reply (the coordinator was suspected).
    Nack {
        /// Round number.
        r: u64,
    },
    /// Phase-4 decision announcement (reliably relayed).
    Decide(V),
}

/// Per-round coordinator bookkeeping.
///
/// Quorums are counted over **distinct senders**: the retransmission
/// plane of the decision service re-delivers phase messages at will, so
/// a duplicated `Estimate`/`Ack`/`Nack` must never inflate a majority —
/// receipt is idempotent by construction.
#[derive(Clone, Debug, Default)]
struct CoordRound<V> {
    /// Processes whose estimate was already counted.
    heard: ProcessSet,
    estimates: Vec<(u64, V)>,
    proposed: Option<V>,
    /// Processes that acked this round's proposal.
    acks: ProcessSet,
    /// Processes that nacked this round's proposal.
    nacks: ProcessSet,
    resolved: bool,
}

impl<V> CoordRound<V> {
    fn empty() -> Self {
        Self {
            heard: ProcessSet::empty(),
            estimates: Vec::new(),
            proposed: None,
            acks: ProcessSet::empty(),
            nacks: ProcessSet::empty(),
            resolved: false,
        }
    }
}

/// Chandra–Toueg `◇S` rotating-coordinator consensus state machine.
#[derive(Clone, Debug)]
pub struct RotatingConsensus<V> {
    me: ProcessId,
    n: usize,
    majority: usize,
    round: u64,
    estimate: V,
    ts: u64,
    sent_estimate: bool,
    /// Buffered coordinator proposals for rounds ahead of us.
    pending_proposals: BTreeMap<u64, V>,
    /// Coordinator state for rounds this process coordinates.
    coord: BTreeMap<u64, CoordRound<V>>,
    decision: Option<V>,
    announced: bool,
    /// Hard cap on rounds to keep non-terminating runs (f ≥ n/2) bounded.
    max_round: u64,
}

impl<V: Clone + Eq + Ord> RotatingConsensus<V> {
    /// The coordinator of round `r`.
    #[must_use]
    pub fn coordinator(&self, r: u64) -> ProcessId {
        ProcessId::new((r % self.n as u64) as usize)
    }

    /// The round this process is currently in (diagnostic).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    fn coordinate(&mut self, r: u64, out: &mut Outbox<RotatingMsg<V>>) {
        let majority = self.majority;
        let state = self.coord.entry(r).or_insert_with(CoordRound::empty);
        if state.resolved {
            return;
        }
        if state.proposed.is_none() && state.estimates.len() >= majority {
            let (_, v) = state
                .estimates
                .iter()
                .max_by_key(|(ts, _)| *ts)
                .expect("nonempty")
                .clone();
            state.proposed = Some(v.clone());
            out.broadcast(RotatingMsg::Propose { r, v });
        }
        if state.proposed.is_some() && state.acks.len() + state.nacks.len() >= majority {
            state.resolved = true;
            if state.nacks.is_empty() {
                let v = state.proposed.clone().expect("proposed above");
                if self.decision.is_none() && !self.announced {
                    self.announced = true;
                    out.broadcast(RotatingMsg::Decide(v));
                }
            }
        }
    }

    fn advance_round(&mut self, out: &mut Outbox<RotatingMsg<V>>) {
        self.round += 1;
        self.sent_estimate = false;
        self.participate(out);
    }

    fn participate(&mut self, out: &mut Outbox<RotatingMsg<V>>) {
        if self.round > self.max_round || self.decision.is_some() {
            return;
        }
        if !self.sent_estimate {
            self.sent_estimate = true;
            out.send(
                self.coordinator(self.round),
                RotatingMsg::Estimate {
                    r: self.round,
                    ts: self.ts,
                    v: self.estimate.clone(),
                },
            );
        }
    }

    fn handle_proposal(&mut self, r: u64, v: V, out: &mut Outbox<RotatingMsg<V>>) {
        use core::cmp::Ordering;
        match r.cmp(&self.round) {
            Ordering::Equal => {
                self.estimate = v;
                self.ts = r;
                out.send(self.coordinator(r), RotatingMsg::Ack { r });
                self.advance_round(out);
            }
            Ordering::Greater => {
                self.pending_proposals.insert(r, v);
            }
            Ordering::Less => {}
        }
    }
}

impl<V: Clone + Eq + Ord> ConsensusCore for RotatingConsensus<V> {
    type Msg = RotatingMsg<V>;
    type Val = V;

    fn new(me: ProcessId, n: usize, proposal: V) -> Self {
        assert!(n >= 1, "need at least one process");
        Self {
            me,
            n,
            majority: n / 2 + 1,
            round: 0,
            estimate: proposal,
            ts: 0,
            sent_estimate: false,
            pending_proposals: BTreeMap::new(),
            coord: BTreeMap::new(),
            decision: None,
            announced: false,
            max_round: 1_000_000,
        }
    }

    fn step(
        &mut self,
        input: Option<(ProcessId, &RotatingMsg<V>)>,
        suspects: ProcessSet,
        out: &mut Outbox<RotatingMsg<V>>,
    ) -> Option<V> {
        match input {
            Some((_, RotatingMsg::Decide(v))) => {
                if self.decision.is_none() {
                    self.decision = Some(v.clone());
                    if !self.announced {
                        self.announced = true;
                        out.broadcast(RotatingMsg::Decide(v.clone()));
                    }
                    return Some(v.clone());
                }
                return None;
            }
            Some((from, RotatingMsg::Estimate { r, ts, v })) if self.coordinator(*r) == self.me => {
                let state = self.coord.entry(*r).or_insert_with(CoordRound::empty);
                if state.heard.insert(from) {
                    state.estimates.push((*ts, v.clone()));
                }
                self.coordinate(*r, out);
            }
            Some((_, RotatingMsg::Propose { r, v })) => {
                let (r, v) = (*r, v.clone());
                self.handle_proposal(r, v, out);
            }
            Some((from, RotatingMsg::Ack { r })) if self.coordinator(*r) == self.me => {
                let state = self.coord.entry(*r).or_insert_with(CoordRound::empty);
                if !state.nacks.contains(from) {
                    state.acks.insert(from);
                }
                self.coordinate(*r, out);
            }
            Some((from, RotatingMsg::Nack { r })) if self.coordinator(*r) == self.me => {
                let state = self.coord.entry(*r).or_insert_with(CoordRound::empty);
                if !state.acks.contains(from) {
                    state.nacks.insert(from);
                }
                self.coordinate(*r, out);
            }
            _ => {}
        }
        if self.decision.is_some() {
            return None;
        }
        self.participate(out);
        // Apply a buffered proposal for the (new) current round, if any.
        if let Some(v) = self.pending_proposals.remove(&self.round) {
            self.handle_proposal(self.round, v, out);
        } else {
            // Phase 3 escape hatch: suspect the coordinator → nack and
            // move on.
            let c = self.coordinator(self.round);
            if c != self.me && suspects.contains(c) && self.sent_estimate {
                out.send(c, RotatingMsg::Nack { r: self.round });
                self.advance_round(out);
            }
        }
        None
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }

    /// Re-emits every stalled conversation of this process:
    ///
    /// * **participant** — an estimate for **every visited round**, so
    ///   any coordinator that missed one can still reach its phase-1
    ///   quorum. Rounds advance one at a time, so this process entered —
    ///   and owes an estimate to — every `r ≤ round`, and under the
    ///   quasi-reliable channels the paper assumes each of those sends
    ///   would eventually arrive. Re-sending only the current round is
    ///   not enough: under loss, processes scatter across rounds with
    ///   each stuck as the coordinator of its *own* current round
    ///   (`r mod n = me`), whose retransmitted estimate is a filtered
    ///   self-send — a fixed point that emits nothing. The visited-round
    ///   sweep breaks it: the minimal round among undecided processes has
    ///   been visited by everyone, so its coordinator's phase-1 quorum
    ///   eventually fills and the whole group cascades forward.
    /// * **coordinator** — every proposed-but-unresolved round's
    ///   `Propose`, so participants that missed it can still ack and
    ///   advance (the coordinator has already moved on as a participant,
    ///   so no later step re-emits these on its own).
    ///
    /// Re-sent estimates carry the **current** `(ts, v)`, which may be
    /// fresher than what the original round-`r` send carried. Safety is
    /// preserved: the locking lemma only requires that an estimate
    /// tagged `r` was produced while its sender's round was `≥ r` — so
    /// that any sender that acked an all-ack round `d < r` had already
    /// set `ts := d` — and a *later* state only raises `ts`, never
    /// lowers it; any estimate with `ts ≥ d` carries the decided value.
    /// Receipt stays idempotent: the coordinator counts the first
    /// estimate per sender and drops duplicates.
    fn retransmit(&self, out: &mut Outbox<RotatingMsg<V>>) {
        if self.decision.is_some() || self.round > self.max_round {
            return;
        }
        for r in 0..=self.round {
            if r == self.round && !self.sent_estimate {
                continue;
            }
            let c = self.coordinator(r);
            if c == self.me {
                // Our own coordinated rounds heard us via the self-loop
                // when we first participated; nothing to re-send.
                continue;
            }
            out.send(
                c,
                RotatingMsg::Estimate {
                    r,
                    ts: self.ts,
                    v: self.estimate.clone(),
                },
            );
        }
        for (r, state) in &self.coord {
            if let (Some(v), false) = (&state.proposed, state.resolved) {
                out.broadcast(RotatingMsg::Propose {
                    r: *r,
                    v: v.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn coordinator_rotates_modulo_n() {
        let c: RotatingConsensus<u64> = RotatingConsensus::new(p(0), 3, 1);
        assert_eq!(c.coordinator(0), p(0));
        assert_eq!(c.coordinator(1), p(1));
        assert_eq!(c.coordinator(3), p(0));
    }

    #[test]
    fn solo_round_zero_coordinator_decides_with_majority_one() {
        // n = 1: the single process is coordinator with majority 1.
        let mut c: RotatingConsensus<u64> = RotatingConsensus::new(p(0), 1, 7);
        let mut decided = None;
        let mut queue: Vec<(ProcessId, RotatingMsg<u64>)> = Vec::new();
        for _ in 0..50 {
            let input = queue.pop();
            let mut out = Outbox::new(p(0), 1);
            if let Some(v) = c.step(
                input.as_ref().map(|(f, m)| (*f, m)),
                ProcessSet::empty(),
                &mut out,
            ) {
                decided = Some(v);
                break;
            }
            for (to, m) in out.drain() {
                assert_eq!(to, p(0));
                queue.insert(0, (p(0), m));
            }
        }
        assert_eq!(decided, Some(7));
    }

    #[test]
    fn decide_message_is_adopted_and_relayed_once() {
        let mut c: RotatingConsensus<u64> = RotatingConsensus::new(p(2), 5, 9);
        let mut out = Outbox::new(p(2), 5);
        let d = c.step(
            Some((p(0), &RotatingMsg::Decide(4))),
            ProcessSet::empty(),
            &mut out,
        );
        assert_eq!(d, Some(4));
        assert_eq!(out.drain().len(), 5);
        let mut out2 = Outbox::new(p(2), 5);
        assert_eq!(
            c.step(
                Some((p(1), &RotatingMsg::Decide(4))),
                ProcessSet::empty(),
                &mut out2
            ),
            None
        );
        assert!(out2.drain().is_empty());
    }

    /// The retransmission plane re-delivers phase messages at will:
    /// duplicated `Estimate`s and `Ack`s from the same sender must not
    /// inflate the coordinator's quorum counts.
    #[test]
    fn duplicated_phase_messages_never_inflate_a_quorum() {
        // p0 coordinates round 0 of a 5-process group (majority 3).
        let mut c: RotatingConsensus<u64> = RotatingConsensus::new(p(0), 5, 1);
        let est = |v: u64| RotatingMsg::Estimate { r: 0, ts: 0, v };
        // Two distinct estimates plus three duplicates: still below the
        // majority of three distinct senders — no proposal may go out.
        for from in [p(1), p(2), p(1), p(2), p(1)] {
            let mut out = Outbox::new(p(0), 5);
            c.step(Some((from, &est(7))), ProcessSet::empty(), &mut out);
            assert!(
                out.drain()
                    .iter()
                    .all(|(_, m)| !matches!(m, RotatingMsg::Propose { .. })),
                "duplicate estimates must not reach a majority"
            );
        }
        // A third distinct estimate completes the quorum.
        let mut out = Outbox::new(p(0), 5);
        c.step(Some((p(3), &est(7))), ProcessSet::empty(), &mut out);
        assert!(out
            .drain()
            .iter()
            .any(|(_, m)| matches!(m, RotatingMsg::Propose { r: 0, .. })));
        // Two distinct acks plus duplicates: below the majority — the
        // coordinator must not decide.
        for from in [p(1), p(2), p(1), p(1), p(2)] {
            let mut out = Outbox::new(p(0), 5);
            c.step(
                Some((from, &RotatingMsg::Ack { r: 0 })),
                ProcessSet::empty(),
                &mut out,
            );
            assert!(
                out.drain()
                    .iter()
                    .all(|(_, m)| !matches!(m, RotatingMsg::Decide(_))),
                "duplicate acks must not complete a quorum"
            );
        }
        let mut out = Outbox::new(p(0), 5);
        c.step(
            Some((p(3), &RotatingMsg::Ack { r: 0 })),
            ProcessSet::empty(),
            &mut out,
        );
        assert!(out
            .drain()
            .iter()
            .any(|(_, m)| matches!(m, RotatingMsg::Decide(7))));
    }

    #[test]
    fn suspecting_the_coordinator_triggers_nack_and_round_advance() {
        let mut c: RotatingConsensus<u64> = RotatingConsensus::new(p(1), 3, 5);
        let mut out = Outbox::new(p(1), 3);
        // First step: sends estimate to coordinator p0.
        c.step(None, ProcessSet::empty(), &mut out);
        assert_eq!(c.round(), 0);
        // Suspect p0: nack + advance to round 1 (coordinator p1 = self).
        let mut out2 = Outbox::new(p(1), 3);
        c.step(None, ProcessSet::singleton(p(0)), &mut out2);
        assert_eq!(c.round(), 1);
        let msgs = out2.drain();
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == p(0) && matches!(m, RotatingMsg::Nack { r: 0 })));
        // The new estimate goes to round 1's coordinator (itself).
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == p(1) && matches!(m, RotatingMsg::Estimate { r: 1, .. })));
    }
}
