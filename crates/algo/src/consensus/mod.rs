//! Consensus algorithms (§4 and §6 of the paper).
//!
//! The uniform consensus problem: every process proposes a value;
//! *termination* — every correct process eventually decides; *(uniform)
//! agreement* — no two processes decide differently (even if one later
//! crashes); *validity* — the decided value was proposed.
//!
//! Implementations, one per failure detector class the paper discusses:
//!
//! * [`StrongConsensus`] — the Chandra–Toueg `S`-based algorithm; solves
//!   uniform consensus for **any** number of failures and is *total* with
//!   a realistic detector (footnote 4 of the paper).
//! * [`FloodSetConsensus`] — a `P`-based flood-set algorithm (the
//!   sufficiency half of Proposition 4.3); also total.
//! * [`EarlyFloodSetConsensus`] — the early-stopping variant (decide
//!   after two stable rounds instead of always `n`); the latency
//!   ablation of E9b.
//! * [`RotatingConsensus`] — the Chandra–Toueg `◇S` rotating-coordinator
//!   algorithm; requires a **correct majority** and is *not* total — the
//!   baseline against which Lemma 4.1's totality argument is exhibited.
//! * [`RankedConsensus`] — the `P<`-based algorithm of §6.2: solves only
//!   *correct-restricted* consensus (uniform agreement can fail).
//! * [`MaraboutConsensus`] — the §6.1 algorithm that solves consensus
//!   with the clairvoyant Marabout for any number of failures.
//!
//! All algorithms implement [`ConsensusCore`], a value-generic,
//! engine-independent state machine, and run inside the simulator through
//! the [`ConsensusAutomaton`] adapter (or embedded in other protocols —
//! the reductions of §4.3 wrap cores directly).

mod ct_strong;
mod early;
mod floodset;
mod marabout;
mod ranked;
mod rotating;

pub use ct_strong::{StrongConsensus, StrongMsg};
pub use early::{EarlyFloodSetConsensus, EarlyFloodSetMsg};
pub use floodset::{FloodSetConsensus, FloodSetMsg};
pub use marabout::{MaraboutConsensus, MaraboutMsg};
pub use ranked::{RankedConsensus, RankedMsg};
pub use rotating::{RotatingConsensus, RotatingMsg};

use rfd_core::{ProcessId, ProcessSet};
use rfd_sim::{Automaton, Envelope, StepContext};

/// Buffered sends produced by one [`ConsensusCore::step`].
#[derive(Debug)]
pub struct Outbox<M> {
    me: ProcessId,
    n: usize,
    msgs: Vec<(ProcessId, M)>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox for process `me` of `n`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self {
            me,
            n,
            msgs: Vec::new(),
        }
    }

    /// Queues a message to one destination.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Queues a message to every process (including the sender — cores
    /// rely on self-delivery for uniformity).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for ix in 0..self.n {
            self.msgs.push((ProcessId::new(ix), msg.clone()));
        }
    }

    /// The queued `(destination, message)` pairs.
    #[must_use]
    pub fn drain(self) -> Vec<(ProcessId, M)> {
        self.msgs
    }

    /// The owner of the outbox.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }
}

/// An engine-independent consensus state machine.
///
/// One `step` corresponds to one atomic step of the paper's model:
/// `input` is the received message (or `None` for λ), `suspects` the
/// failure detector value seen, and sends go to `out`. The step at which
/// the process decides returns `Some(value)`; cores decide at most once
/// and stay quiescent (or keep relaying their decision) afterwards.
pub trait ConsensusCore {
    /// Message alphabet.
    type Msg: Clone;
    /// The proposable/decidable value type.
    type Val: Clone + Eq + Ord;

    /// Creates the process `me` of `n` with its proposal.
    fn new(me: ProcessId, n: usize, proposal: Self::Val) -> Self;

    /// Executes one step. Returns the decision value on the deciding
    /// step, `None` otherwise (including after having decided).
    fn step(
        &mut self,
        input: Option<(ProcessId, &Self::Msg)>,
        suspects: ProcessSet,
        out: &mut Outbox<Self::Msg>,
    ) -> Option<Self::Val>;

    /// The decision, if this process has decided.
    fn decision(&self) -> Option<&Self::Val>;

    /// Re-emits the in-flight messages this process is still waiting on
    /// replies for — what a retransmission plane sends when the instance
    /// stalls on message loss. Derived from current state rather than
    /// replayed from a send log: a core playing several roles at once
    /// (participant *and* coordinator of unresolved rounds) must revive
    /// every stalled conversation, not just the most recent one.
    /// Receipt must be idempotent. The default is quiescence (no
    /// retransmission support).
    fn retransmit(&self, _out: &mut Outbox<Self::Msg>) {}
}

/// Adapter embedding a [`ConsensusCore`] into the simulator: the decision
/// becomes the run's output event.
#[derive(Debug)]
pub struct ConsensusAutomaton<C: ConsensusCore> {
    core: C,
}

impl<C: ConsensusCore> ConsensusAutomaton<C> {
    /// Wraps a core.
    #[must_use]
    pub fn new(core: C) -> Self {
        Self { core }
    }

    /// Builds one automaton per process from a proposal vector.
    ///
    /// # Panics
    ///
    /// Panics if `proposals` is empty.
    #[must_use]
    pub fn fleet(proposals: &[C::Val]) -> Vec<Self> {
        let n = proposals.len();
        assert!(n > 0, "need at least one process");
        proposals
            .iter()
            .enumerate()
            .map(|(ix, v)| Self::new(C::new(ProcessId::new(ix), n, v.clone())))
            .collect()
    }

    /// Read access to the wrapped core.
    #[must_use]
    pub fn core(&self) -> &C {
        &self.core
    }
}

impl<C: ConsensusCore> Automaton for ConsensusAutomaton<C> {
    type Msg = C::Msg;
    type Output = C::Val;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        let mut out = Outbox::new(ctx.me(), ctx.num_processes());
        let decided = self.core.step(
            input.map(|e| (e.from, &e.payload)),
            ctx.suspects(),
            &mut out,
        );
        for (to, msg) in out.drain() {
            ctx.send(to, msg);
        }
        if let Some(v) = decided {
            ctx.output(v);
        }
    }

    fn decision(&self) -> Option<Self::Output> {
        self.core.decision().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_broadcast_reaches_everyone_including_self() {
        let mut out: Outbox<u8> = Outbox::new(ProcessId::new(1), 3);
        out.broadcast(9);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 3);
        assert!(msgs.iter().any(|(to, _)| *to == ProcessId::new(1)));
    }
}
