//! The Chandra–Toueg `S`-based consensus algorithm.
//!
//! The paper's sufficiency argument for Proposition 4.3 cites this
//! algorithm: it solves **uniform** consensus with any Strong failure
//! detector *even if the number of faulty processes is unbounded*, and —
//! run with a realistic detector — it is *total* (footnote 4: "the
//! S-based consensus algorithm of [1] would be total with a realistic
//! failure detector").
//!
//! Structure (Chandra & Toueg, JACM 1996, Fig. 5):
//!
//! 1. **Phase 1** — `n − 1` asynchronous rounds. In round `r`, process
//!    `p` sends the proposals it learned in round `r − 1` (its Δ) to all,
//!    then waits for a round-`r` message from every process it does not
//!    suspect.
//! 2. **Phase 2** — `p` sends its full proposal vector `V_p`; waits as
//!    above; intersects all received vectors.
//! 3. **Phase 3** — `p` decides the first non-⊥ entry of the
//!    intersection.
//!
//! Weak accuracy provides a process `c` never suspected: `c`'s proposal
//! survives in every vector, so intersections are non-empty and equal.

use super::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};

/// Messages of the `S`-based algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrongMsg<V> {
    /// Phase-1 round message carrying newly learned `(proposer, value)`
    /// pairs.
    Round {
        /// Round number `1..=n-1`.
        r: u32,
        /// Entries learned by the sender in the previous round.
        delta: Vec<(u16, V)>,
    },
    /// Phase-2 full-vector exchange.
    Vector {
        /// The sender's proposal vector (entry `i` = `pᵢ`'s proposal, if
        /// known).
        v: Vec<Option<V>>,
    },
    /// Decision announcement (adopted and relayed once).
    Decided(V),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Rounds,
    Vectors,
    Done,
}

/// A round-phase message buffered for later: `(round, sender, Δ)`.
type BufferedRound<V> = (u32, ProcessId, Vec<(u16, V)>);

/// Chandra–Toueg `S`-based consensus state machine.
#[derive(Clone, Debug)]
pub struct StrongConsensus<V> {
    n: usize,
    phase: Phase,
    round: u32,
    last_round: u32,
    v: Vec<Option<V>>,
    /// Entries learned during the current round (next round's Δ).
    fresh: Vec<(u16, V)>,
    /// Δ to send at the start of the current round.
    delta_out: Vec<(u16, V)>,
    sent_this_round: bool,
    received: ProcessSet,
    buffered_rounds: Vec<BufferedRound<V>>,
    /// Phase-2 bookkeeping.
    vectors_received: ProcessSet,
    intersection: Vec<Option<V>>,
    buffered_vectors: Vec<(ProcessId, Vec<Option<V>>)>,
    decision: Option<V>,
    announced: bool,
}

impl<V: Clone + Eq + Ord> StrongConsensus<V> {
    fn learn(&mut self, proposer: u16, value: V) {
        let ix = proposer as usize;
        if self.v[ix].is_none() {
            self.v[ix] = Some(value.clone());
            self.fresh.push((proposer, value));
        }
    }

    fn wait_satisfied(&self, received: ProcessSet, suspects: ProcessSet) -> bool {
        (0..self.n).all(|ix| {
            let q = ProcessId::new(ix);
            received.contains(q) || suspects.contains(q)
        })
    }

    fn begin_round(&mut self) {
        self.sent_this_round = false;
        self.received = ProcessSet::empty();
        self.delta_out = std::mem::take(&mut self.fresh);
        let round = self.round;
        let pending = std::mem::take(&mut self.buffered_rounds);
        for (r, from, delta) in pending {
            if r == round {
                self.received.insert(from);
                for (p, val) in delta {
                    self.learn(p, val);
                }
            } else if r > round {
                self.buffered_rounds.push((r, from, delta));
            }
        }
    }

    fn begin_vectors(&mut self, out: &mut Outbox<StrongMsg<V>>) {
        self.phase = Phase::Vectors;
        self.intersection = self.v.clone();
        out.broadcast(StrongMsg::Vector { v: self.v.clone() });
        let pending = std::mem::take(&mut self.buffered_vectors);
        for (from, vector) in pending {
            self.absorb_vector(from, &vector);
        }
    }

    fn absorb_vector(&mut self, from: ProcessId, vector: &[Option<V>]) {
        if self.vectors_received.insert(from) {
            for (ix, entry) in vector.iter().enumerate() {
                if entry.is_none() {
                    self.intersection[ix] = None;
                }
            }
        }
    }

    fn decide(&mut self, out: &mut Outbox<StrongMsg<V>>) -> Option<V> {
        let v = self
            .intersection
            .iter()
            .flatten()
            .next()
            .expect("weak accuracy keeps at least one entry in the intersection")
            .clone();
        self.phase = Phase::Done;
        self.decision = Some(v.clone());
        self.announced = true;
        out.broadcast(StrongMsg::Decided(v.clone()));
        Some(v)
    }
}

impl<V: Clone + Eq + Ord> ConsensusCore for StrongConsensus<V> {
    type Msg = StrongMsg<V>;
    type Val = V;

    fn new(me: ProcessId, n: usize, proposal: V) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut v: Vec<Option<V>> = vec![None; n];
        v[me.index()] = Some(proposal.clone());
        Self {
            n,
            phase: Phase::Rounds,
            round: 1,
            last_round: (n as u32).saturating_sub(1).max(1),
            v,
            fresh: Vec::new(),
            delta_out: vec![(me.index() as u16, proposal)],
            sent_this_round: false,
            received: ProcessSet::empty(),
            buffered_rounds: Vec::new(),
            vectors_received: ProcessSet::empty(),
            intersection: Vec::new(),
            buffered_vectors: Vec::new(),
            decision: None,
            announced: false,
        }
    }

    fn step(
        &mut self,
        input: Option<(ProcessId, &StrongMsg<V>)>,
        suspects: ProcessSet,
        out: &mut Outbox<StrongMsg<V>>,
    ) -> Option<V> {
        match input {
            Some((_, StrongMsg::Decided(v))) => {
                if self.decision.is_none() {
                    self.phase = Phase::Done;
                    self.decision = Some(v.clone());
                    if !self.announced {
                        self.announced = true;
                        out.broadcast(StrongMsg::Decided(v.clone()));
                    }
                    return Some(v.clone());
                }
                return None;
            }
            Some((from, StrongMsg::Round { r, delta })) => match self.phase {
                Phase::Rounds => {
                    if *r == self.round {
                        self.received.insert(from);
                        for (p, val) in delta.clone() {
                            self.learn(p, val);
                        }
                    } else if *r > self.round {
                        self.buffered_rounds.push((*r, from, delta.clone()));
                    }
                }
                Phase::Vectors | Phase::Done => {}
            },
            Some((from, StrongMsg::Vector { v })) => match self.phase {
                Phase::Vectors => self.absorb_vector(from, v),
                Phase::Rounds => self.buffered_vectors.push((from, v.clone())),
                Phase::Done => {}
            },
            None => {}
        }
        match self.phase {
            Phase::Rounds => {
                if !self.sent_this_round {
                    self.sent_this_round = true;
                    out.broadcast(StrongMsg::Round {
                        r: self.round,
                        delta: self.delta_out.clone(),
                    });
                }
                if self.wait_satisfied(self.received, suspects) {
                    if self.round >= self.last_round {
                        self.begin_vectors(out);
                    } else {
                        self.round += 1;
                        self.begin_round();
                    }
                }
                None
            }
            Phase::Vectors => {
                if self.wait_satisfied(self.vectors_received, suspects) {
                    return self.decide(out);
                }
                None
            }
            Phase::Done => None,
        }
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Drives two in-memory cores to completion by hand-delivering
    /// messages synchronously (no simulator).
    #[test]
    fn two_processes_agree_without_failures() {
        let mut a: StrongConsensus<u64> = StrongConsensus::new(p(0), 2, 10);
        let mut b: StrongConsensus<u64> = StrongConsensus::new(p(1), 2, 20);
        let mut queues: Vec<Vec<(ProcessId, StrongMsg<u64>)>> = vec![Vec::new(), Vec::new()];
        let mut decisions: Vec<Option<u64>> = vec![None, None];
        for _ in 0..200 {
            for ix in 0..2 {
                let input = queues[ix].pop();
                let core: &mut StrongConsensus<u64> = if ix == 0 { &mut a } else { &mut b };
                let mut out = Outbox::new(p(ix), 2);
                let d = core.step(
                    input.as_ref().map(|(f, m)| (*f, m)),
                    ProcessSet::empty(),
                    &mut out,
                );
                if let Some(v) = d {
                    decisions[ix].get_or_insert(v);
                }
                for (to, msg) in out.drain() {
                    queues[to.index()].insert(0, (p(ix), msg));
                }
            }
            if decisions.iter().all(Option::is_some) {
                break;
            }
        }
        assert_eq!(decisions[0], decisions[1]);
        assert!(decisions[0] == Some(10) || decisions[0] == Some(20));
    }

    #[test]
    fn learning_tracks_fresh_entries() {
        let mut c: StrongConsensus<u64> = StrongConsensus::new(p(0), 3, 1);
        c.learn(1, 2);
        c.learn(1, 99); // duplicate proposer: ignored
        assert_eq!(c.v[1], Some(2));
        assert_eq!(c.fresh, vec![(1, 2)]);
    }

    #[test]
    fn intersection_drops_entries_missing_from_any_vector() {
        let mut c: StrongConsensus<u64> = StrongConsensus::new(p(0), 3, 1);
        c.learn(1, 2);
        c.learn(2, 3);
        let mut out = Outbox::new(p(0), 3);
        c.begin_vectors(&mut out);
        c.absorb_vector(p(1), &[Some(1), Some(2), None]);
        assert_eq!(c.intersection, vec![Some(1), Some(2), None]);
    }

    #[test]
    fn decided_relay_is_adopted() {
        let mut c: StrongConsensus<u64> = StrongConsensus::new(p(2), 3, 30);
        let mut out = Outbox::new(p(2), 3);
        let d = c.step(
            Some((p(0), &StrongMsg::Decided(10))),
            ProcessSet::empty(),
            &mut out,
        );
        assert_eq!(d, Some(10));
        assert_eq!(c.decision(), Some(&10));
    }
}
