//! The Marabout-based consensus algorithm (§6.1).
//!
//! §6.1 notes that the paper's lower bound evaporates outside the
//! realistic space: with the clairvoyant Marabout `M` — whose output is
//! the constant set of *faulty* processes — there is an "obvious"
//! algorithm solving consensus for any number of failures:
//!
//! > Every process `pᵢ` consults its failure detector and selects the
//! > process `pⱼ` such that (a) `pⱼ` is not suspected and (b) there is no
//! > non-suspected `pₖ` with `k < j`. If `i = j`, then `pⱼ` sends its
//! > value to all and decides it. Otherwise, `pᵢ` waits for `pⱼ`'s value
//! > and decides that value.
//!
//! The leader is the lowest-index **correct** process (that is what "not
//! suspected by `M`" means), so it never crashes and everyone eventually
//! receives its value. Run with any *realistic* detector instead, the
//! same algorithm loses liveness or safety — which experiment E6 shows.

use super::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};

/// Messages of the Marabout algorithm: the leader's value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaraboutMsg<V> {
    /// The leader's proposal.
    pub value: V,
}

/// Marabout-based consensus state machine (§6.1).
#[derive(Clone, Debug)]
pub struct MaraboutConsensus<V> {
    me: ProcessId,
    n: usize,
    proposal: V,
    leader: Option<ProcessId>,
    sent: bool,
    decision: Option<V>,
}

impl<V: Clone + Eq + Ord> ConsensusCore for MaraboutConsensus<V> {
    type Msg = MaraboutMsg<V>;
    type Val = V;

    fn new(me: ProcessId, n: usize, proposal: V) -> Self {
        assert!(n >= 1, "need at least one process");
        Self {
            me,
            n,
            proposal,
            leader: None,
            sent: false,
            decision: None,
        }
    }

    fn step(
        &mut self,
        input: Option<(ProcessId, &MaraboutMsg<V>)>,
        suspects: ProcessSet,
        out: &mut Outbox<MaraboutMsg<V>>,
    ) -> Option<V> {
        if self.decision.is_some() {
            return None;
        }
        // Select the leader once: lowest-index non-suspected process.
        // (With M the detector output is constant, so the choice is
        // stable; with other detectors this is a best-effort read — E6
        // demonstrates the consequences.)
        let leader =
            *self
                .leader
                .get_or_insert_with(|| match suspects.complement_within(self.n).min() {
                    Some(l) => l,
                    // Everyone suspected (all faulty): degenerate — lead
                    // yourself; nobody correct exists to disagree with.
                    None => self.me,
                });
        if leader == self.me {
            if !self.sent {
                self.sent = true;
                out.broadcast(MaraboutMsg {
                    value: self.proposal.clone(),
                });
            }
            self.decision = Some(self.proposal.clone());
            return self.decision.clone();
        }
        if let Some((from, msg)) = input {
            if from == leader {
                self.decision = Some(msg.value.clone());
                return self.decision.clone();
            }
        }
        None
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn leader_decides_its_own_value_and_broadcasts() {
        // Suspect set {p0}: leader is p1.
        let mut c: MaraboutConsensus<u64> = MaraboutConsensus::new(p(1), 3, 20);
        let mut out = Outbox::new(p(1), 3);
        let d = c.step(None, ProcessSet::singleton(p(0)), &mut out);
        assert_eq!(d, Some(20));
        assert_eq!(out.drain().len(), 3);
    }

    #[test]
    fn follower_waits_for_leader_value() {
        let mut c: MaraboutConsensus<u64> = MaraboutConsensus::new(p(2), 3, 30);
        let mut out = Outbox::new(p(2), 3);
        assert_eq!(c.step(None, ProcessSet::singleton(p(0)), &mut out), None);
        // Value from a non-leader is ignored.
        let mut out2 = Outbox::new(p(2), 3);
        assert_eq!(
            c.step(
                Some((p(0), &MaraboutMsg { value: 10 })),
                ProcessSet::singleton(p(0)),
                &mut out2
            ),
            None
        );
        // Value from the leader (p1) decides.
        let mut out3 = Outbox::new(p(2), 3);
        assert_eq!(
            c.step(
                Some((p(1), &MaraboutMsg { value: 20 })),
                ProcessSet::singleton(p(0)),
                &mut out3
            ),
            Some(20)
        );
    }

    #[test]
    fn leader_choice_is_sticky() {
        let mut c: MaraboutConsensus<u64> = MaraboutConsensus::new(p(2), 3, 30);
        let mut out = Outbox::new(p(2), 3);
        c.step(None, ProcessSet::empty(), &mut out);
        assert_eq!(c.leader, Some(p(0)));
        // Even if the detector output changes later, the leader stays.
        let mut out2 = Outbox::new(p(2), 3);
        c.step(None, ProcessSet::singleton(p(0)), &mut out2);
        assert_eq!(c.leader, Some(p(0)));
    }
}
