//! Terminating reliable broadcast over a Perfect failure detector (§5).
//!
//! The sufficiency half of Proposition 5.1, exactly as the paper sketches
//! it: *"each process waits until it receives the value from `p_k` or it
//! suspects `p_k`. In the first case it proposes this value to a
//! consensus, else it proposes `nil`. The value delivered is the
//! consensus value."*
//!
//! The inner consensus is the flood-set `P`-algorithm, so the whole stack
//! works for **any** number of failures. `nil` is encoded as
//! `Option::None`.

use crate::consensus::{ConsensusCore, FloodSetConsensus, FloodSetMsg, Outbox};
use rfd_core::{ProcessId, ProcessSet};
use rfd_sim::{Automaton, Envelope, StepContext};

/// Messages of the TRB protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrbMsg<V> {
    /// The initiator's payload broadcast.
    Payload(V),
    /// An embedded message of the inner consensus on `Option<V>`.
    Consensus(FloodSetMsg<Option<V>>),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TrbPhase {
    /// Waiting for the initiator's payload or its suspicion.
    Wait,
    /// Running the inner consensus.
    Deciding,
    /// Delivered.
    Done,
}

/// One process of a TRB instance.
///
/// `Output` is the delivered value: `Some(v)` for the initiator's message
/// or `None` for the paper's `nil`.
#[derive(Clone, Debug)]
pub struct TrbProcess<V> {
    me: ProcessId,
    n: usize,
    initiator: ProcessId,
    /// `Some(m)` iff this process is the initiator broadcasting `m`.
    own_payload: Option<V>,
    sent_payload: bool,
    phase: TrbPhase,
    inner: Option<FloodSetConsensus<Option<V>>>,
    /// Consensus messages arriving before our own consensus started.
    buffered: Vec<(ProcessId, FloodSetMsg<Option<V>>)>,
    delivered: Option<Option<V>>,
}

impl<V: Clone + Eq + Ord> TrbProcess<V> {
    /// Creates the process `me` for the instance initiated by
    /// `initiator`; `payload` must be `Some` exactly on the initiator.
    ///
    /// # Panics
    ///
    /// Panics if `payload.is_some()` disagrees with `me == initiator`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, initiator: ProcessId, payload: Option<V>) -> Self {
        assert_eq!(
            payload.is_some(),
            me == initiator,
            "exactly the initiator carries the payload"
        );
        Self {
            me,
            n,
            initiator,
            own_payload: payload,
            sent_payload: false,
            phase: TrbPhase::Wait,
            inner: None,
            buffered: Vec::new(),
            delivered: None,
        }
    }

    /// Builds the fleet for one instance.
    #[must_use]
    pub fn fleet(n: usize, initiator: ProcessId, message: V) -> Vec<Self> {
        (0..n)
            .map(|ix| {
                let me = ProcessId::new(ix);
                let payload = (me == initiator).then(|| message.clone());
                Self::new(me, n, initiator, payload)
            })
            .collect()
    }

    /// The delivered value, if delivery happened.
    #[must_use]
    pub fn delivered(&self) -> Option<&Option<V>> {
        self.delivered.as_ref()
    }

    fn start_consensus(&mut self, proposal: Option<V>) {
        self.inner = Some(FloodSetConsensus::new(self.me, self.n, proposal));
        self.phase = TrbPhase::Deciding;
        // Consensus traffic that raced ahead of us stays in `buffered`
        // and is drained through the normal driving path in `step`, so
        // the inner algorithm's own sends are not lost.
    }

    /// Core step shared by the simulator adapter and multi-instance
    /// wrappers. Returns `Some(delivered)` on the delivery step.
    pub fn step(
        &mut self,
        input: Option<(ProcessId, &TrbMsg<V>)>,
        suspects: ProcessSet,
        out: &mut Outbox<TrbMsg<V>>,
    ) -> Option<Option<V>> {
        if self.phase == TrbPhase::Done {
            return None;
        }
        // Initiator: broadcast the payload first.
        if let Some(m) = &self.own_payload {
            if !self.sent_payload {
                self.sent_payload = true;
                let m = m.clone();
                out.broadcast(TrbMsg::Payload(m));
            }
        }
        // Route the input.
        let mut inner_input: Option<(ProcessId, FloodSetMsg<Option<V>>)> = None;
        match input {
            Some((from, TrbMsg::Payload(v)))
                if from == self.initiator && self.phase == TrbPhase::Wait =>
            {
                self.start_consensus(Some(v.clone()));
            }
            Some((from, TrbMsg::Consensus(msg))) => match self.phase {
                TrbPhase::Wait => self.buffered.push((from, msg.clone())),
                TrbPhase::Deciding => inner_input = Some((from, msg.clone())),
                TrbPhase::Done => {}
            },
            _ => {}
        }
        // Wait phase: the suspicion path to a nil proposal.
        if self.phase == TrbPhase::Wait && suspects.contains(self.initiator) {
            self.start_consensus(None);
        }
        // Deciding phase: drain replay backlog, then drive the inner
        // consensus with this step's input.
        if self.phase == TrbPhase::Deciding {
            let mut feeds: Vec<Option<(ProcessId, FloodSetMsg<Option<V>>)>> =
                std::mem::take(&mut self.buffered)
                    .into_iter()
                    .map(Some)
                    .collect();
            feeds.push(inner_input);
            for feed in feeds {
                let inner = self.inner.as_mut().expect("set when entering Deciding");
                let mut inner_out = Outbox::new(self.me, self.n);
                let decided = inner.step(
                    feed.as_ref().map(|(f, m)| (*f, m)),
                    suspects,
                    &mut inner_out,
                );
                for (to, msg) in inner_out.drain() {
                    out.send(to, TrbMsg::Consensus(msg));
                }
                if let Some(v) = decided {
                    self.phase = TrbPhase::Done;
                    self.delivered = Some(v.clone());
                    return Some(v);
                }
            }
        }
        None
    }
}

/// Simulator adapter: delivery becomes the run's output event.
impl<V: Clone + Eq + Ord> Automaton for TrbProcess<V> {
    type Msg = TrbMsg<V>;
    type Output = Option<V>;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        let mut out = Outbox::new(ctx.me(), ctx.num_processes());
        let delivered = self.step(
            input.map(|e| (e.from, &e.payload)),
            ctx.suspects(),
            &mut out,
        );
        for (to, msg) in out.drain() {
            ctx.send(to, msg);
        }
        if let Some(v) = delivered {
            ctx.output(v);
        }
    }

    fn decision(&self) -> Option<Self::Output> {
        self.delivered.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fleet_has_payload_only_at_initiator() {
        let fleet = TrbProcess::fleet(3, p(1), 42u64);
        assert!(fleet[0].own_payload.is_none());
        assert_eq!(fleet[1].own_payload, Some(42));
        assert!(fleet[2].own_payload.is_none());
    }

    #[test]
    fn suspicion_of_initiator_leads_to_nil_proposal() {
        let mut t: TrbProcess<u64> = TrbProcess::new(p(1), 2, p(0), None);
        let mut out = Outbox::new(p(1), 2);
        t.step(None, ProcessSet::singleton(p(0)), &mut out);
        assert_eq!(t.phase, TrbPhase::Deciding);
        let inner = t.inner.as_ref().unwrap();
        // The nil proposal is in the inner consensus value set.
        assert_eq!(inner.decision(), None);
    }

    #[test]
    fn payload_reception_starts_consensus_with_the_message() {
        let mut t: TrbProcess<u64> = TrbProcess::new(p(1), 2, p(0), None);
        let mut out = Outbox::new(p(1), 2);
        t.step(
            Some((p(0), &TrbMsg::Payload(9))),
            ProcessSet::empty(),
            &mut out,
        );
        assert_eq!(t.phase, TrbPhase::Deciding);
    }

    #[test]
    fn consensus_traffic_before_start_is_buffered() {
        let mut t: TrbProcess<u64> = TrbProcess::new(p(1), 2, p(0), None);
        let msg = TrbMsg::Consensus(FloodSetMsg::Round {
            r: 1,
            values: vec![Some(9)],
        });
        let mut out = Outbox::new(p(1), 2);
        t.step(Some((p(0), &msg)), ProcessSet::empty(), &mut out);
        assert_eq!(t.buffered.len(), 1);
    }

    #[test]
    #[should_panic(expected = "initiator carries the payload")]
    fn payload_on_non_initiator_panics() {
        let _: TrbProcess<u64> = TrbProcess::new(p(1), 2, p(0), Some(3));
    }
}
