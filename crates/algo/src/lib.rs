//! # rfd-algo — agreement algorithms and reductions of the DSN 2002 paper
//!
//! Executable versions of every construction in *A Realistic Look At
//! Failure Detectors*:
//!
//! * **Consensus** ([`consensus`]): the Chandra–Toueg `S`-based algorithm
//!   (any `f`, total), the `◇S` rotating-coordinator baseline (majority,
//!   non-total), flood-set over `P`, the `P<` correct-restricted
//!   algorithm of §6.2, and the Marabout algorithm of §6.1.
//! * **Terminating reliable broadcast** ([`trb`]): the §5 stack —
//!   wait-or-suspect, then consensus on the value-or-`nil`.
//! * **Broadcast** ([`broadcast`]): reliable broadcast and the
//!   consensus-sequence atomic broadcast.
//! * **Reductions** ([`reduction`]): `T_{D⇒P}` (§4.3) and the TRB → `P`
//!   emulation (§5), both exposing their `output(P)` for class checking.
//! * **Verdicts** ([`check`]): uniform/correct-restricted consensus and
//!   TRB property checkers with violation witnesses.
//! * **Step drivers** ([`driver`]): the [`SlotDriver`] adapter that runs
//!   a consensus core per replicated-log slot outside the simulator —
//!   the engine room of `rfd_net::service`'s live decision service.
//!
//! ## Example: uniform consensus over a Perfect oracle
//!
//! ```
//! use rfd_algo::check::check_consensus;
//! use rfd_algo::consensus::{ConsensusAutomaton, FloodSetConsensus};
//! use rfd_core::oracles::{Oracle, PerfectOracle};
//! use rfd_core::{FailurePattern, ProcessId, Time};
//! use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};
//!
//! let n = 4;
//! let pattern = FailurePattern::new(n).with_crash(ProcessId::new(2), Time::new(9));
//! let rounds = 300;
//! let oracle = PerfectOracle::new(6, 2);
//! let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 1);
//! let proposals: Vec<u64> = vec![10, 20, 30, 40];
//! let automata = ConsensusAutomaton::<FloodSetConsensus<u64>>::fleet(&proposals);
//! let config = SimConfig::new(1, rounds).with_stop(StopCondition::EachCorrectOutput(1));
//! let result = run(&pattern, &history, automata, &config);
//! let verdict = check_consensus(&pattern, &result.trace, &proposals);
//! assert!(verdict.is_uniform_consensus());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broadcast;
pub mod check;
pub mod consensus;
pub mod driver;
pub mod reduction;
pub mod trb;

pub use check::{check_consensus, check_trb, ConsensusVerdict, Disagreement, TrbVerdict};
pub use consensus::{ConsensusAutomaton, ConsensusCore, Outbox};
pub use driver::{SlotDecision, SlotDriver, SlotSend, TickEffects};
