//! Step-driver adapters: running [`ConsensusCore`]s *outside* the
//! simulator.
//!
//! The cores in [`crate::consensus`] are engine-independent state
//! machines — the simulator drives them through
//! [`crate::ConsensusAutomaton`], and a long-running service drives them
//! through this module. [`SlotDriver`] manages one core per **log slot**
//! (a replicated log runs one consensus instance per index, exactly the
//! paper's §1.1 consensus-sequence construction of atomic broadcast) and
//! takes care of the plumbing a live runtime needs:
//!
//! * slot-scoped message routing, with buffering for instances the local
//!   process has not opened yet (a faster peer may already be deciding
//!   index `k+1` while this process still fills index `k`);
//! * λ-steps ([`SlotDriver::tick`]) so suspicion-driven progress — e.g.
//!   the rotating coordinator's nack-and-advance escape — happens even
//!   when no message arrives;
//! * external resolution ([`SlotDriver::resolve`]) for decisions learned
//!   out of band (a decision relay, post-heal state transfer), dropping
//!   the instance's core.
//!
//! The driver never talks to a transport: every call returns the
//! `(destination, slot, message)` sends it produced, and the caller owns
//! encoding and delivery — the same inversion as [`super::Outbox`], one
//! level up.

use crate::consensus::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};

/// One outgoing message of a [`SlotDriver`]: destination, slot, payload.
pub type SlotSend<M> = (ProcessId, u64, M);

/// A slot-tagged decision, as returned by [`SlotDriver::tick`].
pub type SlotDecision<V> = (u64, V);

/// The effects of one [`SlotDriver::tick`]: the produced sends and the
/// slots that decided on it.
pub type TickEffects<M, V> = (Vec<SlotSend<M>>, Vec<SlotDecision<V>>);

/// A multi-instance, step-driven consensus driver: one
/// [`ConsensusCore`] per replicated-log slot.
///
/// # Examples
///
/// A single-process "cluster" decides its own proposal:
///
/// ```
/// use rfd_algo::consensus::RotatingConsensus;
/// use rfd_algo::driver::SlotDriver;
/// use rfd_core::{ProcessId, ProcessSet};
///
/// let me = ProcessId::new(0);
/// let mut driver: SlotDriver<RotatingConsensus<u64>> = SlotDriver::new(me, 1);
/// let (sends, decided) = driver.open(0, 7, ProcessSet::empty());
/// assert!(decided.is_none());
/// // Deliver the self-addressed traffic, in send order, until the slot
/// // decides. (FIFO matters: draining newest-first would starve the
/// // round-0 ack behind the round-chasing estimates and spin through
/// // the core's round cap before deciding.)
/// let mut queue: std::collections::VecDeque<_> = sends.into();
/// while let Some((to, slot, msg)) = queue.pop_front() {
///     assert_eq!(to, me);
///     let (more, _) = driver.on_message(slot, me, &msg, ProcessSet::empty());
///     queue.extend(more);
/// }
/// assert_eq!(driver.decision(0), Some(&7));
/// ```
pub struct SlotDriver<C: ConsensusCore> {
    me: ProcessId,
    n: usize,
    /// Grow-only slot arena, indexed by log position. Slots of a
    /// replicated log are dense by construction (every index is
    /// eventually opened or resolved), so a flat `Vec` replaces the
    /// former three `BTreeMap`s: O(1) slot access with no per-slot tree
    /// nodes, and the one allocation amortizes over the log's lifetime.
    slots: Vec<SlotState<C>>,
    /// Indices of currently open slots, kept sorted ascending so
    /// [`SlotDriver::tick`] visits them in the same order the old
    /// `BTreeMap` iteration did.
    open_slots: Vec<u64>,
    /// First slot the arena covers: `slots[0]` is slot `base`. Raised
    /// by [`SlotDriver::advance_base`] when a snapshot install retires
    /// a whole prefix at once — keeping the arena sized by the *live*
    /// window rather than by absolute log position, so installing a
    /// snapshot at slot 10⁶ does not allocate 10⁶ arena entries.
    base: u64,
}

/// One arena entry: the lifecycle of a log slot.
enum SlotState<C: ConsensusCore> {
    /// Not opened locally; holds early traffic from faster peers.
    Pending(Vec<(ProcessId, C::Msg)>),
    /// A live consensus core.
    Open(C),
    /// Decided (core dropped on decision).
    Decided(C::Val),
}

impl<C: ConsensusCore> std::fmt::Debug for SlotDriver<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotDriver")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("slots", &self.slots.len())
            .field("open", &self.open_slots)
            .finish()
    }
}

impl<C: ConsensusCore> SlotDriver<C> {
    /// A driver for process `me` of `n`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self {
            me,
            n,
            slots: Vec::new(),
            open_slots: Vec::new(),
            base: 0,
        }
    }

    /// The arena index of `slot`, or `None` if it fell below the base
    /// (retired wholesale by [`SlotDriver::advance_base`]).
    fn index_of(&self, slot: u64) -> Option<usize> {
        let off = slot.checked_sub(self.base)?;
        usize::try_from(off).ok()
    }

    /// Grows the arena to cover `slot` and returns its index; `None`
    /// for slots below the base.
    fn ensure(&mut self, slot: u64) -> Option<usize> {
        let ix = self.index_of(slot)?;
        if ix >= self.slots.len() {
            self.slots
                .resize_with(ix + 1, || SlotState::Pending(Vec::new()));
        }
        Some(ix)
    }

    /// Retires every slot below `floor` in O(dropped): their cores and
    /// buffered traffic are gone, [`SlotDriver::decision`] for them
    /// returns `None`, and incoming traffic for them is dropped. Called
    /// on snapshot install, where the decisions below the snapshot
    /// boundary are summarised externally. No-op if `floor` is at or
    /// below the current base.
    pub fn advance_base(&mut self, floor: u64) {
        let Some(drop) = floor.checked_sub(self.base) else {
            return;
        };
        if drop == 0 {
            return;
        }
        let drop = usize::try_from(drop)
            .unwrap_or(usize::MAX)
            .min(self.slots.len());
        self.slots.drain(..drop);
        self.open_slots.retain(|&s| s >= floor);
        self.base = floor;
    }

    /// The first slot the arena still covers; slots below it were
    /// retired by [`SlotDriver::advance_base`].
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Whether `slot` currently has a live (open, undecided) core.
    #[must_use]
    pub fn is_open(&self, slot: u64) -> bool {
        self.index_of(slot)
            .and_then(|ix| self.slots.get(ix))
            .is_some_and(|s| matches!(s, SlotState::Open(_)))
    }

    /// The currently open (undecided) slots, ascending.
    #[must_use]
    pub fn open_slots(&self) -> &[u64] {
        &self.open_slots
    }

    /// The peer-addressed retransmissions of `slot`'s stalled
    /// conversations, derived from the core's current state
    /// ([`ConsensusCore::retransmit`]) — what a retransmission plane
    /// sends when the slot's timer fires. Self-addressed re-emissions
    /// are dropped: local delivery is synchronous and lossless, so the
    /// local copy was already consumed. Empty for slots that are not
    /// open.
    #[must_use]
    pub fn retransmit(&self, slot: u64) -> Vec<SlotSend<C::Msg>> {
        let Some(SlotState::Open(core)) = self.index_of(slot).and_then(|ix| self.slots.get(ix))
        else {
            return Vec::new();
        };
        let mut out = Outbox::new(self.me, self.n);
        core.retransmit(&mut out);
        let me = self.me;
        out.drain()
            .into_iter()
            .filter(|(to, _)| *to != me)
            .map(|(to, msg)| (to, slot, msg))
            .collect()
    }

    /// The decision of `slot`, if it has one (locally decided or
    /// externally resolved) and the slot has not been retired below the
    /// base.
    #[must_use]
    pub fn decision(&self, slot: u64) -> Option<&C::Val> {
        match self.index_of(slot).and_then(|ix| self.slots.get(ix)) {
            Some(SlotState::Decided(v)) => Some(v),
            _ => None,
        }
    }

    /// Opens the consensus instance of `slot` with this process's
    /// `proposal`, replaying any traffic buffered for it. No-op (empty
    /// sends) if the slot is already open or decided.
    ///
    /// Returns the produced sends and, if the replayed backlog already
    /// forced a decision, the decided value.
    pub fn open(
        &mut self,
        slot: u64,
        proposal: C::Val,
        suspects: ProcessSet,
    ) -> (Vec<SlotSend<C::Msg>>, Option<C::Val>) {
        let Some(ix) = self.ensure(slot) else {
            return (Vec::new(), None);
        };
        let SlotState::Pending(backlog) = &mut self.slots[ix] else {
            return (Vec::new(), None);
        };
        let backlog = std::mem::take(backlog);
        self.slots[ix] = SlotState::Open(C::new(self.me, self.n, proposal));
        match self.open_slots.binary_search(&slot) {
            Ok(_) => unreachable!("slot was pending, not open"),
            Err(pos) => self.open_slots.insert(pos, slot),
        }
        let mut sends = Vec::new();
        let mut decision = self.step_slot(slot, None, suspects, &mut sends);
        for (from, msg) in backlog {
            if decision.is_some() {
                break;
            }
            decision = self.step_slot(slot, Some((from, msg)), suspects, &mut sends);
        }
        (sends, decision)
    }

    /// Routes one incoming slot-scoped message. Traffic for a decided
    /// or base-retired slot is dropped; traffic for a slot not opened
    /// locally is buffered until [`SlotDriver::open`] replays it.
    pub fn on_message(
        &mut self,
        slot: u64,
        from: ProcessId,
        msg: &C::Msg,
        suspects: ProcessSet,
    ) -> (Vec<SlotSend<C::Msg>>, Option<C::Val>) {
        let Some(ix) = self.ensure(slot) else {
            return (Vec::new(), None);
        };
        match &mut self.slots[ix] {
            SlotState::Decided(_) => (Vec::new(), None),
            SlotState::Pending(backlog) => {
                backlog.push((from, msg.clone()));
                (Vec::new(), None)
            }
            SlotState::Open(_) => {
                let mut sends = Vec::new();
                let decision =
                    self.step_slot(slot, Some((from, msg.clone())), suspects, &mut sends);
                (sends, decision)
            }
        }
    }

    /// λ-steps every open slot with the current detector value, so
    /// suspicion-driven progress (round advancement past a suspected
    /// coordinator) happens between messages. Returns the produced sends
    /// and the slots that decided on this tick.
    pub fn tick(&mut self, suspects: ProcessSet) -> TickEffects<C::Msg, C::Val> {
        let mut sends = Vec::new();
        let mut decisions = Vec::new();
        // A deciding step removes its own entry from `open_slots` (and
        // shifts the tail left), so only advance past survivors.
        let mut pos = 0;
        while pos < self.open_slots.len() {
            let slot = self.open_slots[pos];
            if let Some(v) = self.step_slot(slot, None, suspects, &mut sends) {
                decisions.push((slot, v));
            } else {
                pos += 1;
            }
        }
        (sends, decisions)
    }

    /// Records a decision learned out of band (decision relay, state
    /// transfer), dropping the slot's core and any buffered traffic.
    /// No-op if the slot already holds a decision or fell below the
    /// base.
    pub fn resolve(&mut self, slot: u64, value: C::Val) {
        let Some(ix) = self.ensure(slot) else {
            return;
        };
        if matches!(self.slots[ix], SlotState::Decided(_)) {
            return;
        }
        if let Ok(pos) = self.open_slots.binary_search(&slot) {
            self.open_slots.remove(pos);
        }
        self.slots[ix] = SlotState::Decided(value);
    }

    /// Steps one open slot, harvesting sends; on decision, retires the
    /// core in place.
    fn step_slot(
        &mut self,
        slot: u64,
        input: Option<(ProcessId, C::Msg)>,
        suspects: ProcessSet,
        sends: &mut Vec<SlotSend<C::Msg>>,
    ) -> Option<C::Val> {
        let ix = self.index_of(slot)?;
        let Some(SlotState::Open(core)) = self.slots.get_mut(ix) else {
            return None;
        };
        let mut out = Outbox::new(self.me, self.n);
        let decided = core.step(
            input.as_ref().map(|(from, msg)| (*from, msg)),
            suspects,
            &mut out,
        );
        sends.extend(out.drain().into_iter().map(|(to, msg)| (to, slot, msg)));
        if let Some(v) = &decided {
            self.slots[ix] = SlotState::Decided(v.clone());
            if let Ok(pos) = self.open_slots.binary_search(&slot) {
                self.open_slots.remove(pos);
            }
        }
        decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::RotatingConsensus;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type Driver = SlotDriver<RotatingConsensus<u64>>;

    /// Delivers every pending send into the matching driver — in send
    /// order — until the network drains: a lock-step mini-cluster.
    fn run_to_quiescence(
        drivers: &mut [Driver],
        wire: Vec<(
            ProcessId,
            u64,
            ProcessId,
            <RotatingConsensus<u64> as ConsensusCore>::Msg,
        )>,
    ) {
        let mut wire: std::collections::VecDeque<_> = wire.into();
        let mut budget = 10_000;
        while let Some((to, slot, from, msg)) = wire.pop_front() {
            budget -= 1;
            assert!(budget > 0, "mini-cluster failed to quiesce");
            let (sends, _) = drivers[to.index()].on_message(slot, from, &msg, ProcessSet::empty());
            for (dest, s, m) in sends {
                wire.push_back((dest, s, to, m));
            }
        }
    }

    #[test]
    fn three_drivers_decide_a_common_value_per_slot() {
        let n = 3;
        let mut drivers: Vec<Driver> = (0..n).map(|ix| SlotDriver::new(p(ix), n)).collect();
        let mut wire = Vec::new();
        for (ix, driver) in drivers.iter_mut().enumerate() {
            let (sends, _) = driver.open(0, 10 + ix as u64, ProcessSet::empty());
            for (dest, s, m) in sends {
                wire.push((dest, s, p(ix), m));
            }
        }
        run_to_quiescence(&mut drivers, wire);
        let d0 = drivers[0].decision(0).copied().expect("slot 0 decided");
        for driver in &drivers {
            assert_eq!(driver.decision(0), Some(&d0));
            assert!(!driver.is_open(0), "decided slots retire their core");
        }
        assert!((10..13).contains(&d0), "validity: a proposed value");
    }

    #[test]
    fn traffic_ahead_of_the_local_slot_is_buffered_then_replayed() {
        let n = 3;
        let mut a: Driver = SlotDriver::new(p(0), n);
        let mut b: Driver = SlotDriver::new(p(1), n);
        // b opens slot 5 and sends its estimate to the coordinator of
        // round 0 — p2 (5 % 3), not a; craft one addressed to a instead
        // by opening at a different slot: slot 3's round-0 coordinator
        // is p0.
        let (sends, _) = b.open(3, 9, ProcessSet::empty());
        let to_a: Vec<_> = sends.into_iter().filter(|(to, _, _)| *to == p(0)).collect();
        assert!(!to_a.is_empty(), "round-0 estimate goes to coordinator p0");
        for (_, slot, msg) in &to_a {
            let (sends, decided) = a.on_message(*slot, p(1), msg, ProcessSet::empty());
            assert!(
                sends.is_empty() && decided.is_none(),
                "buffered, not stepped"
            );
        }
        // Opening the slot replays the backlog: the coordinator now has
        // b's estimate plus its own.
        let (sends, _) = a.open(3, 8, ProcessSet::empty());
        assert!(!sends.is_empty(), "replay drives the coordinator forward");
    }

    #[test]
    fn resolve_retires_a_spinning_instance() {
        let mut d: Driver = SlotDriver::new(p(1), 4);
        let (_, none) = d.open(0, 5, ProcessSet::empty());
        assert!(none.is_none());
        assert!(d.is_open(0));
        d.resolve(0, 6);
        assert_eq!(d.decision(0), Some(&6));
        assert!(!d.is_open(0));
        // A late message for the resolved slot is dropped quietly.
        let (sends, decided) = d.on_message(
            0,
            p(0),
            &crate::consensus::RotatingMsg::Ack { r: 0 },
            ProcessSet::empty(),
        );
        assert!(sends.is_empty() && decided.is_none());
        // And resolve never overwrites an existing decision.
        d.resolve(0, 99);
        assert_eq!(d.decision(0), Some(&6));
    }

    #[test]
    fn advance_base_retires_a_prefix_without_allocating_for_it() {
        let mut d: Driver = SlotDriver::new(p(1), 4);
        let _ = d.open(0, 5, ProcessSet::empty());
        d.resolve(1, 7);
        assert!(d.is_open(0));
        assert_eq!(d.decision(1), Some(&7));

        // A snapshot install at a huge absolute slot: the arena must
        // not grow to cover the retired prefix.
        d.advance_base(1_000_000_000);
        assert_eq!(d.base(), 1_000_000_000);
        assert!(!d.is_open(0), "open core below the base is dropped");
        assert_eq!(d.decision(1), None, "retired decisions are gone");

        // Traffic for retired slots is dropped quietly...
        let (sends, decided) = d.on_message(
            3,
            p(0),
            &crate::consensus::RotatingMsg::Ack { r: 0 },
            ProcessSet::empty(),
        );
        assert!(sends.is_empty() && decided.is_none());
        d.resolve(5, 9);
        assert_eq!(d.decision(5), None);

        // ...while slots at the new base work in O(live window).
        let (_, none) = d.open(1_000_000_000, 42, ProcessSet::empty());
        assert!(none.is_none());
        assert!(d.is_open(1_000_000_000));
        d.resolve(1_000_000_000, 42);
        assert_eq!(d.decision(1_000_000_000), Some(&42));

        // Lowering the base is a no-op.
        d.advance_base(0);
        assert_eq!(d.base(), 1_000_000_000);
    }

    /// The retransmission contract: an open slot can re-derive its
    /// stalled peer-addressed frames from core state at any time, and
    /// deciding (or resolving) the slot silences it.
    #[test]
    fn open_slots_rederive_their_stalled_sends_until_retired() {
        let mut d: Driver = SlotDriver::new(p(1), 3);
        assert!(d.open_slots().is_empty());
        assert!(d.retransmit(0).is_empty(), "unopened slots are silent");
        let (sends, _) = d.open(0, 5, ProcessSet::empty());
        assert_eq!(d.open_slots(), &[0]);
        // The round-0 estimate went to coordinator p0 — a peer — so a
        // stalled instance re-sends it, as often as asked.
        let peer_sends: Vec<_> = sends.iter().filter(|(to, _, _)| *to != p(1)).collect();
        assert!(!peer_sends.is_empty());
        for _ in 0..2 {
            let retx = d.retransmit(0);
            assert_eq!(retx.len(), peer_sends.len());
            assert!(retx.iter().all(|(to, slot, _)| *to == p(0) && *slot == 0));
        }
        // A quiet step changes nothing.
        let (_, _) = d.tick(ProcessSet::empty());
        assert!(!d.retransmit(0).is_empty());
        // Resolution silences the slot with the core.
        d.resolve(0, 9);
        assert!(d.retransmit(0).is_empty());
        assert!(d.open_slots().is_empty());
    }

    /// The wedge the send-once service actually hit: a coordinator whose
    /// `Propose` broadcast was lost re-broadcasts it from state — its
    /// *later* participant-role emission (the next round's estimate) must
    /// not shadow the unresolved proposal.
    #[test]
    fn a_stalled_coordinator_rebroadcasts_its_unresolved_proposal() {
        let n = 4;
        let mut c: Driver = SlotDriver::new(p(0), n);
        // p0 coordinates round 0: its own estimate plus two peers' reach
        // the majority of three and trigger the proposal.
        let (sends, none) = c.open(0, 7, ProcessSet::empty());
        assert!(none.is_none());
        let mut selfloop: std::collections::VecDeque<_> = sends.into();
        for from in [p(1), p(2)] {
            let est = crate::consensus::RotatingMsg::Estimate { r: 0, ts: 0, v: 7 };
            let (more, _) = c.on_message(0, from, &est, ProcessSet::empty());
            selfloop.extend(more);
        }
        // Deliver the self-addressed traffic (the service loops it back
        // synchronously): p0 acks its own proposal and moves to round 1.
        while let Some((to, slot, msg)) = selfloop.pop_front() {
            if to != p(0) {
                continue;
            }
            let (more, _) = c.on_message(slot, to, &msg, ProcessSet::empty());
            selfloop.extend(more);
        }
        // The self-delivered proposal moved p0 on to round 1 as a
        // participant. Pretend every peer copy of `Propose(0)` was lost:
        // the retransmission must still carry it (alongside the round-1
        // estimate), or the group wedges forever.
        let retx = c.retransmit(0);
        let proposes: Vec<_> = retx
            .iter()
            .filter(|(_, _, m)| matches!(m, crate::consensus::RotatingMsg::Propose { r: 0, .. }))
            .collect();
        assert_eq!(
            proposes.len(),
            n - 1,
            "the unresolved Propose(0) goes back out to every peer: {retx:?}"
        );
    }

    #[test]
    fn tick_advances_past_a_suspected_coordinator() {
        let mut d: Driver = SlotDriver::new(p(1), 3);
        let _ = d.open(0, 5, ProcessSet::empty());
        // Suspecting round 0's coordinator p0 nacks and re-estimates.
        let (sends, decisions) = d.tick(ProcessSet::singleton(p(0)));
        assert!(decisions.is_empty());
        assert!(
            sends.iter().any(|(to, _, _)| *to == p(0)),
            "a nack goes back to the suspected coordinator: {sends:?}"
        );
    }
}
