//! Step-driver adapters: running [`ConsensusCore`]s *outside* the
//! simulator.
//!
//! The cores in [`crate::consensus`] are engine-independent state
//! machines — the simulator drives them through
//! [`crate::ConsensusAutomaton`], and a long-running service drives them
//! through this module. [`SlotDriver`] manages one core per **log slot**
//! (a replicated log runs one consensus instance per index, exactly the
//! paper's §1.1 consensus-sequence construction of atomic broadcast) and
//! takes care of the plumbing a live runtime needs:
//!
//! * slot-scoped message routing, with buffering for instances the local
//!   process has not opened yet (a faster peer may already be deciding
//!   index `k+1` while this process still fills index `k`);
//! * λ-steps ([`SlotDriver::tick`]) so suspicion-driven progress — e.g.
//!   the rotating coordinator's nack-and-advance escape — happens even
//!   when no message arrives;
//! * external resolution ([`SlotDriver::resolve`]) for decisions learned
//!   out of band (a decision relay, post-heal state transfer), dropping
//!   the instance's core.
//!
//! The driver never talks to a transport: every call returns the
//! `(destination, slot, message)` sends it produced, and the caller owns
//! encoding and delivery — the same inversion as [`super::Outbox`], one
//! level up.

use crate::consensus::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};
use std::collections::BTreeMap;

/// One outgoing message of a [`SlotDriver`]: destination, slot, payload.
pub type SlotSend<M> = (ProcessId, u64, M);

/// A slot-tagged decision, as returned by [`SlotDriver::tick`].
pub type SlotDecision<V> = (u64, V);

/// The effects of one [`SlotDriver::tick`]: the produced sends and the
/// slots that decided on it.
pub type TickEffects<M, V> = (Vec<SlotSend<M>>, Vec<SlotDecision<V>>);

/// A multi-instance, step-driven consensus driver: one
/// [`ConsensusCore`] per replicated-log slot.
///
/// # Examples
///
/// A single-process "cluster" decides its own proposal:
///
/// ```
/// use rfd_algo::consensus::RotatingConsensus;
/// use rfd_algo::driver::SlotDriver;
/// use rfd_core::{ProcessId, ProcessSet};
///
/// let me = ProcessId::new(0);
/// let mut driver: SlotDriver<RotatingConsensus<u64>> = SlotDriver::new(me, 1);
/// let (mut sends, decided) = driver.open(0, 7, ProcessSet::empty());
/// assert!(decided.is_none());
/// // Deliver the self-addressed traffic until the slot decides.
/// while let Some((to, slot, msg)) = sends.pop() {
///     assert_eq!(to, me);
///     let (more, _) = driver.on_message(slot, me, &msg, ProcessSet::empty());
///     sends.extend(more);
/// }
/// assert_eq!(driver.decision(0), Some(&7));
/// ```
#[derive(Debug)]
pub struct SlotDriver<C: ConsensusCore> {
    me: ProcessId,
    n: usize,
    /// Live cores, one per open undecided slot.
    open: BTreeMap<u64, C>,
    /// Traffic for slots this process has not opened yet.
    buffered: BTreeMap<u64, Vec<(ProcessId, C::Msg)>>,
    /// Decided slots (cores dropped on decision).
    decided: BTreeMap<u64, C::Val>,
}

impl<C: ConsensusCore> SlotDriver<C> {
    /// A driver for process `me` of `n`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self {
            me,
            n,
            open: BTreeMap::new(),
            buffered: BTreeMap::new(),
            decided: BTreeMap::new(),
        }
    }

    /// Whether `slot` currently has a live (open, undecided) core.
    #[must_use]
    pub fn is_open(&self, slot: u64) -> bool {
        self.open.contains_key(&slot)
    }

    /// The decision of `slot`, if it has one (locally decided or
    /// externally resolved).
    #[must_use]
    pub fn decision(&self, slot: u64) -> Option<&C::Val> {
        self.decided.get(&slot)
    }

    /// Opens the consensus instance of `slot` with this process's
    /// `proposal`, replaying any traffic buffered for it. No-op (empty
    /// sends) if the slot is already open or decided.
    ///
    /// Returns the produced sends and, if the replayed backlog already
    /// forced a decision, the decided value.
    pub fn open(
        &mut self,
        slot: u64,
        proposal: C::Val,
        suspects: ProcessSet,
    ) -> (Vec<SlotSend<C::Msg>>, Option<C::Val>) {
        if self.open.contains_key(&slot) || self.decided.contains_key(&slot) {
            return (Vec::new(), None);
        }
        self.open.insert(slot, C::new(self.me, self.n, proposal));
        let backlog = self.buffered.remove(&slot).unwrap_or_default();
        let mut sends = Vec::new();
        let mut decision = self.step_slot(slot, None, suspects, &mut sends);
        for (from, msg) in backlog {
            if decision.is_some() {
                break;
            }
            decision = self.step_slot(slot, Some((from, msg)), suspects, &mut sends);
        }
        (sends, decision)
    }

    /// Routes one incoming slot-scoped message. Traffic for a decided
    /// slot is dropped; traffic for a slot not opened locally is
    /// buffered until [`SlotDriver::open`] replays it.
    pub fn on_message(
        &mut self,
        slot: u64,
        from: ProcessId,
        msg: &C::Msg,
        suspects: ProcessSet,
    ) -> (Vec<SlotSend<C::Msg>>, Option<C::Val>) {
        if self.decided.contains_key(&slot) {
            return (Vec::new(), None);
        }
        if !self.open.contains_key(&slot) {
            self.buffered
                .entry(slot)
                .or_default()
                .push((from, msg.clone()));
            return (Vec::new(), None);
        }
        let mut sends = Vec::new();
        let decision = self.step_slot(slot, Some((from, msg.clone())), suspects, &mut sends);
        (sends, decision)
    }

    /// λ-steps every open slot with the current detector value, so
    /// suspicion-driven progress (round advancement past a suspected
    /// coordinator) happens between messages. Returns the produced sends
    /// and the slots that decided on this tick.
    pub fn tick(&mut self, suspects: ProcessSet) -> TickEffects<C::Msg, C::Val> {
        let mut sends = Vec::new();
        let mut decisions = Vec::new();
        let slots: Vec<u64> = self.open.keys().copied().collect();
        for slot in slots {
            if let Some(v) = self.step_slot(slot, None, suspects, &mut sends) {
                decisions.push((slot, v));
            }
        }
        (sends, decisions)
    }

    /// Records a decision learned out of band (decision relay, state
    /// transfer), dropping the slot's core and any buffered traffic.
    /// No-op if the slot already holds a decision.
    pub fn resolve(&mut self, slot: u64, value: C::Val) {
        self.open.remove(&slot);
        self.buffered.remove(&slot);
        self.decided.entry(slot).or_insert(value);
    }

    /// Steps one open slot, harvesting sends; on decision, retires the
    /// core into the decided map.
    fn step_slot(
        &mut self,
        slot: u64,
        input: Option<(ProcessId, C::Msg)>,
        suspects: ProcessSet,
        sends: &mut Vec<SlotSend<C::Msg>>,
    ) -> Option<C::Val> {
        let core = self.open.get_mut(&slot)?;
        let mut out = Outbox::new(self.me, self.n);
        let decided = core.step(
            input.as_ref().map(|(from, msg)| (*from, msg)),
            suspects,
            &mut out,
        );
        sends.extend(out.drain().into_iter().map(|(to, msg)| (to, slot, msg)));
        if let Some(v) = &decided {
            self.open.remove(&slot);
            self.decided.insert(slot, v.clone());
        }
        decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::RotatingConsensus;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type Driver = SlotDriver<RotatingConsensus<u64>>;

    /// Delivers every pending send into the matching driver — in send
    /// order — until the network drains: a lock-step mini-cluster.
    fn run_to_quiescence(
        drivers: &mut [Driver],
        wire: Vec<(
            ProcessId,
            u64,
            ProcessId,
            <RotatingConsensus<u64> as ConsensusCore>::Msg,
        )>,
    ) {
        let mut wire: std::collections::VecDeque<_> = wire.into();
        let mut budget = 10_000;
        while let Some((to, slot, from, msg)) = wire.pop_front() {
            budget -= 1;
            assert!(budget > 0, "mini-cluster failed to quiesce");
            let (sends, _) = drivers[to.index()].on_message(slot, from, &msg, ProcessSet::empty());
            for (dest, s, m) in sends {
                wire.push_back((dest, s, to, m));
            }
        }
    }

    #[test]
    fn three_drivers_decide_a_common_value_per_slot() {
        let n = 3;
        let mut drivers: Vec<Driver> = (0..n).map(|ix| SlotDriver::new(p(ix), n)).collect();
        let mut wire = Vec::new();
        for (ix, driver) in drivers.iter_mut().enumerate() {
            let (sends, _) = driver.open(0, 10 + ix as u64, ProcessSet::empty());
            for (dest, s, m) in sends {
                wire.push((dest, s, p(ix), m));
            }
        }
        run_to_quiescence(&mut drivers, wire);
        let d0 = drivers[0].decision(0).copied().expect("slot 0 decided");
        for driver in &drivers {
            assert_eq!(driver.decision(0), Some(&d0));
            assert!(!driver.is_open(0), "decided slots retire their core");
        }
        assert!((10..13).contains(&d0), "validity: a proposed value");
    }

    #[test]
    fn traffic_ahead_of_the_local_slot_is_buffered_then_replayed() {
        let n = 3;
        let mut a: Driver = SlotDriver::new(p(0), n);
        let mut b: Driver = SlotDriver::new(p(1), n);
        // b opens slot 5 and sends its estimate to the coordinator of
        // round 0 — p2 (5 % 3), not a; craft one addressed to a instead
        // by opening at a different slot: slot 3's round-0 coordinator
        // is p0.
        let (sends, _) = b.open(3, 9, ProcessSet::empty());
        let to_a: Vec<_> = sends.into_iter().filter(|(to, _, _)| *to == p(0)).collect();
        assert!(!to_a.is_empty(), "round-0 estimate goes to coordinator p0");
        for (_, slot, msg) in &to_a {
            let (sends, decided) = a.on_message(*slot, p(1), msg, ProcessSet::empty());
            assert!(
                sends.is_empty() && decided.is_none(),
                "buffered, not stepped"
            );
        }
        // Opening the slot replays the backlog: the coordinator now has
        // b's estimate plus its own.
        let (sends, _) = a.open(3, 8, ProcessSet::empty());
        assert!(!sends.is_empty(), "replay drives the coordinator forward");
    }

    #[test]
    fn resolve_retires_a_spinning_instance() {
        let mut d: Driver = SlotDriver::new(p(1), 4);
        let (_, none) = d.open(0, 5, ProcessSet::empty());
        assert!(none.is_none());
        assert!(d.is_open(0));
        d.resolve(0, 6);
        assert_eq!(d.decision(0), Some(&6));
        assert!(!d.is_open(0));
        // A late message for the resolved slot is dropped quietly.
        let (sends, decided) = d.on_message(
            0,
            p(0),
            &crate::consensus::RotatingMsg::Ack { r: 0 },
            ProcessSet::empty(),
        );
        assert!(sends.is_empty() && decided.is_none());
        // And resolve never overwrites an existing decision.
        d.resolve(0, 99);
        assert_eq!(d.decision(0), Some(&6));
    }

    #[test]
    fn tick_advances_past_a_suspected_coordinator() {
        let mut d: Driver = SlotDriver::new(p(1), 3);
        let _ = d.open(0, 5, ProcessSet::empty());
        // Suspecting round 0's coordinator p0 nacks and re-estimates.
        let (sends, decisions) = d.tick(ProcessSet::singleton(p(0)));
        assert!(decisions.is_empty());
        assert!(
            sends.iter().any(|(to, _, _)| *to == p(0)),
            "a nack goes back to the suspected coordinator: {sends:?}"
        );
    }
}
