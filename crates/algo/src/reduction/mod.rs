//! The paper's reductions: emulating a Perfect failure detector.
//!
//! * [`PerfectEmulation`] — `T_{D⇒P}` (§4.3): an infinite sequence of
//!   *total* consensus instances with `[pᵢ is alive]` tags; at every
//!   decision, processes whose tag is missing from the decision's causal
//!   chain are added to `output(P)`, which is never retracted.
//! * [`TrbEmulation`] — the §5 counterpart: run TRB instances `(i, k)`
//!   round-robin over initiators; whenever `nil` is delivered for an
//!   instance initiated by `pᵢ`, add `pᵢ` to `output(P)`.
//!
//! * [`CompletenessBooster`] — Chandra–Toueg's weak→strong completeness
//!   gossip transformation, used by the class definitions the paper
//!   builds on.
//!
//! All expose their emulated output through
//! [`rfd_sim::Automaton::emulated_suspects`], so the engine assembles the
//! emulated history and `rfd-core`'s class checker can verify it is
//! Perfect (experiments E2 and E3).

mod completeness;
mod to_perfect;
mod trb_to_perfect;

pub use completeness::{CompletenessBooster, SuspicionGossip};
pub use to_perfect::{InstanceMsg, PerfectEmulation};
pub use trb_to_perfect::{TrbEmulation, TrbInstanceMsg};
