//! `T_{D⇒P}`: transforming a total-consensus-solving detector into `P`
//! (§4.3, Lemma 4.2).
//!
//! The algorithm is an infinite sequence of executions of a total
//! consensus algorithm `A`, with three additions:
//!
//! 1. every message carries the information `[pᵢ is alive]` for its
//!    sender — and, transitively, for every process in the causal past of
//!    the send (realized here as an instance-scoped `alive` set merged on
//!    receipt and attached on send);
//! 2. decision events inherit the alive-tags of their causal chain;
//! 3. at a decision event, every process whose tag is **not** attached is
//!    added to `output(P)` and never removed.
//!
//! Because `A` is total (Lemma 4.1 — with an unbounded number of possible
//! failures, *every* consensus algorithm using a realistic detector is),
//! a missing tag proves the process had crashed: strong accuracy. A
//! crashed process sends nothing in later instances, whose decisions
//! therefore lack its tag: strong completeness.

use crate::consensus::{ConsensusCore, Outbox};
use rfd_core::{ProcessId, ProcessSet};
use rfd_sim::{Automaton, Envelope, StepContext};

/// A consensus message wrapped with its instance number and alive-tags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceMsg<M> {
    /// Consensus instance number (0-based).
    pub instance: u64,
    /// Alive-tags: the instance-scoped causal past of the send.
    pub alive: ProcessSet,
    /// The wrapped consensus message.
    pub inner: M,
}

/// The `T_{D⇒P}` emulation automaton, generic over the total consensus
/// core `C` (e.g. [`crate::consensus::StrongConsensus`] or
/// [`crate::consensus::FloodSetConsensus`]).
#[derive(Debug)]
pub struct PerfectEmulation<C: ConsensusCore> {
    me: ProcessId,
    n: usize,
    instance: u64,
    core: C,
    /// Alive-tags gathered for the current instance (always contains
    /// `me`).
    alive: ProcessSet,
    /// The emulated Perfect detector output — grows monotonically.
    output_p: ProcessSet,
    /// Messages for future instances.
    buffered: Vec<(u64, ProcessId, ProcessSet, C::Msg)>,
    /// Decisions observed (instance, decided alive set) — diagnostics.
    decisions: u64,
}

impl<C> PerfectEmulation<C>
where
    C: ConsensusCore,
    C::Val: From<u64>,
{
    /// Creates the emulation process `me` of `n`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self {
            me,
            n,
            instance: 0,
            core: C::new(me, n, C::Val::from(me.index() as u64)),
            alive: ProcessSet::singleton(me),
            output_p: ProcessSet::empty(),
            buffered: Vec::new(),
            decisions: 0,
        }
    }

    /// Builds the fleet.
    #[must_use]
    pub fn fleet(n: usize) -> Vec<Self> {
        (0..n).map(|ix| Self::new(ProcessId::new(ix), n)).collect()
    }

    /// The current `output(P)` of this process.
    #[must_use]
    pub fn output_p(&self) -> ProcessSet {
        self.output_p
    }

    /// Number of consensus instances this process has seen decide.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    fn next_instance(&mut self) {
        self.instance += 1;
        self.core = C::new(self.me, self.n, C::Val::from(self.me.index() as u64));
        self.alive = ProcessSet::singleton(self.me);
    }

    /// Runs one core step (with optional input), wrapping sends with the
    /// current instance and alive-tags. Returns `true` if the instance
    /// decided.
    fn drive(
        &mut self,
        input: Option<(ProcessId, &C::Msg)>,
        suspects: ProcessSet,
        sends: &mut Vec<(ProcessId, InstanceMsg<C::Msg>)>,
    ) -> bool {
        let mut out = Outbox::new(self.me, self.n);
        let decided = self.core.step(input, suspects, &mut out);
        for (to, msg) in out.drain() {
            sends.push((
                to,
                InstanceMsg {
                    instance: self.instance,
                    alive: self.alive,
                    inner: msg,
                },
            ));
        }
        if decided.is_some() {
            // §4.3 step 3: suspect exactly the processes whose alive-tag
            // is missing from the decision event.
            self.output_p |= self.alive.complement_within(self.n);
            self.decisions += 1;
            true
        } else {
            false
        }
    }
}

impl<C> Automaton for PerfectEmulation<C>
where
    C: ConsensusCore,
    C::Val: From<u64>,
{
    type Msg = InstanceMsg<C::Msg>;
    /// Each decision event outputs the updated `output(P)` snapshot.
    type Output = ProcessSet;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        let mut sends: Vec<(ProcessId, InstanceMsg<C::Msg>)> = Vec::new();
        // Classify the input.
        let mut inner_input: Option<(ProcessId, C::Msg)> = None;
        if let Some(env) = input {
            let msg = &env.payload;
            if msg.instance == self.instance {
                self.alive |= msg.alive;
                inner_input = Some((env.from, msg.inner.clone()));
            } else if msg.instance > self.instance {
                self.buffered
                    .push((msg.instance, env.from, msg.alive, msg.inner.clone()));
            }
            // Older instances: already decided here — tags are stale and
            // suspicions are never retracted, so drop them.
        }
        // Drive the current instance; on decision, roll into the next and
        // replay any buffered traffic (possibly cascading).
        let mut decided = self.drive(
            inner_input.as_ref().map(|(f, m)| (*f, m)),
            ctx.suspects(),
            &mut sends,
        );
        while decided {
            ctx.output(self.output_p);
            self.next_instance();
            let instance = self.instance;
            let buffered = std::mem::take(&mut self.buffered);
            decided = false;
            for (k, from, alive, msg) in buffered {
                if k == instance && !decided {
                    self.alive |= alive;
                    decided |= self.drive(Some((from, &msg)), ctx.suspects(), &mut sends);
                } else if k > instance || (k == instance && decided) {
                    self.buffered.push((k, from, alive, msg));
                }
            }
        }
        for (to, msg) in sends {
            ctx.send(to, msg);
        }
    }

    fn emulated_suspects(&self) -> Option<ProcessSet> {
        Some(self.output_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::FloodSetConsensus;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type Emu = PerfectEmulation<FloodSetConsensus<u64>>;

    #[test]
    fn fresh_emulation_suspects_nobody() {
        let e = Emu::new(p(0), 3);
        assert!(e.output_p().is_empty());
        assert_eq!(e.emulated_suspects(), Some(ProcessSet::empty()));
    }

    #[test]
    fn alive_tags_start_with_self() {
        let e = Emu::new(p(2), 3);
        assert_eq!(e.alive, ProcessSet::singleton(p(2)));
    }

    #[test]
    fn instance_rollover_resets_alive_and_keeps_output() {
        let mut e = Emu::new(p(0), 2);
        e.alive.insert(p(1));
        e.output_p.insert(p(1));
        e.next_instance();
        assert_eq!(e.instance, 1);
        assert_eq!(e.alive, ProcessSet::singleton(p(0)));
        assert!(e.output_p.contains(p(1)), "suspicions are never retracted");
    }
}
