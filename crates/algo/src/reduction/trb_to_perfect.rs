//! Emulating `P` from terminating reliable broadcast (§5, Prop. 5.1,
//! necessary condition).
//!
//! "Whenever a process `pⱼ` delivers `nil` for an instance `(i, ∗)` of
//! the problem, `pⱼ` adds `pᵢ` to `output(P)ⱼ`." Completeness: a crashed
//! initiator's instances deliver `nil` at every correct process.
//! Accuracy: with a realistic detector, `nil` can be delivered only if
//! the initiator has actually crashed (here: the `P`-based TRB stack's
//! suspicion path fires only after a real crash).

use crate::trb::{TrbMsg, TrbProcess};
use rfd_core::{ProcessId, ProcessSet};
use rfd_sim::{Automaton, Envelope, StepContext};

use crate::consensus::Outbox;

/// A TRB message wrapped with its instance number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrbInstanceMsg {
    /// Instance number `k`; the initiator is `p_{k mod n}`.
    pub instance: u64,
    /// The wrapped TRB message (payloads are synthetic `k` values).
    pub inner: TrbMsg<u64>,
}

/// The §5 emulation automaton: round-robin TRB instances; `nil`
/// deliveries populate `output(P)`.
#[derive(Debug)]
pub struct TrbEmulation {
    me: ProcessId,
    n: usize,
    instance: u64,
    trb: TrbProcess<u64>,
    output_p: ProcessSet,
    buffered: Vec<(u64, ProcessId, TrbMsg<u64>)>,
    deliveries: u64,
}

impl TrbEmulation {
    /// Creates the emulation process `me` of `n`.
    #[must_use]
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self {
            me,
            n,
            instance: 0,
            trb: Self::instance_process(me, n, 0),
            output_p: ProcessSet::empty(),
            buffered: Vec::new(),
            deliveries: 0,
        }
    }

    /// Builds the fleet.
    #[must_use]
    pub fn fleet(n: usize) -> Vec<Self> {
        (0..n).map(|ix| Self::new(ProcessId::new(ix), n)).collect()
    }

    /// The initiator of instance `k`.
    #[must_use]
    pub fn initiator(n: usize, k: u64) -> ProcessId {
        ProcessId::new((k % n as u64) as usize)
    }

    /// The current `output(P)` of this process.
    #[must_use]
    pub fn output_p(&self) -> ProcessSet {
        self.output_p
    }

    /// Number of TRB instances delivered by this process.
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    fn instance_process(me: ProcessId, n: usize, k: u64) -> TrbProcess<u64> {
        let initiator = Self::initiator(n, k);
        let payload = (me == initiator).then_some(k);
        TrbProcess::new(me, n, initiator, payload)
    }

    fn next_instance(&mut self) {
        self.instance += 1;
        self.trb = Self::instance_process(self.me, self.n, self.instance);
    }

    fn drive(
        &mut self,
        input: Option<(ProcessId, &TrbMsg<u64>)>,
        suspects: ProcessSet,
        sends: &mut Vec<(ProcessId, TrbInstanceMsg)>,
    ) -> bool {
        let mut out = Outbox::new(self.me, self.n);
        let delivered = self.trb.step(input, suspects, &mut out);
        for (to, msg) in out.drain() {
            sends.push((
                to,
                TrbInstanceMsg {
                    instance: self.instance,
                    inner: msg,
                },
            ));
        }
        match delivered {
            Some(None) => {
                // nil delivered: suspect the initiator, permanently.
                self.output_p.insert(Self::initiator(self.n, self.instance));
                self.deliveries += 1;
                true
            }
            Some(Some(_)) => {
                self.deliveries += 1;
                true
            }
            None => false,
        }
    }
}

impl Automaton for TrbEmulation {
    type Msg = TrbInstanceMsg;
    /// Each delivery outputs the updated `output(P)` snapshot.
    type Output = ProcessSet;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        let mut sends: Vec<(ProcessId, TrbInstanceMsg)> = Vec::new();
        let mut inner_input: Option<(ProcessId, TrbMsg<u64>)> = None;
        if let Some(env) = input {
            let msg = &env.payload;
            if msg.instance == self.instance {
                inner_input = Some((env.from, msg.inner.clone()));
            } else if msg.instance > self.instance {
                self.buffered
                    .push((msg.instance, env.from, msg.inner.clone()));
            }
        }
        let mut delivered = self.drive(
            inner_input.as_ref().map(|(f, m)| (*f, m)),
            ctx.suspects(),
            &mut sends,
        );
        while delivered {
            ctx.output(self.output_p);
            self.next_instance();
            let instance = self.instance;
            let buffered = std::mem::take(&mut self.buffered);
            delivered = false;
            for (k, from, msg) in buffered {
                if k == instance && !delivered {
                    delivered |= self.drive(Some((from, &msg)), ctx.suspects(), &mut sends);
                } else if k > instance || (k == instance && delivered) {
                    self.buffered.push((k, from, msg));
                }
            }
        }
        for (to, msg) in sends {
            ctx.send(to, msg);
        }
    }

    fn emulated_suspects(&self) -> Option<ProcessSet> {
        Some(self.output_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initiator_rotates_round_robin() {
        assert_eq!(TrbEmulation::initiator(3, 0), p(0));
        assert_eq!(TrbEmulation::initiator(3, 4), p(1));
        assert_eq!(TrbEmulation::initiator(3, 5), p(2));
    }

    #[test]
    fn fresh_emulation_suspects_nobody() {
        let e = TrbEmulation::new(p(1), 3);
        assert!(e.output_p().is_empty());
        assert_eq!(e.deliveries(), 0);
    }
}
