//! Boosting weak completeness to strong completeness by gossip
//! (Chandra–Toueg, JACM 1996, Fig. 1).
//!
//! The paper's class definitions lean on CT's observation that weak and
//! strong completeness are interchangeable: every process periodically
//! broadcasts the set of processes its local module currently suspects;
//! on receipt, a process adds the suspicions to its emulated output and
//! removes the **sender** (a message from `q` proves `q` was alive when
//! it sent — exactly the "accurate about the past" flavor of information
//! that realistic detectors traffic in).
//!
//! Run over [`rfd_core::oracles::WeakWitnessOracle`] (weak completeness +
//! strong accuracy), the boosted output satisfies **strong** completeness
//! while preserving eventual accuracy of the sort the input had: a live
//! sender keeps cleansing itself from everyone's emulated output.

use rfd_core::{ProcessId, ProcessSet};
use rfd_sim::{Automaton, Envelope, StepContext};

/// Gossip message: the sender's currently suspected set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspicionGossip {
    /// The sender's local detector output at send time.
    pub suspects: ProcessSet,
}

/// The completeness-boosting automaton.
///
/// Exposes the boosted set through
/// [`rfd_sim::Automaton::emulated_suspects`], so the engine assembles an
/// emulated history checkable against the class predicates.
#[derive(Debug)]
pub struct CompletenessBooster {
    me: ProcessId,
    /// Steps between gossip rounds.
    gossip_every: u64,
    steps: u64,
    output: ProcessSet,
}

impl CompletenessBooster {
    /// Creates the booster for process `me`, gossiping every
    /// `gossip_every` steps.
    ///
    /// # Panics
    ///
    /// Panics if `gossip_every` is zero.
    #[must_use]
    pub fn new(me: ProcessId, gossip_every: u64) -> Self {
        assert!(gossip_every > 0, "gossip period must be positive");
        Self {
            me,
            gossip_every,
            steps: 0,
            output: ProcessSet::empty(),
        }
    }

    /// Builds the fleet.
    #[must_use]
    pub fn fleet(n: usize, gossip_every: u64) -> Vec<Self> {
        (0..n)
            .map(|ix| Self::new(ProcessId::new(ix), gossip_every))
            .collect()
    }

    /// The boosted suspect set.
    #[must_use]
    pub fn output(&self) -> ProcessSet {
        self.output
    }
}

impl Automaton for CompletenessBooster {
    type Msg = SuspicionGossip;
    /// Outputs each boosted-set change.
    type Output = ProcessSet;

    fn on_step(
        &mut self,
        input: Option<&Envelope<Self::Msg>>,
        ctx: &mut StepContext<Self::Msg, Self::Output>,
    ) {
        let before = self.output;
        // Merge the local module's current view.
        self.output |= ctx.suspects();
        if let Some(env) = input {
            // CT Fig. 1: output ← (output ∪ received) \ {sender}.
            self.output |= env.payload.suspects;
            self.output.remove(env.from);
        }
        self.output.remove(self.me);
        if self.steps % self.gossip_every == 0 {
            ctx.broadcast_others(SuspicionGossip {
                suspects: self.output,
            });
        }
        self.steps += 1;
        if self.output != before {
            ctx.output(self.output);
        }
    }

    fn emulated_suspects(&self) -> Option<ProcessSet> {
        Some(self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_core::oracles::{Oracle, WeakWitnessOracle};
    use rfd_core::{FailurePattern, History, Time};
    use rfd_sim::{run, ticks_for_rounds, SimConfig};

    #[test]
    fn fresh_booster_suspects_nobody() {
        let b = CompletenessBooster::new(ProcessId::new(0), 4);
        assert!(b.output().is_empty());
        assert_eq!(b.emulated_suspects(), Some(ProcessSet::empty()));
    }

    #[test]
    fn boosted_output_spreads_a_witnessed_crash_to_everyone() {
        let n = 4;
        let rounds = 300u64;
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(30));
        let oracle = WeakWitnessOracle::new(5);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), 3);
        let automata = CompletenessBooster::fleet(n, 4);
        let result = run(&pattern, &history, automata, &SimConfig::new(3, rounds));
        // Only one process's local module ever saw the crash, but every
        // survivor's boosted output ends up containing p0.
        for (ix, b) in result.automata.iter().enumerate() {
            if ix != 0 {
                assert!(
                    b.output().contains(ProcessId::new(0)),
                    "p{ix} missing the boosted suspicion"
                );
            }
        }
    }

    #[test]
    fn live_senders_cleanse_themselves() {
        let n = 3;
        let rounds = 200u64;
        let pattern = FailurePattern::new(n); // everyone correct
                                              // A silent (empty) oracle: no local suspicions at all.
        let history = History::new(n, ProcessSet::empty());
        let automata = CompletenessBooster::fleet(n, 4);
        let result = run(&pattern, &history, automata, &SimConfig::new(5, rounds));
        for b in &result.automata {
            assert!(b.output().is_empty(), "no crash, no suspicion");
        }
    }
}
