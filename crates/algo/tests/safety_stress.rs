//! Safety stress: agreement must survive hostile detectors and hostile
//! schedules. Liveness may be lost — safety, never.

use rand::Rng;
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{
    ConsensusAutomaton, ConsensusCore, EarlyFloodSetConsensus, FloodSetConsensus,
    RotatingConsensus, StrongConsensus,
};
use rfd_core::oracles::{EventuallyPerfectOracle, Oracle, PerfectOracle};
use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};
use rfd_sim::campaign::{seed_rng, Campaign, RunPlan};
use rfd_sim::{ticks_for_rounds, Adversary, DeliveryModel, SimConfig, StopCondition};

const ROUNDS: u64 = 500;

fn stress<C: ConsensusCore<Val = u64>>(
    name: &str,
    history_of: impl Fn(&FailurePattern, u64, Time) -> History<ProcessSet> + Sync,
    seeds: u64,
) {
    // Campaign-parallel sweep: each seed derives its own scenario RNG, so
    // any failing seed reproduces in isolation.
    Campaign::new(
        SimConfig::new(0, ROUNDS)
            .with_delivery(DeliveryModel::uniform(1, 25))
            .with_stop(StopCondition::EachCorrectOutput(1)),
    )
    .seeds(0..seeds)
    .run(
        |seed, config| {
            let mut rng = seed_rng(0x57E5, seed);
            let n = rng.gen_range(2..=7);
            let pattern = FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng);
            let horizon = ticks_for_rounds(n, ROUNDS);
            let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
            // Hostile schedule: slow, jittery delivery plus a random hold.
            let adversary = match seed % 4 {
                0 => Adversary::None,
                1 => Adversary::HoldFrom(ProcessId::new(rng.gen_range(0..n)), Time::new(300)),
                2 => Adversary::HoldTo(ProcessId::new(rng.gen_range(0..n)), Time::new(300)),
                _ => Adversary::Isolate(ProcessId::new(rng.gen_range(0..n)), Time::new(250)),
            };
            RunPlan {
                oracle: history_of(&pattern, seed, horizon),
                automata: ConsensusAutomaton::<C>::fleet(&props),
                pattern,
                config: config.with_adversary(adversary),
            }
        },
        |seed, pattern, result| {
            let props: Vec<u64> = (0..pattern.num_processes() as u64)
                .map(|i| 100 + i)
                .collect();
            let v = check_consensus(pattern, &result.trace, &props);
            assert!(
                v.uniform_agreement.is_ok(),
                "{name}: agreement broke, seed={seed} pattern={pattern:?}: {v:?}"
            );
            assert!(
                v.validity.is_ok(),
                "{name}: validity broke, seed={seed} pattern={pattern:?}: {v:?}"
            );
        },
    );
}

#[test]
fn floodset_safety_under_hostile_schedules() {
    let oracle = PerfectOracle::new(6, 4);
    stress::<FloodSetConsensus<u64>>("floodset", |p, s, h| oracle.generate(p, h, s), 40);
}

#[test]
fn early_floodset_safety_under_hostile_schedules() {
    let oracle = PerfectOracle::new(6, 4);
    stress::<EarlyFloodSetConsensus<u64>>("early-floodset", |p, s, h| oracle.generate(p, h, s), 40);
}

#[test]
fn ct_strong_safety_under_hostile_schedules() {
    let oracle = PerfectOracle::new(6, 4);
    stress::<StrongConsensus<u64>>("ct-strong", |p, s, h| oracle.generate(p, h, s), 40);
}

#[test]
fn rotating_safety_with_wildly_inaccurate_detector() {
    // ◇S safety must not depend on accuracy at all: feed the rotating
    // coordinator a ◇P oracle with aggressive pre-GST mistakes (false
    // suspicions of live coordinators → nacks, round churn). Liveness may
    // suffer inside the noisy prefix; agreement must hold always.
    let oracle = EventuallyPerfectOracle::new(Time::new(600), 6, 4).with_mistakes(12, 50);
    stress::<RotatingConsensus<u64>>("rotating", |p, s, h| oracle.generate(p, h, s), 40);
}

#[test]
fn rotating_decisions_remain_unique_across_rounds() {
    // Even when several coordinators resolve rounds concurrently, all
    // Decide messages must carry the same value (the CT locking
    // argument). We inspect every decision event, not just the firsts.
    let oracle = EventuallyPerfectOracle::new(Time::new(200), 6, 4).with_mistakes(8, 40);
    let n = 5;
    let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    Campaign::new(SimConfig::new(0, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1)))
        .seeds(0..25)
        .run(
            |seed, config| {
                let mut rng = seed_rng(0xD1CE, seed);
                let max_f = (n - 1) / 2;
                let pattern = FailurePattern::random(n, max_f, Time::new(ROUNDS), &mut rng);
                let horizon = ticks_for_rounds(n, ROUNDS);
                RunPlan {
                    oracle: oracle.generate(&pattern, horizon, seed),
                    automata: ConsensusAutomaton::<RotatingConsensus<u64>>::fleet(&props),
                    pattern,
                    config,
                }
            },
            |seed, pattern, result| {
                let mut values: Vec<u64> = result.trace.events.iter().map(|e| e.value).collect();
                values.dedup();
                assert!(
                    values.len() <= 1,
                    "seed={seed}: conflicting decisions {values:?} ({pattern:?})"
                );
            },
        );
}
