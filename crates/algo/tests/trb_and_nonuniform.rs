//! Proposition 5.1 (TRB ⟷ `P`) and the §6.2 separation between uniform
//! and correct-restricted consensus, demonstrated end-to-end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfd_algo::check::{check_consensus, check_trb};
use rfd_algo::consensus::{ConsensusAutomaton, RankedConsensus};
use rfd_algo::reduction::TrbEmulation;
use rfd_algo::trb::TrbProcess;
use rfd_core::oracles::{Oracle, PerfectOracle, RankedOracle};
use rfd_core::{class_report, CheckParams, ClassId, FailurePattern, ProcessId, Time};
use rfd_sim::{run, ticks_for_rounds, Adversary, SimConfig, StopCondition};

const ROUNDS: u64 = 600;

#[test]
fn trb_delivers_message_when_initiator_is_correct() {
    let mut rng = StdRng::seed_from_u64(0x51);
    let oracle = PerfectOracle::new(6, 3);
    for seed in 0..10u64 {
        let n = 5;
        // The initiator p0 stays correct; others may crash freely.
        let mut pattern = FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng);
        pattern.clear_crash(ProcessId::new(0));
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let automata = TrbProcess::fleet(n, ProcessId::new(0), 777u64);
        let config = SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        let verdict = check_trb(&pattern, &result.trace, ProcessId::new(0), &777);
        assert!(
            verdict.is_trb(),
            "seed={seed} pattern={pattern:?}: {verdict:?}"
        );
        // Everyone delivered the actual message, not nil.
        for ev in &result.trace.events {
            assert_eq!(ev.value, Some(777));
        }
    }
}

#[test]
fn trb_delivers_nil_when_initiator_crashes_before_sending() {
    let oracle = PerfectOracle::new(6, 3);
    for seed in 0..10u64 {
        let n = 4;
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::ZERO);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let automata = TrbProcess::fleet(n, ProcessId::new(0), 777u64);
        let config = SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        let verdict = check_trb(&pattern, &result.trace, ProcessId::new(0), &777);
        assert!(verdict.is_trb(), "seed={seed}: {verdict:?}");
        for ev in &result.trace.events {
            assert_eq!(ev.value, None, "nil must be delivered");
        }
    }
}

#[test]
fn trb_agreement_when_initiator_crashes_mid_broadcast() {
    // The hard case: the initiator crashes after reaching only some
    // processes. Consensus must still make everyone deliver the SAME
    // outcome (either the message or nil).
    let oracle = PerfectOracle::new(10, 5);
    let mut nil_runs = 0usize;
    let mut msg_runs = 0usize;
    for seed in 0..20u64 {
        let n = 5;
        let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(3));
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let automata = TrbProcess::fleet(n, ProcessId::new(0), 777u64);
        let config = SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        let verdict = check_trb(&pattern, &result.trace, ProcessId::new(0), &777);
        assert!(verdict.is_trb(), "seed={seed}: {verdict:?}");
        let first = result
            .trace
            .first_outputs(n)
            .into_iter()
            .flatten()
            .next()
            .expect("someone delivered")
            .value;
        if first.is_none() {
            nil_runs += 1;
        } else {
            msg_runs += 1;
        }
    }
    // Both outcomes should be reachable across seeds (mid-broadcast crash
    // races the suspicion).
    assert!(nil_runs + msg_runs == 20);
}

#[test]
fn trb_emulation_builds_a_perfect_history() {
    // Prop. 5.1, necessary condition: nil deliveries reconstruct P.
    let oracle = PerfectOracle::new(6, 3);
    for (seed, pattern) in [
        (1u64, FailurePattern::new(4)),
        (
            2,
            FailurePattern::new(4).with_crash(ProcessId::new(1), Time::new(300)),
        ),
        (
            3,
            FailurePattern::new(4)
                .with_crash(ProcessId::new(0), Time::new(200))
                .with_crash(ProcessId::new(2), Time::new(500)),
        ),
    ] {
        let rounds = 1_500;
        let history = oracle.generate(&pattern, ticks_for_rounds(4, rounds), seed);
        let automata = TrbEmulation::fleet(4);
        let result = run(&pattern, &history, automata, &SimConfig::new(seed, rounds));
        let emulated = result.emulated.expect("emulation exposes output(P)");
        let end = result.trace.end_time;
        let params = CheckParams::with_margin(end, end.ticks() / 8);
        let report = class_report(&pattern, &emulated, &params);
        assert!(
            report.is_in(ClassId::Perfect),
            "seed={seed} pattern={pattern:?}\n completeness: {:?}\n accuracy: {:?}",
            report.strong_completeness,
            report.strong_accuracy
        );
    }
}

#[test]
fn ranked_consensus_solves_correct_restricted_for_any_f() {
    // §6.2 positive half: P< suffices for correct-restricted consensus
    // with unbounded failures.
    let mut rng = StdRng::seed_from_u64(0x62);
    let oracle = RankedOracle::new(6, 3);
    for seed in 0..20u64 {
        let n = 5;
        let pattern = FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let props: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
        let automata = ConsensusAutomaton::<RankedConsensus<u64>>::fleet(&props);
        let config = SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        let v = check_consensus(&pattern, &result.trace, &props);
        assert!(
            v.is_correct_restricted_consensus(),
            "seed={seed} pattern={pattern:?}: {v:?}"
        );
    }
}

#[test]
fn ranked_consensus_violates_uniform_agreement_in_the_papers_run() {
    // §6.2 negative half — the witness run: p0 decides its own value and
    // crashes; its announcement is delayed past p1's suspicion, so p1
    // decides differently. Uniform consensus fails; correct-restricted
    // holds (the disagreeing p0 is faulty).
    let n = 3;
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(4));
    let oracle = RankedOracle::new(5, 0);
    let horizon = ticks_for_rounds(n, ROUNDS);
    let history = oracle.generate(&pattern, horizon, 0);
    let props: Vec<u64> = vec![100, 200, 300];
    // Hold p0's messages long enough for suspicion to beat them.
    let config = SimConfig::new(0, ROUNDS)
        .with_adversary(Adversary::HoldFrom(ProcessId::new(0), Time::new(500)))
        .with_stop(StopCondition::EachCorrectOutput(1));
    let automata = ConsensusAutomaton::<RankedConsensus<u64>>::fleet(&props);
    let result = run(&pattern, &history, automata, &config);
    let v = check_consensus(&pattern, &result.trace, &props);
    assert!(
        v.uniform_agreement.is_err(),
        "p0 decided 100, correct processes 200: {v:?}"
    );
    assert!(
        v.is_correct_restricted_consensus(),
        "correct processes still agree: {v:?}"
    );
}
