//! Randomized end-to-end consensus property tests (the paper's §4
//! sufficiency claims), run through the full simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfd_algo::check::check_consensus;
use rfd_algo::consensus::{
    ConsensusAutomaton, ConsensusCore, FloodSetConsensus, MaraboutConsensus, RotatingConsensus,
    StrongConsensus,
};
use rfd_core::oracles::{
    EventuallyStrongOracle, MaraboutOracle, Oracle, PerfectOracle, StrongOracle,
};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};

const ROUNDS: u64 = 600;

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 100 + i).collect()
}

fn random_pattern(n: usize, max_faulty: usize, rng: &mut StdRng) -> FailurePattern {
    // Crashes happen early enough that detection completes within budget.
    FailurePattern::random(n, max_faulty, Time::new(ROUNDS), rng)
}

/// Runs a consensus core over an oracle history and returns the verdict.
fn consensus_run<C>(
    pattern: &FailurePattern,
    history: &rfd_core::History<rfd_core::ProcessSet>,
    seed: u64,
) -> rfd_algo::ConsensusVerdict<u64>
where
    C: ConsensusCore<Val = u64>,
{
    let n = pattern.num_processes();
    let props = proposals(n);
    let automata = ConsensusAutomaton::<C>::fleet(&props);
    let config = SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
    let result = run(pattern, history, automata, &config);
    check_consensus(pattern, &result.trace, &props)
}

#[test]
fn floodset_over_perfect_is_uniform_consensus_for_any_f() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    let oracle = PerfectOracle::new(6, 3);
    for n in [3usize, 5, 8] {
        for seed in 0..10u64 {
            // Unbounded failures: up to n-1 crashes.
            let pattern = random_pattern(n, n - 1, &mut rng);
            let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
            let v = consensus_run::<FloodSetConsensus<u64>>(&pattern, &history, seed);
            assert!(
                v.is_uniform_consensus(),
                "n={n} seed={seed} pattern={pattern:?}: {v:?}"
            );
        }
    }
}

#[test]
fn ct_strong_over_perfect_is_uniform_consensus_for_any_f() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    let oracle = PerfectOracle::new(6, 3);
    for n in [3usize, 5, 8] {
        for seed in 0..10u64 {
            let pattern = random_pattern(n, n - 1, &mut rng);
            let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
            let v = consensus_run::<StrongConsensus<u64>>(&pattern, &history, seed);
            assert!(
                v.is_uniform_consensus(),
                "n={n} seed={seed} pattern={pattern:?}: {v:?}"
            );
        }
    }
}

#[test]
fn ct_strong_over_clairvoyant_strong_oracle_stays_safe() {
    // §1.2 / §6.3: S solves (uniform) consensus even with unbounded
    // failures — also for the clairvoyant Strong oracle, which is S but
    // not P (and not realistic).
    let mut rng = StdRng::seed_from_u64(0xE3);
    let oracle = StrongOracle::new(5, Time::new(60));
    for seed in 0..10u64 {
        let n = 5;
        let pattern = random_pattern(n, n - 1, &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let v = consensus_run::<StrongConsensus<u64>>(&pattern, &history, seed);
        assert!(
            v.is_uniform_consensus(),
            "n={n} seed={seed} pattern={pattern:?}: {v:?}"
        );
    }
}

#[test]
fn rotating_over_eventually_strong_decides_with_correct_majority() {
    let mut rng = StdRng::seed_from_u64(0xE4);
    let oracle = EventuallyStrongOracle::new(8);
    for n in [3usize, 5, 7] {
        let max_f = (n - 1) / 2; // keep a correct majority
        for seed in 0..8u64 {
            let pattern = random_pattern(n, max_f, &mut rng);
            let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
            let v = consensus_run::<RotatingConsensus<u64>>(&pattern, &history, seed);
            assert!(
                v.is_uniform_consensus(),
                "n={n} seed={seed} pattern={pattern:?}: {v:?}"
            );
        }
    }
}

#[test]
fn rotating_does_not_terminate_without_correct_majority() {
    // The paper's point (§1.2): ◇S is insufficient when f can reach
    // ⌈n/2⌉. Crash a majority at t=0; the coordinator can never gather
    // majority estimates, so nobody ever decides. Safety is preserved.
    let n = 4;
    let mut pattern = FailurePattern::new(n);
    pattern.set_crash(ProcessId::new(0), Time::ZERO);
    pattern.set_crash(ProcessId::new(1), Time::ZERO);
    let oracle = EventuallyStrongOracle::new(8);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 1);
    let v = consensus_run::<RotatingConsensus<u64>>(&pattern, &history, 1);
    assert!(v.termination.is_err(), "must block: {v:?}");
    assert!(v.uniform_agreement.is_ok(), "but never disagree: {v:?}");
}

#[test]
fn marabout_algorithm_works_with_marabout_for_any_f() {
    // §6.1: with the clairvoyant M, the trivial algorithm solves
    // consensus no matter how many processes crash.
    let mut rng = StdRng::seed_from_u64(0xE6);
    let oracle = MaraboutOracle::new();
    for seed in 0..10u64 {
        let n = 5;
        let pattern = random_pattern(n, n - 1, &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let v = consensus_run::<MaraboutConsensus<u64>>(&pattern, &history, seed);
        assert!(
            v.is_uniform_consensus(),
            "n={n} seed={seed} pattern={pattern:?}: {v:?}"
        );
    }
}

#[test]
fn marabout_algorithm_can_block_with_a_realistic_detector() {
    // The same algorithm run with a realistic Perfect oracle loses
    // liveness: the selected leader (lowest non-suspected at selection
    // time) may crash before sending; followers then wait forever —
    // the §6.1 trick only works because M sees the future.
    let n = 3;
    let pattern = FailurePattern::new(n).with_crash(ProcessId::new(0), Time::new(2));
    // Detection is slow enough that everyone picks p0 as leader first.
    let oracle = PerfectOracle::new(40, 0);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 3);
    let v = consensus_run::<MaraboutConsensus<u64>>(&pattern, &history, 3);
    assert!(
        v.termination.is_err(),
        "leader crashed pre-send, followers must block: {v:?}"
    );
}

#[test]
fn agreement_holds_across_many_seeds_and_patterns() {
    // A broader randomized sweep on the headline algorithm.
    let mut rng = StdRng::seed_from_u64(0xE7);
    let oracle = PerfectOracle::new(5, 4);
    for seed in 0..30u64 {
        let n = rng.gen_range(2..=8);
        let pattern = random_pattern(n, n - 1, &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let v = consensus_run::<FloodSetConsensus<u64>>(&pattern, &history, seed);
        assert!(v.uniform_agreement.is_ok(), "seed={seed}: {v:?}");
        assert!(v.validity.is_ok(), "seed={seed}: {v:?}");
    }
}
