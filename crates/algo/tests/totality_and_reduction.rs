//! Lemma 4.1 (totality) and Lemma 4.2 / Proposition 4.3 (the `T_{D⇒P}`
//! reduction), demonstrated end-to-end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfd_algo::consensus::{
    ConsensusAutomaton, FloodSetConsensus, RotatingConsensus, StrongConsensus,
};
use rfd_algo::reduction::PerfectEmulation;
use rfd_core::oracles::{EventuallyStrongOracle, Oracle, PerfectOracle};
use rfd_core::{class_report, CheckParams, ClassId, FailurePattern, ProcessId, Time};
use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};

const ROUNDS: u64 = 600;

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 100 + i).collect()
}

#[test]
fn strong_consensus_is_total_with_realistic_detector() {
    // Footnote 4: "the S-based consensus algorithm of [1] would be total
    // with a realistic failure detector." Every decision's causal chain
    // must contain every process not crashed at decision time.
    let mut rng = StdRng::seed_from_u64(0x41);
    let oracle = PerfectOracle::new(6, 3);
    for seed in 0..15u64 {
        let n = 5;
        let pattern = FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let props = proposals(n);
        let automata = ConsensusAutomaton::<StrongConsensus<u64>>::fleet(&props);
        let config = SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        assert_eq!(
            result.trace.check_totality(&pattern),
            Ok(()),
            "seed={seed} pattern={pattern:?}"
        );
    }
}

#[test]
fn floodset_consensus_is_total_with_realistic_detector() {
    let mut rng = StdRng::seed_from_u64(0x42);
    let oracle = PerfectOracle::new(6, 3);
    for seed in 0..15u64 {
        let n = 5;
        let pattern = FailurePattern::random(n, n - 1, Time::new(ROUNDS), &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let props = proposals(n);
        let automata = ConsensusAutomaton::<FloodSetConsensus<u64>>::fleet(&props);
        let config = SimConfig::new(seed, ROUNDS).with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        assert_eq!(
            result.trace.check_totality(&pattern),
            Ok(()),
            "seed={seed} pattern={pattern:?}"
        );
    }
}

#[test]
fn rotating_consensus_is_not_total() {
    // Footnote 4, other half: the ◇S algorithm consults only a majority.
    // Lemma 4.1's run R₁: delay every message from a correct process p₄
    // past the decision — the others decide without consulting it, so the
    // decision is non-total. (This is why ◇S escapes the reduction — it
    // needs a bounded f.)
    let n = 5;
    let pattern = FailurePattern::new(n); // failure-free: p4 is correct
    let oracle = EventuallyStrongOracle::new(8);
    let horizon = ticks_for_rounds(n, ROUNDS);
    let history = oracle.generate(&pattern, horizon, 0);
    let props = proposals(n);
    let hold = rfd_sim::Adversary::HoldFrom(ProcessId::new(4), horizon);
    let mut found_non_total = false;
    for seed in 0..20u64 {
        let automata = ConsensusAutomaton::<RotatingConsensus<u64>>::fleet(&props);
        let config = SimConfig::new(seed, ROUNDS)
            .with_adversary(hold.clone())
            .with_stop(StopCondition::EachCorrectOutput(1));
        let result = run(&pattern, &history, automata, &config);
        if !result.trace.events.is_empty() && result.trace.check_totality(&pattern).is_err() {
            found_non_total = true;
            break;
        }
    }
    assert!(
        found_non_total,
        "◇S consensus should exhibit a non-total decision within 20 seeds"
    );
}

#[test]
fn total_algorithms_block_rather_than_skip_a_silent_correct_process() {
    // Contrast with the above: under the same adversary, the *total*
    // S-based algorithm cannot decide — a realistic detector never
    // suspects the silent-but-correct p2, so every wait includes it.
    let n = 3;
    let pattern = FailurePattern::new(n);
    let oracle = PerfectOracle::new(6, 3);
    let horizon = ticks_for_rounds(n, ROUNDS);
    let history = oracle.generate(&pattern, horizon, 0);
    let props = proposals(n);
    let automata = ConsensusAutomaton::<StrongConsensus<u64>>::fleet(&props);
    let config = SimConfig::new(7, ROUNDS)
        .with_adversary(rfd_sim::Adversary::HoldFrom(ProcessId::new(2), horizon))
        .with_stop(StopCondition::EachCorrectOutput(1));
    let result = run(&pattern, &history, automata, &config);
    assert!(
        result.trace.events.is_empty(),
        "a total algorithm must consult p2 before deciding"
    );
}

/// Runs `T_{D⇒P}` over a total consensus core and checks the emulated
/// history against the `P` class predicates.
fn reduction_emulates_perfect(seed: u64, pattern: &FailurePattern) {
    let n = pattern.num_processes();
    let oracle = PerfectOracle::new(6, 3);
    let horizon = ticks_for_rounds(n, ROUNDS);
    let history = oracle.generate(pattern, horizon, seed);
    let automata = PerfectEmulation::<FloodSetConsensus<u64>>::fleet(n);
    let config = SimConfig::new(seed, ROUNDS);
    let result = run(pattern, &history, automata, &config);
    let emulated = result.emulated.expect("emulation must expose output(P)");
    // Check the emulated history over the portion of time the run
    // actually covered.
    let end = result.trace.end_time;
    let params = CheckParams::with_margin(end, end.ticks() / 10);
    let report = class_report(pattern, &emulated, &params);
    assert!(
        report.is_in(ClassId::Perfect),
        "seed={seed} pattern={pattern:?}\n completeness: {:?}\n accuracy: {:?}",
        report.strong_completeness,
        report.strong_accuracy
    );
    // Sanity: instances keep deciding (the emulation is live).
    for a in &result.automata {
        if pattern.correct().contains(ProcessId::new(
            result
                .automata
                .iter()
                .position(|x| core::ptr::eq(x, a))
                .unwrap(),
        )) {
            assert!(a.decisions() > 1, "correct processes run many instances");
        }
    }
}

#[test]
fn reduction_emulates_perfect_failure_free() {
    reduction_emulates_perfect(1, &FailurePattern::new(4));
}

#[test]
fn reduction_emulates_perfect_with_one_crash() {
    let pattern = FailurePattern::new(4).with_crash(ProcessId::new(2), Time::new(200));
    reduction_emulates_perfect(2, &pattern);
}

#[test]
fn reduction_emulates_perfect_with_many_crashes() {
    // Unbounded-failure environment: 3 of 5 crash, staggered.
    let pattern = FailurePattern::new(5)
        .with_crash(ProcessId::new(0), Time::new(150))
        .with_crash(ProcessId::new(3), Time::new(400))
        .with_crash(ProcessId::new(4), Time::new(700));
    reduction_emulates_perfect(3, &pattern);
}

#[test]
fn reduction_emulates_perfect_random_sweep() {
    let mut rng = StdRng::seed_from_u64(0x44);
    for seed in 0..8u64 {
        // Crashes early enough that post-crash instances fit in budget.
        let pattern = FailurePattern::random(4, 3, Time::new(800), &mut rng);
        reduction_emulates_perfect(seed, &pattern);
    }
}

#[test]
fn reduction_suspicions_are_monotone() {
    // §4.3: output(P) only ever grows (suspicions are never retracted).
    let pattern = FailurePattern::new(4)
        .with_crash(ProcessId::new(1), Time::new(100))
        .with_crash(ProcessId::new(3), Time::new(300));
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(4, ROUNDS), 5);
    let automata = PerfectEmulation::<StrongConsensus<u64>>::fleet(4);
    let result = run(&pattern, &history, automata, &SimConfig::new(5, ROUNDS));
    for ix in 0..4 {
        let pid = ProcessId::new(ix);
        let mut prev = rfd_core::ProcessSet::empty();
        for ev in result.trace.outputs_of(pid) {
            assert!(
                prev.is_subset(&ev.value),
                "{pid}: output(P) shrank from {prev} to {}",
                ev.value
            );
            prev = ev.value;
        }
    }
}

#[test]
fn completeness_booster_yields_strongly_complete_history() {
    // CT Fig. 1 over the weak-witness oracle: the boosted emulated
    // history must satisfy strong completeness (and keep strong accuracy,
    // since gossip only spreads real crashes and sender-cleansing only
    // removes provably-alive processes).
    use rfd_algo::reduction::CompletenessBooster;
    use rfd_core::oracles::WeakWitnessOracle;
    let n = 5;
    let rounds = 500u64;
    let oracle = WeakWitnessOracle::new(5);
    for (seed, pattern) in [
        (
            1u64,
            FailurePattern::new(n).with_crash(ProcessId::new(2), Time::new(100)),
        ),
        (
            2,
            FailurePattern::new(n)
                .with_crash(ProcessId::new(0), Time::new(80))
                .with_crash(ProcessId::new(4), Time::new(300)),
        ),
    ] {
        let history = oracle.generate(&pattern, ticks_for_rounds(n, rounds), seed);
        // The input history itself is NOT strongly complete...
        let in_params = CheckParams::with_margin(
            ticks_for_rounds(n, rounds),
            ticks_for_rounds(n, rounds).ticks() / 10,
        );
        let in_report = class_report(&pattern, &history, &in_params);
        assert!(
            in_report.strong_completeness.is_err(),
            "weak input expected"
        );
        // ...the boosted output is.
        let automata = CompletenessBooster::fleet(n, 4);
        let result = run(&pattern, &history, automata, &SimConfig::new(seed, rounds));
        let emulated = result.emulated.expect("boosted output");
        let end = result.trace.end_time;
        let params = CheckParams::with_margin(end, end.ticks() / 10);
        let report = class_report(&pattern, &emulated, &params);
        assert!(
            report.strong_completeness.is_ok(),
            "seed={seed}: {report:?}"
        );
        assert!(report.strong_accuracy.is_ok(), "seed={seed}: {report:?}");
        assert!(report.is_in(ClassId::Perfect), "seed={seed}");
    }
}
