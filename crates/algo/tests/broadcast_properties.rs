//! Atomic broadcast properties (§1.1: equivalent to consensus, hence `P`
//! suffices for any number of failures).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfd_algo::broadcast::{AtomicBroadcast, ReliableBroadcast};
use rfd_core::oracles::{Oracle, PerfectOracle};
use rfd_core::{FailurePattern, ProcessId, Time};
use rfd_sim::{run, ticks_for_rounds, SimConfig};

const ROUNDS: u64 = 3_000;

/// Collects each process's delivery sequence as `(origin, seq, value)`.
fn delivery_sequences(
    trace: &rfd_sim::Trace<rfd_algo::broadcast::AbDelivery<u64>>,
    n: usize,
) -> Vec<Vec<(usize, u64, u64)>> {
    let mut seqs: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); n];
    for ev in &trace.events {
        seqs[ev.process.index()].push((ev.value.origin.index(), ev.value.seq, ev.value.value));
    }
    seqs
}

fn is_prefix_of(a: &[(usize, u64, u64)], b: &[(usize, u64, u64)]) -> bool {
    a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

#[test]
fn atomic_broadcast_total_order_failure_free() {
    let n = 4;
    let pattern = FailurePattern::new(n);
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 0);
    let payloads: Vec<Vec<u64>> = (0..n as u64).map(|i| vec![i * 10, i * 10 + 1]).collect();
    let automata = AtomicBroadcast::fleet(payloads);
    let result = run(&pattern, &history, automata, &SimConfig::new(4, ROUNDS));
    let seqs = delivery_sequences(&result.trace, n);
    // Everyone delivers all 8 messages in the same total order.
    for ix in 0..n {
        assert_eq!(seqs[ix].len(), 2 * n, "p{ix} delivered {:?}", seqs[ix]);
        assert_eq!(seqs[ix], seqs[0], "total order violated at p{ix}");
    }
}

#[test]
fn atomic_broadcast_total_order_under_crashes() {
    let mut rng = StdRng::seed_from_u64(0xAB);
    let oracle = PerfectOracle::new(6, 3);
    for seed in 0..8u64 {
        let n = 4;
        let pattern = FailurePattern::random(n, n - 1, Time::new(400), &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), seed);
        let payloads: Vec<Vec<u64>> = (0..n as u64).map(|i| vec![i + 1]).collect();
        let automata = AtomicBroadcast::fleet(payloads);
        let result = run(&pattern, &history, automata, &SimConfig::new(seed, ROUNDS));
        let seqs = delivery_sequences(&result.trace, n);
        // Agreement on order: every pair of correct processes delivers
        // identical sequences; faulty prefixes must be prefixes of them.
        let correct: Vec<usize> = pattern
            .correct()
            .iter()
            .map(rfd_core::ProcessId::index)
            .collect();
        if let Some(&first) = correct.first() {
            for &ix in &correct {
                assert_eq!(
                    seqs[ix], seqs[first],
                    "seed={seed} pattern={pattern:?}: correct sequences differ"
                );
            }
            for ix in 0..n {
                if !correct.contains(&ix) {
                    assert!(
                        is_prefix_of(&seqs[ix], &seqs[first]),
                        "seed={seed}: faulty p{ix}'s deliveries {:?} not a prefix of {:?}",
                        seqs[ix],
                        seqs[first]
                    );
                }
            }
        }
    }
}

#[test]
fn atomic_broadcast_validity_correct_senders_get_delivered() {
    let n = 5;
    // p2 and p4 crash late enough to matter but their messages may still
    // make it; p0/p1/p3 are correct, so their messages MUST be delivered.
    let pattern = FailurePattern::new(n)
        .with_crash(ProcessId::new(2), Time::new(60))
        .with_crash(ProcessId::new(4), Time::new(90));
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 1);
    let payloads: Vec<Vec<u64>> = vec![vec![100], vec![200], vec![300], vec![400], vec![500]];
    let automata = AtomicBroadcast::fleet(payloads);
    let result = run(&pattern, &history, automata, &SimConfig::new(1, ROUNDS));
    let seqs = delivery_sequences(&result.trace, n);
    for correct_origin in [0usize, 1, 3] {
        let expected = (correct_origin as u64 + 1) * 100;
        for obs in pattern.correct() {
            assert!(
                seqs[obs.index()].iter().any(|(_, _, v)| *v == expected),
                "{obs} missing message {expected} from correct p{correct_origin}"
            );
        }
    }
}

#[test]
fn atomic_broadcast_no_duplication_no_creation() {
    let n = 3;
    let pattern = FailurePattern::new(n);
    let oracle = PerfectOracle::new(6, 3);
    let history = oracle.generate(&pattern, ticks_for_rounds(n, ROUNDS), 2);
    let payloads: Vec<Vec<u64>> = vec![vec![7, 8], vec![9], vec![]];
    let automata = AtomicBroadcast::fleet(payloads);
    let result = run(&pattern, &history, automata, &SimConfig::new(2, ROUNDS));
    let seqs = delivery_sequences(&result.trace, n);
    let legal: Vec<(usize, u64, u64)> = vec![(0, 0, 7), (0, 1, 8), (1, 0, 9)];
    for (ix, seq) in seqs.iter().enumerate() {
        // No creation...
        for d in seq {
            assert!(legal.contains(d), "p{ix} delivered fabricated {d:?}");
        }
        // ...no duplication.
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seq.len(), "p{ix} duplicated a delivery");
    }
}

#[test]
fn reliable_broadcast_agreement_under_random_crashes() {
    let mut rng = StdRng::seed_from_u64(0xB0);
    let oracle = PerfectOracle::new(6, 3);
    for seed in 0..10u64 {
        let n = 5;
        let pattern = FailurePattern::random(n, n - 1, Time::new(200), &mut rng);
        let history = oracle.generate(&pattern, ticks_for_rounds(n, 500), seed);
        let payloads: Vec<Vec<u64>> = (0..n as u64).map(|i| vec![i]).collect();
        let automata = ReliableBroadcast::fleet(payloads);
        let result = run(&pattern, &history, automata, &SimConfig::new(seed, 500));
        // Agreement: if any correct process delivered m, all correct did.
        let correct: Vec<usize> = pattern
            .correct()
            .iter()
            .map(rfd_core::ProcessId::index)
            .collect();
        let mut per_proc: Vec<Vec<u64>> = vec![Vec::new(); n];
        for ev in &result.trace.events {
            per_proc[ev.process.index()].push(ev.value.value);
        }
        for v in 0..n as u64 {
            let holders: Vec<usize> = correct
                .iter()
                .copied()
                .filter(|&ix| per_proc[ix].contains(&v))
                .collect();
            assert!(
                holders.is_empty() || holders.len() == correct.len(),
                "seed={seed} message {v}: delivered by {holders:?} of {correct:?}"
            );
        }
    }
}
