//! Wire-tag exhaustiveness: a new tag cannot ship half-wired.
//!
//! The tag constants in `codec.rs`'s `pub mod tags` are the single
//! source of truth. For every constant this pass requires agreement in
//! five places:
//!
//! 1. an encode site `put_u8(tags::NAME)`,
//! 2. a decode match arm `tags::NAME =>`,
//! 3. a `WireMsg` variant with the CamelCase name,
//! 4. a `WireView` variant with the CamelCase name (and both enums
//!    carry exactly one variant per tag),
//! 5. a row in the tag table of **every** checked markdown doc
//!    (ARCHITECTURE.md's summary table and docs/WIRE.md's reference)
//!    whose first cell lists the tag's numeric value (combined rows
//!    like `6 / 7` count for both).

use crate::lexer::strip;
use crate::{Violation, RULE_WIRE_TAGS};

/// Runs the five-place cross-check over the codec source and the given
/// markdown docs. `codec_file` and each doc's first element are display
/// labels; every doc must carry a tag table that lists exactly the
/// codec's tag values.
#[must_use]
pub fn check_tags(codec_file: &str, codec_src: &str, docs: &[(&str, &str)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let stripped = strip(codec_src);
    let tags = parse_tag_consts(&stripped);
    if tags.is_empty() {
        out.push(Violation {
            file: codec_file.to_owned(),
            line: 1,
            rule: RULE_WIRE_TAGS,
            message: "no `pub mod tags` constants found in codec".to_owned(),
        });
        return out;
    }
    let flat = normalize_ws(&stripped);
    for (name, _) in &tags {
        if !flat.contains(&format!("put_u8(tags::{name})")) {
            out.push(tag_violation(
                codec_file,
                format!("tag `{name}` has no encode site `put_u8(tags::{name})`"),
            ));
        }
        if !flat.contains(&format!("tags::{name} =>")) {
            out.push(tag_violation(
                codec_file,
                format!("tag `{name}` has no decode match arm `tags::{name} =>`"),
            ));
        }
    }
    for enum_name in ["WireMsg", "WireView"] {
        match enum_variants(&stripped, enum_name) {
            Some(variants) => {
                for (name, _) in &tags {
                    let want = camel_case(name);
                    if !variants.contains(&want) {
                        out.push(tag_violation(
                            codec_file,
                            format!("tag `{name}` has no `{enum_name}::{want}` variant"),
                        ));
                    }
                }
                if variants.len() != tags.len() {
                    out.push(tag_violation(
                        codec_file,
                        format!(
                            "`{enum_name}` has {} variants but there are {} tags",
                            variants.len(),
                            tags.len()
                        ),
                    ));
                }
            }
            None => out.push(tag_violation(
                codec_file,
                format!("enum `{enum_name}` not found in codec"),
            )),
        }
    }
    for (doc_file, doc_md) in docs {
        match doc_table_values(doc_md) {
            Some(documented) => {
                for (name, value) in &tags {
                    if !documented.contains(value) {
                        out.push(Violation {
                            file: (*doc_file).to_owned(),
                            line: 1,
                            rule: RULE_WIRE_TAGS,
                            message: format!(
                                "tag `{name}` = {value} is missing from the {doc_file} tag table"
                            ),
                        });
                    }
                }
                for value in &documented {
                    if !tags.iter().any(|(_, v)| v == value) {
                        out.push(Violation {
                            file: (*doc_file).to_owned(),
                            line: 1,
                            rule: RULE_WIRE_TAGS,
                            message: format!(
                                "{doc_file} documents tag {value}, which codec.rs does not define"
                            ),
                        });
                    }
                }
            }
            None => out.push(Violation {
                file: (*doc_file).to_owned(),
                line: 1,
                rule: RULE_WIRE_TAGS,
                message: format!("no tag table (header row containing `Tag`) found in {doc_file}"),
            }),
        }
    }
    out
}

fn tag_violation(file: &str, message: String) -> Violation {
    Violation {
        file: file.to_owned(),
        line: 1,
        rule: RULE_WIRE_TAGS,
        message,
    }
}

/// Extracts `(NAME, value)` pairs from `pub const NAME: u8 = N;` lines
/// inside the `mod tags { … }` block of stripped codec source.
fn parse_tag_consts(stripped: &str) -> Vec<(String, u8)> {
    let Some(mod_at) = stripped.find("mod tags") else {
        return Vec::new();
    };
    let body = &stripped[mod_at..];
    let Some(open) = body.find('{') else {
        return Vec::new();
    };
    let mut depth = 0usize;
    let mut end = body.len();
    for (ix, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + ix;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut tags = Vec::new();
    for line in body[open..end].lines() {
        let Some(after_const) = line.trim().strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, rest)) = after_const.split_once(':') else {
            continue;
        };
        let Some((_, value)) = rest.split_once('=') else {
            continue;
        };
        if let Ok(v) = value.trim().trim_end_matches(';').trim().parse::<u8>() {
            tags.push((name.trim().to_owned(), v));
        }
    }
    tags
}

/// Top-level variant names of `pub enum <name>` in stripped source.
/// Relies on rustfmt layout: each variant opens on its own line at
/// nesting depth 1 inside the enum braces.
fn enum_variants(stripped: &str, name: &str) -> Option<Vec<String>> {
    let decl_at = stripped.find(&format!("pub enum {name}"))?;
    let body = &stripped[decl_at..];
    let open = body.find('{')?;
    let mut depth = 0usize;
    let mut variants = Vec::new();
    let mut at_line_start_depth = None;
    for line in body[open..].lines() {
        let start_depth = depth;
        for c in line.chars() {
            match c {
                '{' | '(' | '[' => depth += 1,
                '}' | ')' | ']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if at_line_start_depth.is_none() {
            // First line holds the opening brace itself.
            at_line_start_depth = Some(());
            continue;
        }
        if start_depth == 1 {
            let trimmed = line.trim();
            if trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                let ident: String = trimmed
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                variants.push(ident);
            }
        }
        if depth == 0 {
            break;
        }
    }
    Some(variants)
}

/// `VIEW_CHANGE` → `ViewChange`.
fn camel_case(upper_snake: &str) -> String {
    upper_snake
        .split('_')
        .map(|word| {
            let mut cs = word.chars();
            match cs.next() {
                Some(first) => first.to_string() + cs.as_str().to_lowercase().as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// The numeric tag values documented in a markdown doc: all integers
/// in the first cell of each data row of the first table whose header
/// row contains a `Tag` cell.
fn doc_table_values(arch_md: &str) -> Option<Vec<u8>> {
    let mut lines = arch_md.lines();
    lines.find(|line| {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        line.trim_start().starts_with('|') && cells.contains(&"Tag")
    })?;
    let mut values = Vec::new();
    for line in lines {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            break;
        }
        let first_cell = trimmed
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("");
        if first_cell
            .trim()
            .chars()
            .all(|c| matches!(c, '-' | ':' | ' '))
        {
            continue; // the `|---|` separator row
        }
        for piece in first_cell.split(|c: char| !c.is_ascii_digit()) {
            if let Ok(v) = piece.parse::<u8>() {
                values.push(v);
            }
        }
    }
    Some(values)
}

fn normalize_ws(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = false;
    for c in text.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
            }
            in_ws = true;
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    out
}
