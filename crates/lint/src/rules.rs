//! The determinism and wire-safety rules: token/path pattern matching
//! over stripped source (see [`crate::lexer`]).

use crate::{Context, Violation, RULE_DETERMINISM, RULE_WIRE_SAFETY};

/// Substring patterns whose presence (token-boundary-checked) breaks
/// the determinism contract: iteration-order-nondeterministic
/// containers, wall-clock reads, real sleeps, and entropy-seeded RNGs.
const DETERMINISM_PATTERNS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is nondeterministic; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic; use BTreeSet",
    ),
    ("Instant::now", "wall-clock read outside clock.rs"),
    ("SystemTime::now", "wall-clock read outside clock.rs"),
    ("thread::sleep", "real sleep outside clock.rs"),
    ("thread_rng", "entropy-seeded RNG; use a seeded StdRng"),
    ("from_entropy", "entropy-seeded RNG; use a seeded StdRng"),
];

/// Substring patterns that can panic on attacker-controlled input in
/// datagram-facing modules.
const WIRE_PATTERNS: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "panics on malformed input; drop the frame instead",
    ),
    (
        ".expect(",
        "panics on malformed input; drop the frame instead",
    ),
    ("panic!", "reachable from an arbitrary datagram"),
    (
        "ProcessId::new(",
        "panics out-of-range; use ProcessId::try_new and drop the frame",
    ),
];

/// Scans one stripped source line for every rule active in `ctx`,
/// appending violations (1-indexed `lineno`) to `out`.
pub fn scan_line(file: &str, lineno: usize, line: &str, ctx: Context, out: &mut Vec<Violation>) {
    if ctx.determinism {
        for &(pat, why) in DETERMINISM_PATTERNS {
            if contains_token(line, pat) {
                out.push(Violation {
                    file: file.to_owned(),
                    line: lineno,
                    rule: RULE_DETERMINISM,
                    message: format!("`{pat}`: {why}"),
                });
            }
        }
    }
    if ctx.wire_safety {
        for &(pat, why) in WIRE_PATTERNS {
            if contains_token(line, pat) {
                out.push(Violation {
                    file: file.to_owned(),
                    line: lineno,
                    rule: RULE_WIRE_SAFETY,
                    message: format!("`{pat}`: {why}"),
                });
            }
        }
        if let Some(col) = find_indexing(line) {
            out.push(Violation {
                file: file.to_owned(),
                line: lineno,
                rule: RULE_WIRE_SAFETY,
                message: format!(
                    "unchecked slice indexing at column {}: panics out-of-bounds; \
                     use .get()/.get_mut() and drop the frame",
                    col + 1
                ),
            });
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Substring match with identifier boundaries on whichever ends of the
/// pattern are themselves identifier chars — so `HashMap` does not hit
/// `MyHashMapLike`, while `.unwrap()` matches exactly.
fn contains_token(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(pat) {
        let at = from + pos;
        let before_ok = !pat.chars().next().is_some_and(is_ident_char)
            || !line[..at].chars().next_back().is_some_and(is_ident_char);
        let after_ok = !pat.chars().next_back().is_some_and(is_ident_char)
            || !line[at + pat.len()..]
                .chars()
                .next()
                .is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Keywords that may legally precede `[` without forming an index
/// expression (slice patterns, array types, macro names and friends).
const NON_INDEX_WORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "true", "type", "union", "unsafe", "use",
    "where", "while",
];

/// Detects an index *expression*: a `[` whose preceding non-space token
/// is a call/index result (`)`, `]`) or an identifier that is not a
/// keyword. Array literals/types, slice patterns, attributes (`#[`) and
/// macros (`vec![`) all fail that test and pass the rule.
fn find_indexing(line: &str) -> Option<usize> {
    let chars: Vec<char> = line.chars().collect();
    for (col, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut k = col;
        while k > 0 && chars[k - 1] == ' ' {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        let prev = chars[k - 1];
        if prev == ')' || prev == ']' {
            return Some(col);
        }
        if is_ident_char(prev) {
            let mut start = k - 1;
            while start > 0 && is_ident_char(chars[start - 1]) {
                start -= 1;
            }
            if start > 0 && chars[start - 1] == '\'' {
                continue; // `&'a [u8]`: a lifetime, not an index base
            }
            let word: String = chars[start..k].iter().collect();
            if !NON_INDEX_WORDS.contains(&word.as_str()) {
                return Some(col);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_hits(line: &str) -> usize {
        let mut out = Vec::new();
        scan_line(
            "t.rs",
            1,
            line,
            Context {
                determinism: false,
                wire_safety: true,
            },
            &mut out,
        );
        out.len()
    }

    #[test]
    fn token_boundaries() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("struct MyHashMapLike;", "HashMap"));
        assert!(contains_token("x.unwrap()", ".unwrap()"));
        assert!(!contains_token("x.unwrap_or(0)", ".unwrap()"));
    }

    #[test]
    fn indexing_detection() {
        assert_eq!(wire_hits("let x = buf[0];"), 1);
        assert_eq!(wire_hits("let x = f()[1];"), 1);
        assert_eq!(wire_hits("m[0][1]"), 1);
        assert_eq!(wire_hits("let [a, b] = pair;"), 0);
        assert_eq!(wire_hits("let a: [u8; 4] = [0; 4];"), 0);
        assert_eq!(wire_hits("#[derive(Debug)]"), 0);
        assert_eq!(wire_hits("let v = vec![1, 2];"), 0);
        assert_eq!(wire_hits("for [a, b] in pairs {}"), 0);
    }
}
