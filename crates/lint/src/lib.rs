//! `rfd-lint`: the workspace's static-analysis pass.
//!
//! Every correctness claim this repro makes — the `=batch` gates, the
//! stream/online differential suites, per-seed reproducibility — rests
//! on invariants the compiler does not check: no wall-clock or entropy
//! leaks outside `clock.rs`, no iteration-order-nondeterministic
//! containers in simulated paths, and no panics reachable from an
//! arbitrary datagram. This crate machine-enforces them with a
//! hand-rolled lexer (comments and literals stripped, `#[cfg(test)]`
//! modules blanked) feeding token/path pattern rules — the same
//! self-contained spirit as the vendored `serde_derive`.
//!
//! Three rules (see ARCHITECTURE.md, "Determinism & wire-safety
//! invariants", for the full rationale):
//!
//! * [`RULE_DETERMINISM`] — forbids `HashMap`/`HashSet`, wall-clock
//!   reads, real sleeps and entropy-seeded RNGs outside the allowlist
//!   (`clock.rs`, `transport/udp.rs`, `crates/bench`,
//!   `vendor/criterion`).
//! * [`RULE_WIRE_SAFETY`] — forbids `.unwrap()`, `.expect(`, `panic!`,
//!   unchecked slice indexing and unchecked `ProcessId::new` in
//!   datagram-facing modules of `crates/net`.
//! * [`RULE_WIRE_TAGS`] — cross-checks the wire-tag constants against
//!   encode, decode, both view enums and the ARCHITECTURE.md tag table.
//!
//! Any single site can be waived with a trailing or preceding comment
//! `rfd-lint: allow(<rule>, <justification>)`; a waiver without a
//! justification is itself a violation ([`RULE_DIRECTIVE`]).
//!
//! Run as `cargo test -p rfd-lint` (the `workspace_is_clean` test) or
//! as the `rfd-lint` binary, which exits non-zero on violations.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod tags;
pub mod walk;

use std::fmt;
use std::fs;
use std::path::Path;

pub use tags::check_tags;
pub use walk::{source_files, workspace_root};

/// Rule id: deterministic-replay hazards (nondeterministic containers,
/// wall clocks, sleeps, entropy).
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule id: panics reachable from attacker-controlled datagrams.
pub const RULE_WIRE_SAFETY: &str = "wire-safety";
/// Rule id: wire-tag exhaustiveness across codec and docs.
pub const RULE_WIRE_TAGS: &str = "wire-tags";
/// Rule id: malformed escape-hatch directives.
pub const RULE_DIRECTIVE: &str = "directive";

/// One finding: a rule hit at a file/line, with an explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Display path (workspace-relative where possible).
    pub file: String,
    /// 1-indexed source line.
    pub line: usize,
    /// Which rule fired (one of the `RULE_*` ids).
    pub rule: &'static str,
    /// What matched and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule sets apply to a given file (decided by path; see
/// [`context_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Context {
    /// Determinism rule active (file is outside the clock/udp/bench
    /// allowlist).
    pub determinism: bool,
    /// Wire-safety rule active (file is datagram-facing).
    pub wire_safety: bool,
}

/// Paths (workspace-relative, `/`-separated) where the determinism rule
/// is waived wholesale: the two modules whose entire *job* is touching
/// the wall clock and the sockets, plus benchmark code.
const DETERMINISM_ALLOWLIST_FILES: &[&str] =
    &["crates/net/src/clock.rs", "crates/net/src/transport/udp.rs"];
const DETERMINISM_ALLOWLIST_PREFIXES: &[&str] = &["crates/bench/", "vendor/criterion/"];

/// Datagram-facing modules: everything that parses or routes bytes an
/// arbitrary peer controls.
const WIRE_FACING_FILES: &[&str] = &[
    "crates/net/src/codec.rs",
    "crates/net/src/membership.rs",
    "crates/net/src/detector.rs",
];
const WIRE_FACING_PREFIXES: &[&str] = &["crates/net/src/service/", "crates/net/src/transport/"];

/// Resolves which rules apply to a workspace-relative path.
#[must_use]
pub fn context_for(rel: &str) -> Context {
    let determinism = !DETERMINISM_ALLOWLIST_FILES.contains(&rel)
        && !DETERMINISM_ALLOWLIST_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p));
    let wire_safety =
        WIRE_FACING_FILES.contains(&rel) || WIRE_FACING_PREFIXES.iter().any(|p| rel.starts_with(p));
    Context {
        determinism,
        wire_safety,
    }
}

/// Lints one file's source under the rules its (workspace-relative)
/// path selects. This is the per-file half of the pass; the cross-file
/// tag check is [`check_tags`].
#[must_use]
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    let (allows, mut violations) = lexer::directives(rel, source);
    let ctx = context_for(rel);
    if !ctx.determinism && !ctx.wire_safety {
        return violations;
    }
    let prepared = lexer::blank_test_mods(&lexer::strip(source));
    let mut raw = Vec::new();
    for (ix, line) in prepared.lines().enumerate() {
        rules::scan_line(rel, ix + 1, line, ctx, &mut raw);
    }
    violations.extend(raw.into_iter().filter(|v| {
        !allows
            .iter()
            .any(|a| a.covers == v.line && a.rule == v.rule)
    }));
    violations
}

/// Lints the whole workspace rooted at `root`: every library source
/// tree (see [`source_files`]) plus the wire-tag cross-check between
/// `crates/net/src/codec.rs` and the two tag tables — ARCHITECTURE.md's
/// summary and the authoritative frame reference `docs/WIRE.md`.
#[must_use]
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for path in source_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(&path) {
            Ok(source) => violations.extend(lint_source(&rel, &source)),
            Err(err) => violations.push(Violation {
                file: rel,
                line: 1,
                rule: RULE_DIRECTIVE,
                message: format!("unreadable source file: {err}"),
            }),
        }
    }
    let codec_rel = "crates/net/src/codec.rs";
    let arch_rel = "ARCHITECTURE.md";
    let wire_rel = "docs/WIRE.md";
    let codec = fs::read_to_string(root.join(codec_rel)).unwrap_or_default();
    let arch = fs::read_to_string(root.join(arch_rel)).unwrap_or_default();
    let wire = fs::read_to_string(root.join(wire_rel)).unwrap_or_default();
    violations.extend(check_tags(
        codec_rel,
        &codec,
        &[(arch_rel, arch.as_str()), (wire_rel, wire.as_str())],
    ));
    violations
}
