//! Source preparation: reduce a Rust file to the text the rules may see.
//!
//! The rules are substring/token matchers, so everything that is *not*
//! executable library code must be blanked out first — otherwise a doc
//! example, an error-message string or a unit test would trip the wire
//! rules. Three passes:
//!
//! 1. [`strip`] blanks comments (line, nested block, doc) and the
//!    contents of string/char/byte literals (escapes, raw strings with
//!    any hash depth). Newlines are preserved so line numbers survive.
//! 2. [`blank_test_mods`] blanks `#[cfg(test)] mod … { … }` regions
//!    wholesale — test code is explicitly outside both rule sets.
//! 3. [`directives`] parses the escape-hatch comments from the *raw*
//!    source (they live in comments, which `strip` removes).

use crate::{Violation, RULE_DIRECTIVE};

/// Blanks comments and literal contents, preserving newlines and the
/// byte positions of everything else (blanked chars become spaces).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn strip(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out: Vec<char> = Vec::with_capacity(n);
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut prev_ident = false;
    let mut i = 0;
    while i < n {
        let c = chars[i];
        let c1 = chars.get(i + 1).copied();
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && c1 == Some('/') {
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        // Block comment; Rust block comments nest.
        if c == '/' && c1 == Some('*') {
            let mut depth = 1usize;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        // Only when the `r`/`b` starts a token (not inside `attr`, `br0`…).
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            let raw = chars.get(j) == Some(&'r');
            if raw {
                j += 1;
            }
            let mut hashes = 0usize;
            if raw {
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
            }
            if chars.get(j) == Some(&'"') && (raw || c == 'b') {
                for &prefix_char in chars.get(i..=j).unwrap_or_default() {
                    out.push(blank(prefix_char));
                }
                i = j + 1;
                if raw {
                    while i < n {
                        if chars[i] == '"' {
                            let mut h = 0usize;
                            while h < hashes && chars.get(i + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h == hashes {
                                out.resize(out.len() + hashes + 1, ' ');
                                i += 1 + hashes;
                                break;
                            }
                        }
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                } else {
                    scan_quoted(&chars, &mut i, &mut out, '"');
                }
                prev_ident = false;
                continue;
            }
            if c == 'b' && c1 == Some('\'') {
                out.push(' ');
                out.push(' ');
                i += 2;
                scan_quoted(&chars, &mut i, &mut out, '\'');
                prev_ident = false;
                continue;
            }
            // Plain identifier starting with r/b; fall through.
        }
        if c == '"' {
            out.push(' ');
            i += 1;
            scan_quoted(&chars, &mut i, &mut out, '"');
            prev_ident = false;
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime/label: `'x'` and `'\…'` are
            // literals; `'a`, `'static`, `'outer:` are not.
            let is_literal = c1 == Some('\\') || (c1.is_some() && chars.get(i + 2) == Some(&'\''));
            if is_literal {
                out.push(' ');
                i += 1;
                scan_quoted(&chars, &mut i, &mut out, '\'');
                prev_ident = false;
                continue;
            }
            out.push(c);
            prev_ident = false;
            i += 1;
            continue;
        }
        out.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    out.into_iter().collect()
}

/// Blanks chars up to and including the closing `quote`, honoring
/// backslash escapes. `i` sits just past the opening quote on entry.
fn scan_quoted(chars: &[char], i: &mut usize, out: &mut Vec<char>, quote: char) {
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while *i < chars.len() {
        if chars[*i] == '\\' {
            out.push(' ');
            *i += 1;
            if *i < chars.len() {
                out.push(blank(chars[*i]));
                *i += 1;
            }
            continue;
        }
        let done = chars[*i] == quote;
        out.push(blank(chars[*i]));
        *i += 1;
        if done {
            return;
        }
    }
}

/// Blanks every `#[cfg(test)] mod … { … }` region in already-stripped
/// text (brace matching is only safe once strings and comments are
/// gone). Attributes between the cfg and the `mod` keyword are blanked
/// with the region.
#[must_use]
pub fn blank_test_mods(stripped: &str) -> String {
    let mut chars: Vec<char> = stripped.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut i = 0;
    while i + needle.len() <= chars.len() {
        if chars[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + needle.len();
        // Skip whitespace and further attributes, then expect `mod`.
        loop {
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) == Some(&'#') && chars.get(j + 1) == Some(&'[') {
                let mut depth = 0usize;
                while j < chars.len() {
                    match chars[j] {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        let is_mod = chars.get(j..j + 3).is_some_and(|w| w == ['m', 'o', 'd'])
            && chars
                .get(j + 3)
                .is_some_and(|c| !c.is_alphanumeric() && *c != '_');
        if !is_mod {
            i += needle.len();
            continue;
        }
        // Brace-match from the module's opening brace.
        while j < chars.len() && chars[j] != '{' {
            j += 1;
        }
        let mut depth = 0usize;
        while j < chars.len() {
            match chars[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for c in chars.iter_mut().take(j).skip(start) {
            if *c != '\n' {
                *c = ' ';
            }
        }
        i = j;
    }
    chars.into_iter().collect()
}

/// One parsed escape-hatch directive: suppresses `rule` violations on
/// source line `covers` (1-indexed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The line the directive applies to: its own line for a trailing
    /// comment, the following line for a standalone comment line.
    pub covers: usize,
    /// The rule name being waived.
    pub rule: String,
}

// Built by concatenation so this file's own source never contains the
// contiguous marker and cannot be parsed as a directive.
const MARKER: &str = concat!("rfd-lint", ": ", "allow");

/// Parses the escape-hatch comments from raw source. A directive
/// without a justification is itself a violation — the whole point of
/// the hatch is that every waiver explains itself.
#[must_use]
pub fn directives(file: &str, source: &str) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut violations = Vec::new();
    for (ix, line) in source.lines().enumerate() {
        let lineno = ix + 1;
        let Some(comment_at) = line.find("//") else {
            continue;
        };
        let comment = &line[comment_at..];
        let Some(marker_at) = comment.find(MARKER) else {
            continue;
        };
        let rest = &comment[marker_at + MARKER.len()..];
        let covers = if line[..comment_at].trim().is_empty() {
            lineno + 1
        } else {
            lineno
        };
        let parsed = parse_allow_args(rest);
        match parsed {
            Some((rule, justification)) if !justification.is_empty() => {
                allows.push(Allow {
                    covers,
                    rule: rule.to_owned(),
                });
            }
            _ => violations.push(Violation {
                file: file.to_owned(),
                line: lineno,
                rule: RULE_DIRECTIVE,
                message: "malformed escape directive: expected \
                          `allow(<rule>, <justification>)` with a non-empty \
                          justification"
                    .to_owned(),
            }),
        }
    }
    (allows, violations)
}

/// Splits `(<rule>, <justification>)` out of the text following the
/// directive marker. Returns trimmed rule and justification.
fn parse_allow_args(rest: &str) -> Option<(&str, &str)> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.rfind(')')?;
    let body = &inner[..close];
    let comma = body.find(',')?;
    Some((body[..comma].trim(), body[comma + 1..].trim()))
}
