//! Workspace discovery: which files the pass runs over.
//!
//! The lint covers every library source tree — `crates/*/src`, the
//! root facade's `src/`, and the vendored subsets' `vendor/*/src` —
//! because a determinism leak in a vendored shim voids the experiment
//! table just as surely as one in first-party code. Tests, benches and
//! examples are *not* walked (and `#[cfg(test)]` modules inside walked
//! files are blanked): the invariants protect the simulated/online
//! runtime paths, not the harnesses that drive them.

use std::fs;
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's own manifest dir.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| manifest.to_path_buf(), Path::to_path_buf)
}

/// Every `.rs` file under the workspace's library source trees, sorted
/// for deterministic report order.
#[must_use]
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for group in ["crates", "vendor"] {
        let Ok(entries) = fs::read_dir(root.join(group)) else {
            continue;
        };
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);
    files.sort();
    files
}

fn collect_rs(dir: &Path, into: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, into);
        } else if path.extension().is_some_and(|e| e == "rs") {
            into.push(path);
        }
    }
}
