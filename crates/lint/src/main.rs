//! The `rfd-lint` binary: lints the whole workspace, prints findings,
//! exits non-zero if any. This is what CI runs before clippy.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = rfd_lint::workspace_root();
    let violations = rfd_lint::lint_workspace(&root);
    if violations.is_empty() {
        println!("rfd-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for violation in &violations {
        println!("{violation}");
    }
    eprintln!("rfd-lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
