//! The linter's own test battery: per-rule fixtures (one known-bad
//! snippet that must flag, one escaped/allowlisted snippet that must
//! pass), the wire-tag cross-check against doctored inputs, and the
//! acceptance gate — a whole-tree run asserting the live workspace is
//! clean.

use rfd_lint::{
    check_tags, lint_source, lint_workspace, workspace_root, RULE_DETERMINISM, RULE_DIRECTIVE,
    RULE_WIRE_SAFETY,
};
use std::fs;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture readable")
}

#[test]
fn determinism_fixture_is_flagged_per_pattern() {
    let violations = lint_source("crates/sim/src/fixture.rs", &fixture("determinism_bad.rs"));
    assert!(violations.iter().all(|v| v.rule == RULE_DETERMINISM));
    for pattern in [
        "HashMap",
        "HashSet",
        "Instant::now",
        "SystemTime::now",
        "thread::sleep",
        "thread_rng",
        "from_entropy",
    ] {
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains(&format!("`{pattern}`"))),
            "pattern {pattern} not flagged: {violations:?}"
        );
    }
}

#[test]
fn determinism_fixture_passes_on_allowlisted_paths() {
    let bad = fixture("determinism_bad.rs");
    for allowlisted in [
        "crates/net/src/clock.rs",
        "crates/net/src/transport/udp.rs",
        "crates/bench/src/fixture.rs",
        "vendor/criterion/src/fixture.rs",
    ] {
        let violations: Vec<_> = lint_source(allowlisted, &bad)
            .into_iter()
            .filter(|v| v.rule == RULE_DETERMINISM)
            .collect();
        assert!(
            violations.is_empty(),
            "allowlisted path {allowlisted} flagged: {violations:?}"
        );
    }
}

#[test]
fn determinism_escapes_suppress_every_hit() {
    let violations = lint_source(
        "crates/sim/src/fixture.rs",
        &fixture("determinism_escaped.rs"),
    );
    assert!(
        violations.is_empty(),
        "escaped fixture flagged: {violations:?}"
    );
}

#[test]
fn wire_fixture_is_flagged_per_pattern() {
    let violations = lint_source("crates/net/src/codec.rs", &fixture("wire_bad.rs"));
    assert!(violations.iter().all(|v| v.rule == RULE_WIRE_SAFETY));
    for needle in [
        "unchecked slice indexing",
        ".unwrap()",
        ".expect(",
        "panic!",
        "ProcessId::new(",
    ] {
        assert!(
            violations.iter().any(|v| v.message.contains(needle)),
            "wire pattern {needle} not flagged: {violations:?}"
        );
    }
}

#[test]
fn wire_fixture_passes_outside_datagram_facing_modules() {
    let violations: Vec<_> = lint_source("crates/algo/src/consensus.rs", &fixture("wire_bad.rs"))
        .into_iter()
        .filter(|v| v.rule == RULE_WIRE_SAFETY)
        .collect();
    assert!(
        violations.is_empty(),
        "non-wire path flagged: {violations:?}"
    );
}

#[test]
fn wire_escapes_suppress_every_hit() {
    let violations = lint_source("crates/net/src/membership.rs", &fixture("wire_escaped.rs"));
    assert!(
        violations.is_empty(),
        "escaped fixture flagged: {violations:?}"
    );
}

#[test]
fn unjustified_directives_are_violations() {
    let violations = lint_source("crates/sim/src/fixture.rs", &fixture("directive_bad.rs"));
    assert_eq!(
        violations.len(),
        2,
        "expected both malformed directives flagged: {violations:?}"
    );
    assert!(violations.iter().all(|v| v.rule == RULE_DIRECTIVE));
}

#[test]
fn comments_strings_and_test_mods_are_invisible() {
    let source = r##"
//! Module docs mentioning HashMap and Instant::now are fine.

/// So are doc examples with `x.unwrap()` and panic!.
fn describe() -> &'static str {
    "string literals with HashMap, thread_rng and payload[0] are data"
}

fn raw() -> &'static str {
    r#"raw strings with SystemTime::now are data too"#
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_unwrap_and_index() {
        let m: HashMap<u8, u8> = HashMap::new();
        let v = vec![1u8];
        assert_eq!(v[0], *m.get(&1).unwrap_or(&1));
        let x: Option<u8> = Some(1);
        x.unwrap();
    }
}
"##;
    let violations = lint_source("crates/net/src/codec.rs", source);
    assert!(
        violations.is_empty(),
        "non-code text flagged: {violations:?}"
    );
}

fn live(rel: &str) -> String {
    fs::read_to_string(workspace_root().join(rel)).expect("live file readable")
}

#[test]
fn tag_cross_check_is_clean_on_the_live_tree() {
    let arch = live("ARCHITECTURE.md");
    let wire = live("docs/WIRE.md");
    let violations = check_tags(
        "crates/net/src/codec.rs",
        &live("crates/net/src/codec.rs"),
        &[
            ("ARCHITECTURE.md", arch.as_str()),
            ("docs/WIRE.md", wire.as_str()),
        ],
    );
    assert!(
        violations.is_empty(),
        "live tag table drifted: {violations:?}"
    );
}

#[test]
fn tag_cross_check_fails_when_architecture_drifts() {
    // Renumber the Batch row: the doc now documents tag 99, which the
    // codec does not define, and stops documenting tag 8.
    let doctored = live("ARCHITECTURE.md").replace("| 8 | `Batch`", "| 99 | `Batch`");
    let violations = check_tags(
        "crates/net/src/codec.rs",
        &live("crates/net/src/codec.rs"),
        &[("ARCHITECTURE.md", doctored.as_str())],
    );
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("missing from")),
        "renumbered doc row not caught: {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("does not define")),
        "phantom doc tag not caught: {violations:?}"
    );
}

#[test]
fn tag_cross_check_fails_when_the_wire_reference_drifts() {
    // A clean ARCHITECTURE.md does not excuse a stale docs/WIRE.md: a
    // renumbered SnapshotReply row must flag against the wire reference.
    let arch = live("ARCHITECTURE.md");
    let doctored =
        live("docs/WIRE.md").replace("| 10 | `SnapshotReply`", "| 100 | `SnapshotReply`");
    let violations = check_tags(
        "crates/net/src/codec.rs",
        &live("crates/net/src/codec.rs"),
        &[
            ("ARCHITECTURE.md", arch.as_str()),
            ("docs/WIRE.md", doctored.as_str()),
        ],
    );
    assert!(
        violations
            .iter()
            .any(|v| v.file == "docs/WIRE.md" && v.message.contains("missing from")),
        "stale wire reference not caught: {violations:?}"
    );
    assert!(
        !violations.iter().any(|v| v.file == "ARCHITECTURE.md"),
        "the clean doc must not flag: {violations:?}"
    );
}

#[test]
fn tag_cross_check_fails_on_a_half_wired_tag() {
    let codec = live("crates/net/src/codec.rs");
    // Remove the decode arm for Batch: the tag still encodes, still has
    // enum variants, but can no longer be decoded.
    let doctored = codec.replace("tags::BATCH =>", "255 =>");
    assert_ne!(codec, doctored, "replacement target must exist");
    let arch = live("ARCHITECTURE.md");
    let violations = check_tags(
        "crates/net/src/codec.rs",
        &doctored,
        &[("ARCHITECTURE.md", arch.as_str())],
    );
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("no decode match arm")),
        "missing decode arm not caught: {violations:?}"
    );
}

/// The acceptance gate: the live workspace — every `crates/*/src`,
/// `vendor/*/src` and the facade `src/` — is clean under all rules.
#[test]
fn workspace_is_clean() {
    let violations = lint_workspace(&workspace_root());
    assert!(
        violations.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
