//! Known-bad fixture for the determinism rule: every forbidden pattern
//! appears once in token position. This file is test data, never
//! compiled — the lint test feeds it through `lint_source` under a
//! non-allowlisted virtual path.

use std::collections::HashMap;
use std::collections::HashSet;

fn sample() -> u64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let started = std::time::Instant::now();
    let stamp = std::time::SystemTime::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let mut rng = rand::thread_rng();
    let other = rand::rngs::StdRng::from_entropy();
    counts.len() as u64 + seen.len() as u64
}
