//! Fixture with malformed escape directives: one without any
//! justification argument, one with an empty justification. Both must
//! be flagged by the directive rule — an unexplained waiver is worse
//! than the violation it hides.

// rfd-lint: allow(determinism)
fn first() {}

fn second() {} // rfd-lint: allow(wire-safety, )
