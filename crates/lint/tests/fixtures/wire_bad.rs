//! Known-bad fixture for the wire-safety rule: every forbidden pattern
//! appears once. The lint test feeds it through `lint_source` under a
//! datagram-facing virtual path (and separately under a non-wire path,
//! where it must pass untouched).

fn on_frame(payload: &[u8]) -> u64 {
    let first = payload[0];
    let second = payload.get(1).unwrap();
    let parsed = core::str::from_utf8(payload).expect("utf8 frame");
    if parsed.is_empty() {
        panic!("malformed frame");
    }
    let sender = ProcessId::new(usize::from(first));
    u64::from(*second) + sender.index() as u64
}
