//! Escaped twin of `determinism_bad.rs`: the same forbidden patterns,
//! each waived by a justified escape directive — trailing on some
//! lines, standalone-above on others, to exercise both bindings. The
//! lint test asserts this file produces zero violations.

use std::collections::HashMap; // rfd-lint: allow(determinism, fixture exercises the trailing escape form)

fn sample() -> u64 {
    // rfd-lint: allow(determinism, fixture exercises the standalone escape form)
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let started = std::time::Instant::now(); // rfd-lint: allow(determinism, fixture wall-clock read is never executed)
    std::thread::sleep(std::time::Duration::from_millis(1)); // rfd-lint: allow(determinism, fixture sleep is never executed)
    // rfd-lint: allow(determinism, fixture RNG is never constructed)
    let mut rng = rand::thread_rng();
    counts.len() as u64
}
