//! Escaped twin of `wire_bad.rs`: the same forbidden patterns, each
//! waived with a justification. The lint test asserts zero violations
//! even under a datagram-facing virtual path.

fn on_frame(payload: &[u8]) -> u64 {
    let first = payload[0]; // rfd-lint: allow(wire-safety, fixture index is guarded by the caller's length check)
    let second = payload.get(1).unwrap(); // rfd-lint: allow(wire-safety, fixture unwrap follows an is_empty guard)
    if payload.is_empty() {
        // rfd-lint: allow(wire-safety, fixture panic is unreachable behind the guard)
        panic!("malformed frame");
    }
    // rfd-lint: allow(wire-safety, fixture id is driver-chosen and bounded)
    let sender = ProcessId::new(usize::from(first));
    u64::from(*second) + sender.index() as u64
}
