//! Wire-codec robustness: round-trip fidelity for every message kind,
//! and totality of `decode` under corruption — truncated, bit-flipped
//! or outright arbitrary datagrams must return an error (or a different
//! message), never panic and never over-allocate.

use proptest::prelude::*;
use rfd_algo::consensus::RotatingMsg;
use rfd_net::bytes::BytesMut;
use rfd_net::clock::Nanos;
use rfd_net::codec::{
    decode, decode_borrowed, encode, encode_batch_into, encoded_len, Command, ConsensusFrame,
    DecidedMsg, DecodeError, Heartbeat, SyncReply, SyncRequest, ViewChange, WireMsg,
    MAX_BATCH_FRAMES, MAX_SYNC_ENTRIES,
};

/// Builds one arbitrary wire message from a flattened parameter tuple
/// (the vendored proptest subset has no `prop_oneof`; a selector byte
/// plus generic scalars covers every variant and sub-variant).
fn wire_msg(selector: u8, a: u64, b: u64, wide: u128, entries: Vec<(u64, u64, u128)>) -> WireMsg {
    match selector % 7 {
        0 => WireMsg::Heartbeat(Heartbeat {
            sender: a as u16,
            seq: b,
            sent_at: Nanos::from_nanos(a ^ b),
        }),
        1 => WireMsg::ViewChange(ViewChange {
            view_id: a,
            members: wide,
        }),
        2 => WireMsg::Command(Command { value: a }),
        3 => WireMsg::Consensus(ConsensusFrame {
            slot: a,
            msg: match b % 5 {
                0 => RotatingMsg::Estimate {
                    r: b,
                    ts: a.wrapping_add(b),
                    v: wide as u64,
                },
                1 => RotatingMsg::Propose {
                    r: b,
                    v: wide as u64,
                },
                2 => RotatingMsg::Ack { r: b },
                3 => RotatingMsg::Nack { r: b },
                _ => RotatingMsg::Decide(wide as u64),
            },
        }),
        4 => WireMsg::Decided(DecidedMsg {
            index: a,
            view_id: b,
            view_members: wide,
            value: a.wrapping_mul(3),
        }),
        5 => WireMsg::SyncRequest(SyncRequest { from_index: a }),
        _ => WireMsg::SyncReply(SyncReply { start: a, entries }),
    }
}

proptest! {
    /// Every message survives an encode/decode round trip bit-exact.
    #[test]
    fn round_trip_is_identity(
        selector in 0u8..7,
        a in any::<u64>(),
        b in any::<u64>(),
        wide in any::<u128>(),
        entries in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u128>()), 0..=MAX_SYNC_ENTRIES),
    ) {
        let msg = wire_msg(selector, a, b, wide, entries);
        let encoded = encode(&msg);
        prop_assert_eq!(decode(&encoded), Ok(msg));
    }

    /// Decoding arbitrary bytes is total: it returns `Ok` or `Err`,
    /// never panics (the assertion is the call itself).
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..192),
    ) {
        let _ = decode(&bytes);
    }

    /// Every strict prefix of a valid datagram fails to decode — the
    /// formats carry no optional tail, so truncation is always caught.
    #[test]
    fn truncated_datagrams_are_rejected(
        selector in 0u8..7,
        a in any::<u64>(),
        b in any::<u64>(),
        wide in any::<u128>(),
        entries in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u128>()), 0..=MAX_SYNC_ENTRIES),
        cut in any::<usize>(),
    ) {
        let msg = wire_msg(selector, a, b, wide, entries);
        let encoded = encode(&msg);
        let cut = cut % encoded.len();
        prop_assert!(decode(&encoded[..cut]).is_err(), "prefix of {} bytes decoded", cut);
    }

    /// The zero-copy decoder agrees with the owned one on every valid
    /// datagram: `decode_borrowed(bytes).map(into_owned) == decode(bytes)`.
    #[test]
    fn borrowed_decode_matches_owned_on_valid_frames(
        selector in 0u8..7,
        a in any::<u64>(),
        b in any::<u64>(),
        wide in any::<u128>(),
        entries in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u128>()), 0..=MAX_SYNC_ENTRIES),
    ) {
        let msg = wire_msg(selector, a, b, wide, entries);
        let encoded = encode(&msg);
        let borrowed = decode_borrowed(&encoded).expect("valid frame").into_owned();
        prop_assert_eq!(&borrowed, &msg);
        prop_assert_eq!(decode(&encoded), Ok(borrowed));
        prop_assert_eq!(encoded.len(), encoded_len(&msg), "encoded_len must be exact");
    }

    /// ...and on arbitrary bytes the two decoders return the same
    /// verdict — same error, or the same message (total, no panics,
    /// including truncated/corrupt tag-8 batch frames).
    #[test]
    fn borrowed_decode_matches_owned_on_arbitrary_bytes(
        mut bytes in prop::collection::vec(any::<u8>(), 0..192),
        force_batch_tag in any::<bool>(),
    ) {
        // Half the cases get steered into the batch decoder: a valid
        // header with tag 8 and arbitrary garbage behind it.
        if force_batch_tag && bytes.len() >= 3 {
            bytes[0] = 0xFD;
            bytes[1] = 0x02;
            bytes[2] = 8;
        }
        let owned = decode(&bytes);
        let borrowed = decode_borrowed(&bytes).map(rfd_net::codec::WireView::into_owned);
        prop_assert_eq!(owned, borrowed);
    }

    /// A coalesced batch is observationally identical to the singleton
    /// frame sequence it packs: decoding yields the same sub-messages in
    /// order, and the slice-based batch encoder produces byte-identical
    /// output to encoding the equivalent `WireMsg::Batch`.
    #[test]
    fn batch_equals_its_singleton_sequence(
        selectors in prop::collection::vec((0u8..7, any::<u64>(), any::<u64>(), any::<u128>()), 0..8),
    ) {
        let frames: Vec<WireMsg> = selectors
            .into_iter()
            .map(|(s, a, b, wide)| wire_msg(s, a, b, wide, Vec::new()))
            .collect();
        prop_assert!(frames.len() <= MAX_BATCH_FRAMES);
        let mut via_slice = BytesMut::new();
        encode_batch_into(&frames, &mut via_slice);
        let via_owned = encode(&WireMsg::Batch(frames.clone()));
        prop_assert_eq!(&via_slice[..], &via_owned[..]);
        match decode(&via_owned) {
            Ok(WireMsg::Batch(decoded)) => prop_assert_eq!(decoded, frames),
            other => prop_assert!(false, "batch decoded to {:?}", other),
        }
        // The singleton encodings survive inside the batch bit-exact:
        // decoding each sub-frame individually equals direct encoding.
        let view = decode_borrowed(&via_owned).expect("valid batch");
        let sub: Vec<WireMsg> = match view {
            rfd_net::codec::WireView::Batch(batch) => batch.iter().map(rfd_net::codec::WireView::into_owned).collect(),
            other => { prop_assert!(false, "borrowed batch decoded to {:?}", other); unreachable!() }
        };
        for (msg, direct) in sub.iter().zip(&frames) {
            prop_assert_eq!(msg, direct);
        }
    }

    /// A flipped byte never panics the decoder and never decodes back
    /// to the original message (every encoded byte is load-bearing).
    #[test]
    fn bit_flips_never_panic_or_alias(
        selector in 0u8..7,
        a in any::<u64>(),
        b in any::<u64>(),
        wide in any::<u128>(),
        entries in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u128>()), 0..=MAX_SYNC_ENTRIES),
        position in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let msg = wire_msg(selector, a, b, wide, entries);
        let mut corrupted = encode(&msg).to_vec();
        let position = position % corrupted.len();
        corrupted[position] ^= mask;
        match decode(&corrupted) {
            Ok(other) => prop_assert_ne!(other, msg, "corruption at byte {} went unnoticed", position),
            Err(DecodeError::Truncated | DecodeError::Malformed) => {}
        }
    }
}

/// Deterministic spot checks of the corruption classes the properties
/// sweep (kept as plain tests so a regression names the exact case).
#[test]
fn corrupt_magic_and_tag_are_malformed() {
    let msg = WireMsg::SyncRequest(SyncRequest { from_index: 4 });
    let good = encode(&msg);
    let mut bad_magic = good.to_vec();
    bad_magic[0] ^= 0xFF;
    assert_eq!(decode(&bad_magic), Err(DecodeError::Malformed));
    let mut bad_tag = good.to_vec();
    bad_tag[2] = 0xEE;
    assert_eq!(decode(&bad_tag), Err(DecodeError::Malformed));
}

#[test]
fn consensus_frame_with_unknown_kind_is_malformed() {
    let good = encode(&WireMsg::Consensus(ConsensusFrame {
        slot: 1,
        msg: RotatingMsg::Ack { r: 0 },
    }));
    let mut bad = good.to_vec();
    bad[11] = 9; // kind byte after magic(2) + tag(1) + slot(8)
    assert_eq!(decode(&bad), Err(DecodeError::Malformed));
}
