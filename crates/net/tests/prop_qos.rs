//! Property tests pinning down the QoS accounting semantics:
//!
//! 1. [`QosTracker::finalize`] against a **brute-force per-tick
//!    reference** over random episode/crash layouts — the reference
//!    reconstructs the suspicion signal tick by tick and counts mistake
//!    time and episodes directly, with none of the interval-clipping
//!    logic of the implementation. This pins the crash-straddling and
//!    open-episode edge cases.
//! 2. [`QosMonitor`] (the incremental online monitor) against
//!    [`QosTracker::finalize`] — **exact** equality, every field,
//!    floating point compared bitwise.

use proptest::prelude::*;
use rfd_net::clock::Nanos;
use rfd_net::qos::{QosMonitor, QosTracker};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

/// Turns `(gap, suspect)` pairs into a non-decreasing sample schedule
/// (gap 0 keeps the previous timestamp — same-tick flips are legal).
fn schedule(flips: &[(u64, bool)]) -> Vec<(u64, bool)> {
    let mut t = 0u64;
    flips
        .iter()
        .map(|&(gap, s)| {
            t += gap;
            (t, s)
        })
        .collect()
}

/// Brute-force per-tick reference for the Chen–Toueg–Aguilera
/// accounting, at 1 ms tick granularity:
/// `(detection_time_ms, mistakes, mistake_time_ms, longest_mistake_ms)`.
fn per_tick_reference(
    samples: &[(u64, bool)],
    crash: Option<u64>,
    end: u64,
) -> (Option<u64>, u32, u64, u64) {
    let horizon = crash.unwrap_or(end).min(end);
    // Reconstruct the suspicion signal: the verdict at tick t is the
    // last sample at or before t (trusting before any sample).
    let mut suspect = vec![false; end as usize];
    let mut idx = 0;
    let mut state = false;
    for (t, cell) in suspect.iter_mut().enumerate() {
        while idx < samples.len() && samples[idx].0 <= t as u64 {
            state = samples[idx].1;
            idx += 1;
        }
        *cell = state;
    }
    // Mistake time: suspected ticks before the truth horizon (the
    // pre-crash part of the final detection counts too — exactly what
    // the interval clipping is supposed to compute).
    let mistake_time = (0..horizon.min(end))
        .filter(|&t| suspect[t as usize])
        .count() as u64;
    // Maximal suspect-runs.
    let mut runs: Vec<(u64, u64)> = Vec::new(); // [start, end) in ticks
    let mut t = 0u64;
    while t < end {
        if suspect[t as usize] {
            let start = t;
            while t < end && suspect[t as usize] {
                t += 1;
            }
            runs.push((start, t));
        } else {
            t += 1;
        }
    }
    let mut mistakes = 0u32;
    let mut longest = 0u64;
    let mut detection = None;
    for &(s, e) in &runs {
        let is_final_open = e == end;
        match crash {
            Some(c) if is_final_open && end >= c => {
                // The permanent suspicion covering the crash.
                detection = Some(s.saturating_sub(c));
                if s < c {
                    mistakes += 1;
                    longest = longest.max(c - s);
                }
            }
            _ => {
                if s < horizon {
                    mistakes += 1;
                    longest = longest.max(e.min(horizon) - s);
                }
            }
        }
    }
    (detection, mistakes, mistake_time, longest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tracker's interval-clipping arithmetic agrees with counting
    /// ticks, over arbitrary flip schedules, crash placements (before,
    /// inside, after, or beyond the observation), and open episodes.
    /// Sample times are strictly increasing here: a same-instant
    /// close-and-reopen is a zero-duration trust that a tick signal
    /// cannot represent (the tracker counts it as two episodes; the
    /// monitor-equality tests below cover that degenerate case).
    #[test]
    fn finalize_matches_the_per_tick_reference(
        flips in prop::collection::vec((1u64..40, any::<bool>()), 0..30),
        crash_sel in prop::option::of(0u64..500),
        end_slack in 1u64..60,
    ) {
        let samples = schedule(&flips);
        let last = samples.last().map_or(0, |&(t, _)| t);
        let end = last + end_slack;
        let crash = crash_sel; // may fall anywhere, including past `end`
        let mut tracker = QosTracker::new();
        for &(t, s) in &samples {
            tracker.sample(ms(t), s);
        }
        let report = tracker.finalize(crash.map(ms), ms(end));
        let (det, mistakes, mistake_time, longest) = per_tick_reference(&samples, crash, end);
        prop_assert_eq!(report.detection_time, det.map(ms),
            "detection: samples {:?} crash {:?} end {}", samples, crash, end);
        prop_assert_eq!(report.mistakes, mistakes,
            "mistakes: samples {:?} crash {:?} end {}", samples, crash, end);
        prop_assert_eq!(report.longest_mistake, ms(longest),
            "longest_M: samples {:?} crash {:?} end {}", samples, crash, end);
        let expected_avg = if mistakes > 0 {
            Nanos::from_nanos(ms(mistake_time).as_nanos() / u64::from(mistakes))
        } else {
            Nanos::ZERO
        };
        prop_assert_eq!(report.avg_mistake_duration, expected_avg,
            "T_M: samples {:?} crash {:?} end {}", samples, crash, end);
        let horizon = crash.unwrap_or(end).min(end);
        let expected_accuracy = if horizon > 0 {
            1.0 - ms(mistake_time).as_nanos() as f64 / ms(horizon).as_nanos() as f64
        } else {
            1.0
        };
        prop_assert!((report.query_accuracy - expected_accuracy).abs() < 1e-12,
            "P_A: {} vs {}", report.query_accuracy, expected_accuracy);
    }

    /// The incremental monitor equals the batch tracker **exactly** on
    /// identical sample streams: same detection time, same episode
    /// count, bitwise-equal rates. This is the equality experiment E11
    /// relies on.
    #[test]
    fn monitor_equals_tracker_exactly(
        flips in prop::collection::vec((0u64..40, any::<bool>()), 0..40),
        crash_sel in prop::option::of(0u64..600),
        end_slack in 0u64..60,
    ) {
        let samples = schedule(&flips);
        let last = samples.last().map_or(0, |&(t, _)| t);
        let end = last + end_slack; // observation ends at or after the last sample
        let crash = crash_sel.map(ms);
        let mut tracker = QosTracker::new();
        let mut monitor = QosMonitor::new(crash);
        for &(t, s) in &samples {
            tracker.sample(ms(t), s);
            monitor.sample(ms(t), s);
        }
        let batch = tracker.finalize(crash, ms(end));
        let live = monitor.report(ms(end));
        prop_assert_eq!(live.detection_time, batch.detection_time);
        prop_assert_eq!(live.mistakes, batch.mistakes);
        prop_assert_eq!(live.avg_mistake_duration, batch.avg_mistake_duration);
        prop_assert_eq!(live.longest_mistake, batch.longest_mistake,
            "longest_M: samples {:?} crash {:?} end {}", samples, crash, end);
        prop_assert_eq!(live.mistake_rate.to_bits(), batch.mistake_rate.to_bits(),
            "λ_M: {} vs {}", live.mistake_rate, batch.mistake_rate);
        prop_assert_eq!(live.query_accuracy.to_bits(), batch.query_accuracy.to_bits(),
            "P_A: {} vs {}", live.query_accuracy, batch.query_accuracy);
    }

    /// Mid-stream monotonicity: the monitor's mistake count and time
    /// never decrease as samples arrive, and every prefix report equals
    /// finalizing that prefix.
    #[test]
    fn monitor_prefixes_equal_prefix_finalize(
        flips in prop::collection::vec((1u64..40, any::<bool>()), 1..20),
        crash_sel in prop::option::of(0u64..400),
    ) {
        let samples = schedule(&flips);
        let crash = crash_sel.map(ms);
        let mut monitor = QosMonitor::new(crash);
        let mut last_mistakes = 0u32;
        let mut last_longest = Nanos::ZERO;
        for i in 0..samples.len() {
            let (t, s) = samples[i];
            monitor.sample(ms(t), s);
            let live = monitor.report(ms(t));
            let mut tracker = QosTracker::new();
            for &(pt, ps) in &samples[..=i] {
                tracker.sample(ms(pt), ps);
            }
            let batch = tracker.finalize(crash, ms(t));
            prop_assert_eq!(live.mistakes, batch.mistakes, "prefix {}", i);
            prop_assert_eq!(live.detection_time, batch.detection_time, "prefix {}", i);
            prop_assert_eq!(live.avg_mistake_duration, batch.avg_mistake_duration,
                "prefix {}", i);
            prop_assert_eq!(live.longest_mistake, batch.longest_mistake, "prefix {}", i);
            prop_assert!(live.mistakes >= last_mistakes, "mistakes must be monotone");
            prop_assert!(live.longest_mistake >= last_longest,
                "the mistake tail must be monotone");
            last_mistakes = live.mistakes;
            last_longest = live.longest_mistake;
        }
    }
}
