//! Property-based tests on the runtime: estimator laws, codec
//! roundtrips, QoS tracker accounting, virtual network conservation.

use bytes::Bytes;
use proptest::prelude::*;
use rfd_core::ProcessId;
use rfd_net::clock::{Nanos, VirtualClock};
use rfd_net::codec::{decode, encode, Heartbeat, ViewChange, WireMsg};
use rfd_net::estimator::{
    ArrivalEstimator, ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual,
};
use rfd_net::qos::QosTracker;
use rfd_net::transport::{InMemoryNetwork, NetworkConfig, Transport};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

/// Strictly increasing arrival times from positive gaps.
fn arrivals(gaps: Vec<u64>) -> Vec<Nanos> {
    let mut t = 0u64;
    gaps.into_iter()
        .map(|g| {
            t += g.max(1);
            ms(t)
        })
        .collect()
}

fn estimators() -> Vec<Box<dyn ArrivalEstimator>> {
    vec![
        Box::new(FixedTimeout::new(ms(300))),
        Box::new(ChenEstimator::new(ms(60), 16, ms(400))),
        Box::new(JacobsonEstimator::new(4.0, ms(400))),
        Box::new(PhiAccrual::new(3.0, 16, ms(400))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Law: after any arrival sequence, a long-enough silence makes every
    /// estimator suspect, and the suspicion level is monotone in silence.
    #[test]
    fn silence_eventually_suspects(gaps in prop::collection::vec(1u64..400, 1..30)) {
        let times = arrivals(gaps);
        let last = *times.last().unwrap();
        for mut est in estimators() {
            for &t in &times {
                est.observe(t);
            }
            // One hour of silence beats any adaptive deadline here.
            let far = last.saturating_add(ms(3_600_000));
            prop_assert!(est.is_suspect(far), "{} never suspects", est.name());
            let lvl_near = est.suspicion_level(last.saturating_add(ms(1)));
            let lvl_far = est.suspicion_level(far);
            prop_assert!(lvl_far >= lvl_near, "{} level not monotone", est.name());
        }
    }

    /// Law: a fresh heartbeat un-suspects (trust is restorable).
    #[test]
    fn fresh_heartbeat_restores_trust(gaps in prop::collection::vec(1u64..400, 2..30)) {
        let times = arrivals(gaps);
        let last = *times.last().unwrap();
        for mut est in estimators() {
            for &t in &times {
                est.observe(t);
            }
            let far = last.saturating_add(ms(3_600_000));
            prop_assert!(est.is_suspect(far));
            est.observe(far);
            prop_assert!(
                !est.is_suspect(far.saturating_add(ms(1))),
                "{} stays suspicious after a heartbeat",
                est.name()
            );
        }
    }

    /// Deadlines never precede the last arrival.
    #[test]
    fn deadline_is_after_last_arrival(gaps in prop::collection::vec(1u64..400, 1..30)) {
        let times = arrivals(gaps);
        let last = *times.last().unwrap();
        for mut est in estimators() {
            for &t in &times {
                est.observe(t);
            }
            if let Some(d) = est.deadline() {
                prop_assert!(d >= last, "{}: deadline {d} before last arrival {last}", est.name());
            }
        }
    }

    // ---------- codec ----------

    #[test]
    fn heartbeat_roundtrips(sender in 0u16..128, seq in any::<u64>(), at in any::<u64>()) {
        let msg = WireMsg::Heartbeat(Heartbeat {
            sender,
            seq,
            sent_at: Nanos::from_nanos(at),
        });
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn view_change_roundtrips(view_id in any::<u64>(), members in any::<u128>()) {
        let msg = WireMsg::ViewChange(ViewChange { view_id, members });
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn decoder_never_panics_on_junk(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode(&data);
    }

    #[test]
    fn truncated_encodings_are_rejected(sender in 0u16..128, cut in 0usize..18) {
        let msg = WireMsg::Heartbeat(Heartbeat { sender, seq: 1, sent_at: ms(1) });
        let full = encode(&msg);
        let cut = cut.min(full.len().saturating_sub(1));
        prop_assert!(decode(&full[..cut]).is_err());
    }

    // ---------- QoS tracker ----------

    /// Accounting: query accuracy is in [0,1]; mistakes count the number
    /// of false episodes; with no suspicion samples there are none.
    #[test]
    fn qos_tracker_accounting(
        flips in prop::collection::vec((1u64..1_000, any::<bool>()), 0..40)
    ) {
        let mut tracker = QosTracker::new();
        let mut t = 0u64;
        let mut suspected_any = false;
        for (gap, s) in flips {
            t += gap;
            tracker.sample(ms(t), s);
            suspected_any |= s;
        }
        let end = ms(t + 1_000);
        let report = tracker.finalize(None, end);
        prop_assert!((0.0..=1.0).contains(&report.query_accuracy));
        prop_assert!(report.mistake_rate >= 0.0);
        if !suspected_any {
            prop_assert_eq!(report.mistakes, 0);
            prop_assert!(report.query_accuracy > 0.999);
        }
    }

    // ---------- virtual network ----------

    /// Conservation: sent = lost + delivered + still-in-flight; with the
    /// clock advanced far enough, in-flight drains to zero (no down
    /// nodes).
    #[test]
    fn network_conserves_datagrams(
        sends in prop::collection::vec((0usize..3, 0usize..3), 0..60),
        loss in 0u32..50,
        seed in any::<u64>()
    ) {
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(ms(1), ms(8))
            .with_loss(f64::from(loss) / 100.0)
            .with_seed(seed);
        let net = InMemoryNetwork::new(3, config, clock.clone());
        let endpoints: Vec<_> = (0..3).map(|i| net.endpoint(ProcessId::new(i))).collect();
        for (from, to) in &sends {
            endpoints[*from].send(ProcessId::new(*to), Bytes::from_static(b"x"));
        }
        clock.advance(ms(1_000));
        let mut received = 0u64;
        for e in &endpoints {
            while e.recv().is_some() {
                received += 1;
            }
        }
        let (sent, lost, delivered) = net.stats();
        prop_assert_eq!(sent, sends.len() as u64);
        prop_assert_eq!(lost + delivered, sent);
        prop_assert_eq!(received, delivered);
    }
}
