//! Differential test: the **online** `DecisionService` (live heartbeat
//! membership emulating `P`, message-passing consensus over a seeded
//! virtual network) against the **batch** `rfd_algo` path (the same
//! rotating-coordinator core in the lock-step simulator under an oracle
//! `P` history).
//!
//! Contract — the E13 acceptance gate, mirroring PR 2's
//! `monitor_matches_batch` pattern one layer up: for the same command
//! workload and the same fault pattern, the online service's decided
//! sequence equals the batch algorithm's output, slot by slot, for
//! every estimator × schedule cell; and the online sequence reproduces
//! bit-for-bit per seed.

//!
//! A second differential axis pins the weather DSL's zero-cost claim:
//! a [`Weather`]-wrapped fleet with every fault plane disabled must
//! produce the **bit-identical** decision and QoS timelines of the
//! plain `FaultyTransport` path for the same seed — the DSL is a
//! strict superset of the bare substrate, not a fork of it.

use rfd_algo::consensus::{ConsensusAutomaton, RotatingConsensus};
use rfd_core::oracles::{Oracle, PerfectOracle};
use rfd_core::{FailurePattern, ProcessId, ProcessSet, Time};
use rfd_net::clock::{Nanos, VirtualClock};
use rfd_net::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator};
use rfd_net::online::{reports_equal, Fault, FaultSchedule, OnlineRunner, OnlineScenario};
use rfd_net::service::{run_service, ServiceRunner, ServiceScenario};
use rfd_net::transport::{
    Endpoint, FaultInjector, FaultyTransport, InMemoryNetwork, NetworkConfig,
};
use rfd_net::weather::{weather_online_runner, weather_service_runner, Weather};
use rfd_net::ArrivalEstimator;
use rfd_sim::{run, ticks_for_rounds, SimConfig, StopCondition};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

const N: usize = 4;

/// One differential cell: the fault schedule, the nodes clients may
/// talk to (kept clear of crashed/partitioned submitters so every
/// command is decidable in submission order), and heal-merge policy.
struct Cell {
    name: &'static str,
    schedule: FaultSchedule,
    clients: &'static [usize],
    heal_merge: bool,
    duration_ms: u64,
}

fn cells() -> Vec<Cell> {
    vec![
        Cell {
            name: "steady",
            schedule: FaultSchedule::new(),
            clients: &[0, 1, 2, 3],
            heal_merge: false,
            duration_ms: 22_000,
        },
        Cell {
            name: "coordinator crash",
            schedule: FaultSchedule::new().at(ms(6_500), Fault::Crash(p(0))),
            clients: &[1, 2, 3],
            heal_merge: false,
            duration_ms: 30_000,
        },
        Cell {
            name: "minority cut + heal",
            schedule: FaultSchedule::new()
                .at(ms(5_000), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(13_000), Fault::Heal),
            clients: &[0, 1, 2],
            heal_merge: true,
            duration_ms: 30_000,
        },
    ]
}

/// The command workload of a cell: values increasing in submission
/// order, spaced far enough apart that each decision lands (even
/// through an exclusion window) before the next command exists.
fn workload(cell: &Cell, seed: u64) -> ServiceScenario {
    let mut scenario = ServiceScenario {
        online: OnlineScenario {
            n: N,
            duration: ms(cell.duration_ms),
            seed,
            heal_merge: cell.heal_merge,
            schedule: cell.schedule.clone(),
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    };
    for i in 0..6u64 {
        let client = cell.clients[(i as usize) % cell.clients.len()];
        scenario = scenario.command(ms(1_000 + i * 2_500), p(client), 100 + i);
    }
    scenario
}

/// The batch reference: one `rfd_algo` rotating-coordinator run per log
/// slot, in the lock-step simulator under a Perfect oracle history —
/// every process proposes the slot's command (the same state the online
/// gossip reaches before each spaced submission's instance runs), with
/// the processes already crashed at submission time crashed in the
/// pattern. Returns the decided sequence.
fn batch_reference(cell: &Cell, commands: &[u64], submit_ms: &[u64]) -> Vec<u64> {
    let rounds = 400;
    commands
        .iter()
        .zip(submit_ms)
        .map(|(&value, &at)| {
            let mut pattern = FailurePattern::new(N);
            for ix in 0..N {
                if let Some(crash) = cell.schedule.final_crash(p(ix)) {
                    if crash.as_millis() <= at {
                        pattern = pattern.with_crash(p(ix), Time::new(1));
                    }
                }
            }
            let oracle = PerfectOracle::new(6, 2);
            let history = oracle.generate(&pattern, ticks_for_rounds(N, rounds), 11);
            let proposals = vec![value; N];
            let automata = ConsensusAutomaton::<RotatingConsensus<u64>>::fleet(&proposals);
            let config = SimConfig::new(5, rounds).with_stop(StopCondition::EachCorrectOutput(1));
            let result = run(&pattern, &history, automata, &config);
            let mut decisions = result.trace.events.iter().map(|e| e.value);
            let first = decisions.next().expect("the batch run decides");
            assert!(
                decisions.all(|d| d == first),
                "batch agreement violated in the reference itself"
            );
            first
        })
        .collect()
}

fn assert_cell_matches<E: ArrivalEstimator + Clone>(estimator: E, est_name: &str, cell: &Cell) {
    let scenario = workload(cell, 7);
    let commands: Vec<u64> = scenario.commands.iter().map(|(_, _, v)| *v).collect();
    let submit_ms: Vec<u64> = scenario
        .commands
        .iter()
        .map(|(at, _, _)| at.as_millis())
        .collect();

    let online = run_service(estimator.clone(), &scenario);
    assert!(
        online.agreement_holds(),
        "[{est_name}/{}] logs fork",
        cell.name
    );
    assert!(
        online.live_logs_converged(),
        "[{est_name}/{}] live logs diverge: {:?}",
        cell.name,
        online.logs
    );
    let online_seq = online.decided_values();
    assert_eq!(
        online_seq.len(),
        commands.len(),
        "[{est_name}/{}] not every command decided: {online_seq:?}",
        cell.name
    );

    let batch_seq = batch_reference(cell, &commands, &submit_ms);
    assert_eq!(
        online_seq, batch_seq,
        "[{est_name}/{}] online decisions diverge from the batch algorithm",
        cell.name
    );

    // Same seed ⇒ bit-identical decision sequence (and timeline).
    let again = run_service(estimator, &scenario);
    assert_eq!(
        online.decisions, again.decisions,
        "[{est_name}/{}]",
        cell.name
    );
}

#[test]
fn online_decisions_match_batch_for_fixed_timeout() {
    for cell in cells() {
        assert_cell_matches(FixedTimeout::new(ms(400)), "fixed", &cell);
    }
}

#[test]
fn online_decisions_match_batch_for_chen() {
    for cell in cells() {
        assert_cell_matches(ChenEstimator::new(ms(150), 16, ms(600)), "chen", &cell);
    }
}

#[test]
fn online_decisions_match_batch_for_jacobson() {
    for cell in cells() {
        assert_cell_matches(JacobsonEstimator::new(4.0, ms(600)), "jacobson", &cell);
    }
}

/// Heartbeat coalescing is behavior-invisible: over a deterministic
/// network (fixed delay, zero loss — the seeded RNG is never consulted,
/// so both runs execute the exact same delivery schedule), a fleet that
/// packs its per-tick frames into batch datagrams produces the
/// bit-identical decision timeline of a fleet sending one datagram per
/// frame. Coalescing only changes how many datagrams carry the bytes.
#[test]
fn batched_and_singleton_fleets_decide_identically() {
    for cell in cells() {
        let mut scenario = workload(&cell, 7);
        scenario.online.delay = (ms(1), ms(1));
        scenario.online.loss = 0.0;
        let batched = run_service(
            FixedTimeout::new(ms(400)),
            &scenario.clone().with_batching(true),
        );
        let singleton = run_service(FixedTimeout::new(ms(400)), &scenario.with_batching(false));
        assert_eq!(
            batched.decisions, singleton.decisions,
            "[{}] batching must not change the decision timeline",
            cell.name
        );
        assert!(batched.agreement_holds() && singleton.agreement_holds());
        assert_eq!(batched.decided_values(), singleton.decided_values());
    }
}

// ---- weather DSL vs bare FaultyTransport ------------------------------

/// The pre-weather substrate, built by hand: a reliable seeded network
/// wrapped per node by a shared [`FaultInjector`] carrying the
/// scenario's loss, with **unskewed** clocks — exactly what the fleet
/// looked like before the weather planes existed.
fn bare_faulty_fleet(
    scenario: &OnlineScenario,
) -> (
    Vec<FaultyTransport<Endpoint, VirtualClock>>,
    FaultInjector,
    VirtualClock,
) {
    let clock = VirtualClock::new();
    let config =
        NetworkConfig::reliable(scenario.delay.0, scenario.delay.1).with_seed(scenario.seed);
    let net = InMemoryNetwork::new(scenario.n, config, clock.clone());
    let injector = FaultInjector::new(scenario.loss, scenario.seed);
    let transports = (0..scenario.n)
        .map(|ix| FaultyTransport::new(net.endpoint(p(ix)), injector.clone(), clock.clone()))
        .collect();
    (transports, injector, clock)
}

/// A calm [`Weather`] run is bit-identical to the bare `FaultyTransport`
/// path: same decided timeline, same logs, same membership accounting —
/// with and without injector loss, so the quiet fault planes provably
/// consume zero extra RNG draws and add zero timing perturbation.
#[test]
fn calm_weather_is_bit_identical_to_the_bare_faulty_path() {
    for cell in cells() {
        for loss in [0.0, 0.03] {
            let mut scenario = workload(&cell, 7);
            scenario.online.loss = loss;
            // The DSL path: an explicitly calm weather over the same
            // scenario.
            let calm = Weather::new();
            assert!(calm.is_calm());
            let mut dsl = weather_service_runner(
                ChenEstimator::new(ms(150), 16, ms(600)),
                calm.apply_to_service(scenario.clone()),
            );
            dsl.run_to_end();
            let dsl = dsl.report();
            // The bare path: the same substrate assembled without the
            // weather module.
            let (transports, injector, clock) = bare_faulty_fleet(&scenario.online);
            let mut bare = ServiceRunner::over(
                ChenEstimator::new(ms(150), 16, ms(600)),
                scenario.clone(),
                transports,
                injector,
                clock,
            );
            bare.run_to_end();
            let bare = bare.report();
            let tag = format!("{}/loss {loss}", cell.name);
            assert_eq!(dsl.decisions, bare.decisions, "[{tag}] decision timeline");
            assert_eq!(dsl.logs, bare.logs, "[{tag}] final logs");
            assert_eq!(dsl.bases, bare.bases, "[{tag}] compaction bases");
            assert_eq!(dsl.up, bare.up, "[{tag}] liveness map");
            assert_eq!(
                dsl.membership.view_changes, bare.membership.view_changes,
                "[{tag}] view changes"
            );
            assert_eq!(
                dsl.membership.decisions_transferred, bare.membership.decisions_transferred,
                "[{tag}] transfer accounting"
            );
            assert_eq!(
                dsl.membership.sync_bytes_sent, bare.membership.sync_bytes_sent,
                "[{tag}] transfer bytes"
            );
            assert_eq!(
                dsl.membership.weather_directives, 0,
                "[{tag}] calm weather schedules no directives"
            );
        }
    }
}

/// The same zero-cost claim one layer down: the detector-only fleet's
/// per-pair QoS timelines under a calm weather equal the bare
/// `FaultyTransport` fleet's bitwise (every float, every counter, the
/// new longest-mistake tail included).
#[test]
fn calm_weather_qos_timelines_match_the_bare_faulty_path_bitwise() {
    let cell = &cells()[1]; // coordinator crash: detection paths exercised
    let mut scenario = workload(cell, 11).online;
    scenario.loss = 0.02;
    let mut dsl = weather_online_runner(
        ChenEstimator::new(ms(150), 16, ms(600)),
        Weather::new().apply_to(scenario.clone()),
    );
    dsl.run_to_end();
    let (transports, injector, clock) = bare_faulty_fleet(&scenario);
    let mut bare = OnlineRunner::over(
        ChenEstimator::new(ms(150), 16, ms(600)),
        scenario,
        transports,
        injector,
        clock,
    );
    bare.run_to_end();
    for a in 0..N {
        for b in 0..N {
            if a == b {
                continue;
            }
            let (x, y) = (dsl.report(p(a), p(b)), bare.report(p(a), p(b)));
            match (x, y) {
                (Some(x), Some(y)) => assert!(
                    reports_equal(&x, &y),
                    "pair {a}->{b} diverged: {x:?} vs {y:?}"
                ),
                (x, y) => assert_eq!(x.is_some(), y.is_some(), "pair {a}->{b} monitor presence"),
            }
        }
    }
}

/// Under loss the RNG draw sequences diverge between the two modes (a
/// coalesced tick consumes fewer loss draws), so the runs are distinct
/// executions — but both must still decide the full workload with
/// agreement: batching must not cost liveness under a lossy network.
///
/// The retransmission plane makes every loss regime below the
/// detector's false-suspicion threshold survivable: stalled consensus
/// instances re-send their in-flight rounds on an estimator-derived
/// timeout, so no pattern of conspiring losses can wedge an instance
/// for good. Seed 3 — which used to stall after slot 0 at 10% loss in
/// both modes — now decides everything at 5%, 10% and 20%. The one
/// knob that must respect the regime is the *detector's* timeout: at
/// 20% loss a 400 ms deadline over 100 ms heartbeats falsely suspects
/// a live peer (four conspiring heartbeat losses, p = 0.2⁴ per
/// window), and merge-less exclusion of two nodes leaves the group
/// below the majority of the original four — so the 20% cell runs the
/// loss-appropriate 800 ms deadline (p = 0.2⁸).
#[test]
fn batching_preserves_liveness_under_loss() {
    let cell = &cells()[0];
    for (loss, timeout) in [(0.05, 400), (0.10, 400), (0.20, 800)] {
        for seed in [3u64, 17] {
            let mut scenario = workload(cell, seed);
            scenario.online.loss = loss;
            let batched = run_service(
                FixedTimeout::new(ms(timeout)),
                &scenario.clone().with_batching(true),
            );
            let singleton = run_service(
                FixedTimeout::new(ms(timeout)),
                &scenario.with_batching(false),
            );
            for (name, report) in [("batched", &batched), ("singleton", &singleton)] {
                assert!(
                    report.agreement_holds(),
                    "[{name}/loss {loss}/seed {seed}] logs fork"
                );
                assert_eq!(
                    report.decided_values().len(),
                    6,
                    "[{name}/loss {loss}/seed {seed}] not every command decided"
                );
                assert!(
                    report.membership.retransmits_sent > 0,
                    "[{name}/loss {loss}/seed {seed}] loss without retransmission"
                );
            }
            assert_eq!(batched.decided_values(), singleton.decided_values());
        }
    }
}

/// The retransmission plane is *quiescent* on a calm network: a
/// lossless run executes zero retransmissions and drops zero duplicate
/// frames — retry timers arm, but fresh per-poll progress keeps
/// resetting them, so the calm fast path sends not one extra datagram.
#[test]
fn calm_runs_execute_zero_retransmissions() {
    let cell = &cells()[0]; // steady: no loss, no faults
    for batching in [true, false] {
        let scenario = workload(cell, 7).with_batching(batching);
        let report = run_service(FixedTimeout::new(ms(400)), &scenario);
        assert!(report.agreement_holds(), "[{}] logs fork", cell.name);
        assert_eq!(
            report.membership.retransmits_sent, 0,
            "[batching {batching}] calm run retransmitted"
        );
        // `duplicate_frames_dropped` is *not* zero here: reliable-
        // broadcast `Decide` relays are intentionally redundant, and
        // every post-commit copy lands on the idempotence layer. The
        // calm claim is only that no *retry* traffic exists.
    }
}
