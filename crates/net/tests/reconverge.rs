//! Partition-heal view reconciliation: regression and property tests.
//!
//! The merge-less membership service split-brains by design (§1.3:
//! exclusion is forever). With heal-merge enabled
//! ([`MembershipNode::with_heal_merge`] /
//! [`OnlineScenario::heal_merge`]), the fleet must instead reconverge to
//! a **single authoritative view** after every heal — these tests pin
//! that contract, deterministically and under random heal schedules.

use proptest::prelude::*;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::{Clock, Nanos, VirtualClock};
use rfd_net::estimator::ChenEstimator;
use rfd_net::membership::MembershipNode;
use rfd_net::online::{run_membership_churn, Fault, FaultSchedule, OnlineScenario};
use rfd_net::transport::{Endpoint, InMemoryNetwork, NetworkConfig};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn chen() -> ChenEstimator {
    ChenEstimator::new(ms(150), 16, ms(600))
}

/// Regression: two healed partitions reconverge to one authoritative
/// view containing every live member — checked on the nodes themselves,
/// not just the watcher's metrics.
#[test]
fn healed_partitions_reconverge_to_one_authoritative_view() {
    let n = 5;
    let clock = VirtualClock::new();
    let config = NetworkConfig::reliable(ms(1), ms(5)).with_seed(3);
    let net = InMemoryNetwork::new(n, config, clock.clone());
    let mut nodes: Vec<_> = (0..n)
        .map(|ix| {
            MembershipNode::new(n, chen(), net.endpoint(p(ix)), clock.clone(), ms(50))
                .with_heal_merge()
        })
        .collect();
    let mut side = ProcessSet::empty();
    side.insert(p(3));
    side.insert(p(4));

    type Node = MembershipNode<ChenEstimator, Endpoint, VirtualClock>;
    let poll_until = |clock: &VirtualClock, t: Nanos, nodes: &mut Vec<Node>| {
        while clock.now() < t {
            for node in nodes.iter_mut() {
                node.poll();
            }
            clock.advance(ms(1));
        }
    };

    poll_until(&clock, ms(5_000), &mut nodes);
    net.set_partition(side);
    poll_until(&clock, ms(15_000), &mut nodes);
    // Split-brain established: the two sides exclude each other.
    assert!(
        !nodes[0].view().members.contains(p(4)),
        "{:?}",
        nodes[0].view()
    );
    assert!(
        !nodes[3].view().members.contains(p(0)),
        "{:?}",
        nodes[3].view()
    );
    assert!(
        nodes.iter().all(|n| !n.is_halted()),
        "merge mode never halts"
    );

    net.heal_partition();
    poll_until(&clock, ms(30_000), &mut nodes);
    let authoritative = nodes[0].view();
    assert_eq!(
        authoritative.members,
        ProcessSet::full(n),
        "every live member was merged back: {authoritative:?}"
    );
    for (ix, node) in nodes.iter().enumerate() {
        assert_eq!(
            node.view(),
            authoritative,
            "p{ix} holds a different view: {:?} vs {authoritative:?}",
            node.view()
        );
        assert!(!node.is_halted());
    }
}

proptest! {
    // Each case is a full 25-second virtual membership run; keep the
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: whatever (partition, heal) schedule churn throws at the
    /// heal-merge fleet, reconvergence time after every heal is finite —
    /// the watcher reports `Some(_)` for each, and the split-brain total
    /// stays below the observation span.
    #[test]
    fn reconvergence_is_finite_for_random_heal_schedules(
        seed in 0u64..32,
        // One or two partition/heal rounds at random times; sides drawn
        // from the non-coordinator tail so a live majority always hosts
        // the merge.
        cuts in prop::collection::vec((2_000u64..8_000, 2_000u64..6_000, 1u8..3), 1..3),
    ) {
        let n = 4;
        let mut schedule = FaultSchedule::new();
        let mut t = 0u64;
        let mut heals = 0usize;
        for (gap, hold, side_kind) in cuts {
            t += gap;
            let mut side = ProcessSet::singleton(p(3));
            if side_kind == 2 {
                side.insert(p(2));
            }
            schedule = schedule.at(ms(t), Fault::Partition(side));
            t += hold;
            schedule = schedule.at(ms(t), Fault::Heal);
            heals += 1;
        }
        // Leave generous room after the last heal to merge back.
        let duration = ms(t + 12_000);
        let scenario = OnlineScenario {
            n,
            period: ms(50),
            duration,
            sample_every: ms(1),
            seed,
            schedule,
            heal_merge: true,
            ..OnlineScenario::default()
        };
        let report = run_membership_churn(chen(), &scenario);
        prop_assert_eq!(report.time_to_reconverge.len(), heals);
        for (ix, ttr) in report.time_to_reconverge.iter().enumerate() {
            let ttr = ttr.expect("every heal reconverges");
            prop_assert!(ttr < ms(10_000), "heal {ix} took {ttr}");
        }
        prop_assert!(report.split_brain_duration < duration);
        // Determinism per seed: the exact same scenario reproduces the
        // exact same report fields.
        let again = run_membership_churn(chen(), &scenario);
        prop_assert_eq!(again.split_brain_duration, report.split_brain_duration);
        prop_assert_eq!(again.time_to_reconverge, report.time_to_reconverge);
        prop_assert_eq!(again.view_changes, report.view_changes);
    }
}
