//! Allocation regression tests for the runtime hot paths.
//!
//! A counting [`GlobalAlloc`] wrapper around the system allocator tracks
//! per-thread allocation counts; each test warms its path until every
//! buffer has reached steady-state capacity, then asserts the next
//! cycles allocate **nothing**. These tests pin the allocation-free
//! contract of the zero-copy codec (`encode_into` + `decode_borrowed`),
//! the `freeze`/`try_into_mut` buffer-recycling cycle, and the detector
//! receive drain.
//!
//! The counter is thread-local (const-initialized, so the allocator
//! never recurses into itself), which keeps the tests immune to the
//! libtest harness running other tests concurrently.

// The workspace denies `unsafe_code`; a `GlobalAlloc` impl is the one
// place that genuinely needs it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rfd_core::ProcessId;
use rfd_net::bytes::BytesMut;
use rfd_net::clock::{Clock, Nanos, VirtualClock};
use rfd_net::codec::{
    decode_borrowed, encode, encode_into, Heartbeat, SyncReply, WireMsg, WireView,
};
use rfd_net::estimator::FixedTimeout;
use rfd_net::transport::{InMemoryNetwork, NetworkConfig, Transport};
use rfd_net::DetectorNode;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts every `alloc`/`realloc` on the current thread; frees are not
/// counted (the tests assert "no new memory requested", which is the
/// contract that matters for steady-state churn).
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocation count on this thread while `f` runs.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn warmed_codec_round_trip_does_not_allocate() {
    let msg = WireMsg::Heartbeat(Heartbeat {
        sender: 5,
        seq: 1234,
        sent_at: Nanos::from_millis(77),
    });
    let mut buf = BytesMut::with_capacity(64);
    // Warm: the buffer reaches its steady capacity.
    encode_into(&msg, &mut buf);

    let allocs = allocations_during(|| {
        for _ in 0..100 {
            encode_into(&msg, &mut buf);
            match decode_borrowed(&buf).expect("round trip") {
                WireView::Heartbeat(hb) => assert_eq!(hb.seq, 1234),
                other => panic!("wrong frame: {other:?}"),
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state heartbeat round trip must be allocation-free"
    );
}

#[test]
fn borrowed_sync_reply_decode_does_not_allocate() {
    let msg = WireMsg::SyncReply(SyncReply {
        start: 3,
        entries: (0..16).map(|i| (i, i * 7, 1u128 << i)).collect(),
    });
    let mut buf = BytesMut::with_capacity(1024);
    encode_into(&msg, &mut buf);

    let allocs = allocations_during(|| {
        for _ in 0..100 {
            encode_into(&msg, &mut buf);
            match decode_borrowed(&buf).expect("round trip") {
                WireView::SyncReply(view) => {
                    assert_eq!(view.start, 3);
                    let sum: u64 = view.iter().map(|(_, v, _)| v).sum();
                    assert_eq!(sum, (0..16).map(|i| i * 7).sum::<u64>());
                }
                other => panic!("wrong frame: {other:?}"),
            }
        }
    });
    assert_eq!(allocs, 0, "borrowed sync-reply decode must not allocate");
}

#[test]
fn freeze_and_reclaim_cycle_does_not_allocate() {
    let msg = WireMsg::Heartbeat(Heartbeat {
        sender: 1,
        seq: 0,
        sent_at: Nanos::ZERO,
    });
    // Warm one full cycle so the backing vector exists.
    let mut scratch = Some(encode(&msg));

    let allocs = allocations_during(|| {
        for _ in 0..100 {
            let mut buf = scratch
                .take()
                .expect("scratch is always returned")
                .try_into_mut()
                .expect("sole owner between cycles");
            encode_into(&msg, &mut buf);
            let payload = buf.freeze();
            // A fan-out clone that is dropped before the next cycle,
            // as when the network delivers faster than the send period.
            let wire_copy = payload.clone();
            assert_eq!(wire_copy.len(), payload.len());
            drop(wire_copy);
            scratch = Some(payload);
        }
    });
    assert_eq!(
        allocs, 0,
        "encode → freeze → clone → reclaim must be allocation-free"
    );
}

#[test]
fn detector_steady_state_drain_does_not_allocate() {
    let n = 8usize;
    let fan_in = 64usize;
    let clock = VirtualClock::new();
    // Fixed delay, zero loss: the network never consults its RNG.
    let config = NetworkConfig::reliable(Nanos::from_millis(1), Nanos::from_millis(1));
    let net = InMemoryNetwork::new(n, config, clock.clone());
    let senders: Vec<_> = (1..n).map(|ix| net.endpoint(p(ix))).collect();
    let payloads: Vec<_> = (1..n)
        .map(|ix| {
            #[allow(clippy::cast_possible_truncation)]
            let sender = ix as u16;
            encode(&WireMsg::Heartbeat(Heartbeat {
                sender,
                seq: 1,
                sent_at: clock.now(),
            }))
        })
        .collect();
    // A period the virtual clock never reaches twice, so the node's own
    // fan-out fires at most once and the cycle is pure receive drain.
    let mut node = DetectorNode::new(
        n,
        FixedTimeout::new(Nanos::from_millis(100)),
        net.endpoint(p(0)),
        clock.clone(),
        Nanos::from_nanos(u64::MAX),
    );

    let mut cycle = || {
        for j in 0..fan_in {
            let s = j % (n - 1);
            senders[s].send(p(0), payloads[s].clone());
        }
        clock.advance(Nanos::from_millis(2));
        node.poll()
    };

    // Warm: inboxes, the in-flight heap, and the node's receive scratch
    // all grow to their steady capacity.
    for _ in 0..5 {
        cycle();
    }

    let allocs = allocations_during(|| {
        for _ in 0..10 {
            let suspects = cycle();
            assert!(suspects.is_empty(), "everyone is heartbeating");
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state detector drain must be allocation-free"
    );
}
