//! Dynamic companion to `rfd-lint`'s wire-safety rule: property fuzz
//! feeding arbitrary and mutated datagrams into the runtime nodes.
//!
//! The static pass proves no `unwrap`/`panic!`/unchecked indexing is
//! *written* in datagram-facing code; these properties check the same
//! contract *observably* — an attacker-controlled datagram never
//! panics a [`MembershipNode`] or [`DecisionService`], rejected frames
//! leave node state untouched, and every rejection is charged to the
//! `malformed_frames` counter. This regression-pins the PR 5
//! out-of-range `ProcessId` panic family: a heartbeat whose sender
//! field exceeds the cluster size used to abort the process.
//!
//! The second battery pins the wire path's **idempotency** — the
//! property the weather catalogue's duplication and reordering planes
//! lean on: re-delivered or out-of-order `Decided`, `SyncReply` and
//! `SnapshotReply` frames are no-ops (no double-applied log entries,
//! no re-triggered snapshot installs), so a duplicating, reordering
//! network can never talk a replica out of agreement.

use proptest::prelude::*;
use rfd_algo::consensus::RotatingMsg;
use rfd_core::ProcessId;
use rfd_net::bytes::Bytes;
use rfd_net::clock::{Clock, Nanos, VirtualClock};
use rfd_net::codec::{
    decode_borrowed, encode, Command, ConsensusFrame, DecidedMsg, Heartbeat, SnapshotReply,
    SnapshotRequest, SyncReply, SyncRequest, ViewChange, WireMsg,
};
use rfd_net::estimator::ChenEstimator;
use rfd_net::membership::MembershipNode;
use rfd_net::service::DecisionService;
use rfd_net::transport::{InMemoryNetwork, NetworkConfig, Transport};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn chen() -> ChenEstimator {
    ChenEstimator::new(ms(150), 16, ms(600))
}

const N: usize = 3;

/// One `SyncReply` worth of stream: `(start, entries)` with entries as
/// `(value, view, members)` triples.
type ChunkFrame = (u64, Vec<(u64, u64, u128)>);

/// One arbitrary-but-valid wire message from flattened scalars (the
/// same selector scheme as `codec_prop.rs`).
fn wire_msg(selector: u8, a: u64, b: u64, wide: u128, entries: Vec<(u64, u64, u128)>) -> WireMsg {
    match selector % 9 {
        0 => WireMsg::Heartbeat(Heartbeat {
            sender: a as u16,
            seq: b,
            sent_at: Nanos::from_nanos(a ^ b),
        }),
        1 => WireMsg::ViewChange(ViewChange {
            view_id: a,
            members: wide,
        }),
        2 => WireMsg::Command(Command { value: a }),
        3 => WireMsg::Consensus(ConsensusFrame {
            slot: a,
            msg: match b % 5 {
                0 => RotatingMsg::Estimate {
                    r: b,
                    ts: a.wrapping_add(b),
                    v: wide as u64,
                },
                1 => RotatingMsg::Propose {
                    r: b,
                    v: wide as u64,
                },
                2 => RotatingMsg::Ack { r: b },
                3 => RotatingMsg::Nack { r: b },
                _ => RotatingMsg::Decide(wide as u64),
            },
        }),
        4 => WireMsg::Decided(DecidedMsg {
            index: a,
            view_id: b,
            view_members: wide,
            value: a.wrapping_mul(3),
        }),
        5 => WireMsg::SyncRequest(SyncRequest { from_index: a }),
        6 => WireMsg::SyncReply(SyncReply { start: a, entries }),
        7 => WireMsg::SnapshotRequest(SnapshotRequest { from_index: a }),
        _ => WireMsg::SnapshotReply(SnapshotReply {
            upto: a,
            digest: b,
            view_id: a ^ b,
            view_members: wide,
            entries,
        }),
    }
}

proptest! {
    /// Undecodable datagrams: no panic, no membership state change, and
    /// every rejected frame charged to `malformed_frames`.
    #[test]
    fn membership_rejects_arbitrary_bytes_without_state_change(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..96), 1..24),
    ) {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
        let mut node = MembershipNode::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
        let attacker = net.endpoint(p(1));
        let view_before = node.view();
        let installed_before = node.views_installed();
        let mut rejected = 0u64;
        for mut bytes in frames {
            // Steer the rare accidentally-valid frame back to garbage
            // by breaking its magic; skip it if it somehow survives.
            if decode_borrowed(&bytes).is_ok() {
                match bytes.first_mut() {
                    Some(b0) => *b0 ^= 0xFF,
                    None => continue,
                }
            }
            if decode_borrowed(&bytes).is_ok() {
                continue;
            }
            rejected += 1;
            attacker.send(p(0), Bytes::from(bytes));
            clock.advance(ms(2));
            node.poll();
        }
        prop_assert_eq!(node.malformed_frames(), rejected);
        prop_assert_eq!(node.view(), view_before);
        prop_assert_eq!(node.views_installed(), installed_before);
        prop_assert!(!node.is_halted());
    }

    /// Decodable heartbeats with wild sender fields — the exact PR 5
    /// panic family — are dropped, counted, and change nothing.
    #[test]
    fn membership_drops_out_of_range_heartbeat_senders(
        senders in prop::collection::vec(any::<u16>(), 1..16),
    ) {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
        let mut node = MembershipNode::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
        let attacker = net.endpoint(p(1));
        let view_before = node.view();
        for (seq, &sender) in senders.iter().enumerate() {
            attacker.send(
                p(0),
                encode(&WireMsg::Heartbeat(Heartbeat {
                    sender,
                    seq: seq as u64,
                    sent_at: clock.now(),
                })),
            );
            clock.advance(ms(2));
            node.poll();
        }
        let wild = senders.iter().filter(|&&s| usize::from(s) >= N).count() as u64;
        prop_assert_eq!(node.malformed_frames(), wild);
        prop_assert_eq!(node.view(), view_before);
        prop_assert!(!node.is_halted());
    }

    /// Bit-flipped frames of every wire kind into a full service node:
    /// never a panic; a flip that breaks decoding is counted and leaves
    /// the decision log untouched. (A flip that still decodes may
    /// legally change state — the property there is survival.)
    #[test]
    fn service_survives_bit_flipped_frames(
        selector in 0u8..9,
        a in any::<u64>(),
        b in any::<u64>(),
        wide in any::<u128>(),
        entries in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u128>()), 0..8),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
        let mut node = DecisionService::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
        let attacker = net.endpoint(p(1));
        let mut bytes = encode(&wire_msg(selector, a, b, wide, entries)).to_vec();
        let ix = flip_at % bytes.len();
        bytes[ix] ^= 1 << flip_bit;
        let still_decodes = decode_borrowed(&bytes).is_ok();
        let log_before = node.log().len();
        attacker.send(p(0), Bytes::from(bytes));
        clock.advance(ms(2));
        node.poll();
        if !still_decodes {
            prop_assert_eq!(node.malformed_frames(), 1);
            prop_assert_eq!(node.log().len(), log_before);
            prop_assert!(!node.is_halted());
        }
    }

    /// Unsolicited snapshot replies — forged summaries with
    /// attacker-chosen (possibly astronomical) `upto` — are ignored
    /// outright: the receiver never armed `awaiting_snapshot`, so the
    /// log keeps its base and length and no arena inflates. This is
    /// the compaction analogue of the `SLOT_HORIZON` pin: installation
    /// cost must never scale with an attacker-chosen index.
    #[test]
    fn service_ignores_unsolicited_snapshot_replies(
        upto in any::<u64>(),
        digest in any::<u64>(),
        view_id in any::<u64>(),
        wide in any::<u128>(),
        entries in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u128>()), 0..32),
    ) {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
        let mut node = DecisionService::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
        let attacker = net.endpoint(p(1));
        let base_before = node.log().first_index();
        let len_before = node.log().len();
        attacker.send(
            p(0),
            encode(&WireMsg::SnapshotReply(SnapshotReply {
                upto,
                digest,
                view_id,
                view_members: wide,
                entries,
            })),
        );
        clock.advance(ms(2));
        node.poll();
        prop_assert_eq!(node.log().first_index(), base_before);
        prop_assert_eq!(node.log().len(), len_before);
        prop_assert_eq!(node.log().snapshots_installed(), 0);
        prop_assert!(!node.is_halted());
    }

    /// Forged snapshot *requests* with arbitrary `from_index` never
    /// panic the responder and never make it serve below its base as a
    /// suffix (the reply is either a snapshot or in-range chunks).
    #[test]
    fn service_survives_arbitrary_snapshot_requests(
        from_index in any::<u64>(),
    ) {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
        let mut node = DecisionService::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
        let attacker = net.endpoint(p(1));
        attacker.send(
            p(0),
            encode(&WireMsg::SnapshotRequest(SnapshotRequest { from_index })),
        );
        clock.advance(ms(2));
        node.poll();
        prop_assert!(!node.is_halted());
        prop_assert_eq!(node.malformed_frames(), 0);
    }

    /// A chunked `SyncReply` stream survives **any** interleaving with
    /// duplicates: chunks arriving above the tail buffer in the bounded
    /// future window, re-deliveries merge nothing, and once every chunk
    /// has arrived at least once the log holds exactly the original
    /// sequence — no entry applied twice, whatever the weather did to
    /// the stream.
    #[test]
    fn sync_chunk_streams_converge_under_any_duplication_and_reordering(
        total in 4u64..24,
        chunk in 1u64..5,
        dups in prop::collection::vec(any::<bool>(), 24),
        shuffle_seed in any::<u64>(),
    ) {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
        let mut node = DecisionService::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
        let peer = net.endpoint(p(1));
        let members = (1u128 << N) - 1;
        let values: Vec<u64> = (0..total).map(|i| 1_000 + i).collect();
        // Chunk the stream, duplicate some chunks, then shuffle with a
        // seeded LCG — a worst-case but complete delivery order.
        let mut frames: Vec<ChunkFrame> = values
            .chunks(chunk as usize)
            .enumerate()
            .map(|(ix, vs)| {
                (
                    ix as u64 * chunk,
                    vs.iter().map(|&v| (v, 1, members)).collect(),
                )
            })
            .collect();
        let base_chunks = frames.len();
        for ix in 0..base_chunks {
            if *dups.get(ix).unwrap_or(&false) {
                frames.push(frames[ix].clone());
            }
        }
        let mut rng = shuffle_seed | 1;
        for i in (1..frames.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            frames.swap(i, (rng >> 33) as usize % (i + 1));
        }
        for (start, entries) in frames {
            peer.send(p(0), encode(&WireMsg::SyncReply(SyncReply { start, entries })));
            clock.advance(ms(2));
            node.poll();
        }
        prop_assert_eq!(node.log().len(), total);
        let decided: Vec<u64> = node.log().suffix(0).iter().map(|d| d.value).collect();
        prop_assert_eq!(decided, values);
        prop_assert_eq!(node.malformed_frames(), 0);
        prop_assert_eq!(node.log().snapshots_installed(), 0);
        prop_assert!(!node.is_halted());
    }
}

/// Re-delivered `Decided` relays append exactly once: the second and
/// third copies land below the tail and fall through as no-ops, and a
/// stale re-delivery after later appends cannot rewrite history.
#[test]
fn duplicated_decided_relays_append_once() {
    let clock = VirtualClock::new();
    let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
    let mut node = DecisionService::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
    let peer = net.endpoint(p(1));
    let members = (1u128 << N) - 1;
    let relay = |index: u64, value: u64| {
        encode(&WireMsg::Decided(DecidedMsg {
            index,
            view_id: 1,
            view_members: members,
            value,
        }))
    };
    // Three copies of index 0, then two of index 1, then a stale echo
    // of index 0 again — the weather's duplication plane in miniature.
    for frame in [
        relay(0, 7),
        relay(0, 7),
        relay(0, 7),
        relay(1, 8),
        relay(1, 8),
        relay(0, 7),
    ] {
        peer.send(p(0), frame);
        clock.advance(ms(2));
        node.poll();
    }
    assert_eq!(node.log().len(), 2, "each index appended exactly once");
    let decided: Vec<u64> = node.log().suffix(0).iter().map(|d| d.value).collect();
    assert_eq!(decided, vec![7, 8]);
    assert_eq!(node.malformed_frames(), 0);
    assert!(!node.is_halted());
}

/// Re-delivered `SnapshotReply` frames install exactly once: the first
/// copy consumes the armed `awaiting_snapshot` latch, so the duplicate
/// (and any later forgery, however large its `upto`) is dropped without
/// touching the log.
#[test]
fn duplicated_snapshot_replies_install_once() {
    let clock = VirtualClock::new();
    let net = InMemoryNetwork::new(N, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
    let mut node = DecisionService::new(N, chen(), net.endpoint(p(0)), clock.clone(), ms(50));
    let peer = net.endpoint(p(1));
    // A compaction gap-signal (empty chunk starting above our tail)
    // arms the snapshot negotiation…
    peer.send(
        p(0),
        encode(&WireMsg::SyncReply(SyncReply {
            start: 5,
            entries: Vec::new(),
        })),
    );
    clock.advance(ms(2));
    node.poll();
    // …then the reply arrives twice (duplication plane), followed by a
    // bigger forgery (stale reordered reply from another epoch).
    let reply = |upto: u64| {
        encode(&WireMsg::SnapshotReply(SnapshotReply {
            upto,
            digest: 0xDEAD_BEEF,
            view_id: 1,
            view_members: (1u128 << N) - 1,
            entries: Vec::new(),
        }))
    };
    for frame in [reply(5), reply(5), reply(100)] {
        peer.send(p(0), frame);
        clock.advance(ms(2));
        node.poll();
    }
    assert_eq!(
        node.log().snapshots_installed(),
        1,
        "one armed request, one install"
    );
    assert_eq!(node.log().first_index(), 5, "the duplicate changed nothing");
    assert_eq!(node.log().len(), 5);
    assert!(!node.is_halted());
}
