//! Adversarial safety battery for the live replicated-decision service.
//!
//! The contract under test is the paper's reason group membership
//! exists: the service's log must behave like `P`-based consensus —
//! **no two nodes ever decide different values at the same log index**,
//! whatever crash / recover / partition / heal schedule the run is put
//! through, and post-heal state transfer must never lose a decision
//! that was acknowledged to a client. Schedules are random (the same
//! generator family as `reconverge.rs`), runs are deterministic per
//! seed, and the checks read the *event timeline*, not just the final
//! state, so even a transient disagreement would fail the property.
//!
//! The same contract is re-run under the adversarial weather catalogue
//! ([`rfd_net::weather`]): proptest composes random subsets of all
//! seven weather primitives — one-way partitions, flapping links,
//! duplication, bounded reordering, gray failure, clock skew,
//! correlated zone crashes — into one schedule, and the agreement /
//! no-fork / acked-never-lost properties must survive every
//! composition, reproducibly per seed.
//!
//! The deterministic half regression-tests the out-of-range
//! `ProcessId` handling fixed alongside this layer: wild heartbeat
//! senders, oversized watcher members, and hostile service frames.

use proptest::prelude::*;
use rfd_core::{ProcessId, ProcessSet};
use rfd_net::clock::{ClockSkew, Nanos, Pacer, VirtualClock};
use rfd_net::codec::{encode, DecidedMsg, Heartbeat, SyncReply, WireMsg, MAX_SYNC_ENTRIES};
use rfd_net::estimator::{ArrivalEstimator, ChenEstimator};
use rfd_net::membership::MembershipNode;
use rfd_net::online::{Fault, FaultSchedule, MembershipWatcher, OnlineScenario};
use rfd_net::service::{
    run_service, CompactionPolicy, ServiceEvent, ServiceRunner, ServiceScenario,
};
use rfd_net::transport::{ChurnableTransport, InMemoryNetwork, NetworkConfig, Transport};
use rfd_net::weather::{run_weather_service, weather_service_runner, Weather};
use rfd_net::DetectorNode;
use std::collections::BTreeMap;

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn chen() -> ChenEstimator {
    ChenEstimator::new(ms(150), 16, ms(600))
}

/// Builds a service scenario from generated churn: `cuts` are
/// `(gap, hold, side_bits)` partition/heal rounds, `crash` an optional
/// `(victim, at, recovery_hold)` cycle, commands spaced through the run.
fn churn_scenario(
    seed: u64,
    heal_merge: bool,
    cuts: &[(u64, u64, u8)],
    crash: Option<(usize, u64, u64)>,
) -> ServiceScenario {
    let n = 4;
    let mut schedule = FaultSchedule::new();
    let mut t = 0u64;
    for &(gap, hold, side_bits) in cuts {
        t += gap;
        let side: ProcessSet = (0..n)
            .filter(|ix| side_bits & (1 << ix) != 0)
            .map(p)
            .collect();
        schedule = schedule.at(ms(t), Fault::Partition(side));
        t += hold;
        schedule = schedule.at(ms(t), Fault::Heal);
    }
    if let Some((victim, at, hold)) = crash {
        schedule = schedule
            .at(ms(at), Fault::Crash(p(victim)))
            .at(ms(at + hold), Fault::Recover(p(victim)));
    }
    let duration = ms(t.max(10_000) + 12_000);
    let mut scenario = ServiceScenario {
        online: OnlineScenario {
            n,
            duration,
            seed,
            heal_merge,
            schedule,
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    };
    // Six commands spread across the run, round-robin clients.
    let gap = duration.as_millis() / 8;
    for i in 0..6u64 {
        scenario = scenario.command(ms(gap * (i + 1)), p((i as usize) % n), 100 + i);
    }
    scenario
}

/// Drives the scenario over the default in-memory substrate and checks
/// the safety contract (panics on violation, so it works both as a
/// property body and as a plain test helper).
fn assert_safety(scenario: &ServiceScenario) {
    check_safety(ServiceRunner::new(chen(), scenario.clone()));
}

/// The substrate-agnostic safety checker: drives any [`ServiceRunner`]
/// to completion checking the contract on the live event stream *and*
/// the final logs.
fn check_safety<E, T, C, N>(mut runner: ServiceRunner<E, T, C, N>)
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Pacer + Clone,
    N: ChurnableTransport,
{
    // index -> first value ever acknowledged at that index, across the
    // whole fleet and the whole run.
    let mut acked: BTreeMap<u64, u64> = BTreeMap::new();
    while let Some(events) = runner.step() {
        for event in events {
            if let ServiceEvent::Decided { decision, node, .. } = event {
                let first = *acked.entry(decision.index).or_insert(decision.value);
                assert_eq!(
                    first, decision.value,
                    "agreement violated live at index {} by {node}",
                    decision.index
                );
            }
        }
    }
    let report = runner.report();
    assert!(
        report.agreement_holds(),
        "final logs disagree: {:?}",
        report.logs
    );
    assert_eq!(
        report.membership.decisions_lost, 0,
        "state transfer discarded decided entries"
    );
    // No double-decide: command values identify requests, so a value
    // appearing at two log indices means a retry (re-gossip or
    // retransmission) re-entered the pipeline past the dedup layer.
    for (node, log) in report.logs.iter().enumerate() {
        let mut values: Vec<u64> = log.iter().map(|d| d.value).collect();
        values.sort_unstable();
        let before = values.len();
        values.dedup();
        assert_eq!(
            before,
            values.len(),
            "node {node} decided some command at two indices: {log:?}"
        );
    }
    // No acknowledged decision is ever lost: every final log that
    // retains an acked index still holds the acked value, and each
    // acked index is either retained somewhere or compacted — folded
    // into a digest chain, which only ever happens to decided prefixes
    // every current member acknowledged.
    for (&index, &value) in &acked {
        let mut holders = 0;
        let mut compacted = 0;
        for (log, &base) in report.logs.iter().zip(&report.bases) {
            if index < base {
                compacted += 1;
                continue;
            }
            if let Some(d) = log.iter().find(|d| d.index == index) {
                assert_eq!(d.value, value, "acked decision rewritten at {index}");
                holders += 1;
            }
        }
        assert!(
            holders + compacted > 0,
            "acked index {index} vanished from every log"
        );
    }
}

proptest! {
    // Each case is a full multi-second virtual run; keep the count
    // modest (the CI quick suite re-runs this file on every push).
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Safety under random crash/partition/heal churn, with heal-merge
    /// reconciliation (and therefore live state transfer) enabled.
    #[test]
    fn no_two_nodes_ever_decide_differently_under_heal_merge_churn(
        seed in 0u64..1024,
        cuts in prop::collection::vec((2_000u64..7_000, 2_000u64..6_000, 1u8..15), 1..3),
        crash in prop::option::of((1usize..4, 3_000u64..15_000, 2_000u64..6_000)),
    ) {
        assert_safety(&churn_scenario(seed, true, &cuts, crash));
    }

    /// The same contract under the default merge-less policy: excluded
    /// nodes halt (by-fiat accuracy) but the logs never fork.
    #[test]
    fn merge_less_exclusion_preserves_agreement_too(
        seed in 0u64..1024,
        cuts in prop::collection::vec((2_000u64..7_000, 2_000u64..6_000, 1u8..15), 1..2),
        crash in prop::option::of((1usize..4, 3_000u64..15_000, 2_000u64..6_000)),
    ) {
        assert_safety(&churn_scenario(seed, false, &cuts, crash));
    }

    /// The same agreement + acked-never-lost contract with snapshot
    /// compaction enabled: random churn, random (small) retained tails,
    /// so runs routinely compact past what a partitioned node holds and
    /// the post-heal catch-up exercises the snapshot path.
    #[test]
    fn compaction_preserves_agreement_and_acked_decisions_under_churn(
        seed in 0u64..1024,
        retain in 1u64..6,
        cuts in prop::collection::vec((2_000u64..7_000, 2_000u64..6_000, 1u8..15), 1..3),
        crash in prop::option::of((1usize..4, 3_000u64..15_000, 2_000u64..6_000)),
    ) {
        let scenario = churn_scenario(seed, true, &cuts, crash)
            .with_compaction(CompactionPolicy::retain_last(retain));
        assert_safety(&scenario);
    }

    /// The compaction contract without heal-merge reconciliation:
    /// excluded nodes halt instead of rejoining, so the stable index is
    /// driven purely by the surviving view's acks — compaction must
    /// never outrun an acked decision (every acked index stays retained
    /// on some live log or digest-covered behind a base), and the
    /// halted logs must still never fork from the survivors'.
    #[test]
    fn merge_less_compaction_preserves_agreement_and_acked_decisions(
        seed in 0u64..1024,
        retain in 1u64..6,
        cuts in prop::collection::vec((2_000u64..7_000, 2_000u64..6_000, 1u8..15), 1..3),
        crash in prop::option::of((1usize..4, 3_000u64..15_000, 2_000u64..6_000)),
    ) {
        let scenario = churn_scenario(seed, false, &cuts, crash)
            .with_compaction(CompactionPolicy::retain_last(retain));
        assert_safety(&scenario);
    }

    /// Determinism: the full report of a churned service run is a pure
    /// function of the scenario seed.
    #[test]
    fn churned_service_reports_reproduce_per_seed(
        seed in 0u64..64,
        cuts in prop::collection::vec((2_000u64..7_000, 2_000u64..6_000, 1u8..15), 1..2),
    ) {
        let scenario = churn_scenario(seed, true, &cuts, None);
        let a = run_service(chen(), &scenario);
        let b = run_service(chen(), &scenario);
        prop_assert_eq!(a.logs, b.logs);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.membership.view_changes, b.membership.view_changes);
        prop_assert_eq!(a.membership.decisions_transferred, b.membership.decisions_transferred);
    }
}

// ---- composed adversarial weather ------------------------------------

/// A proptest-shaped composition over all seven weather primitives:
/// every field optional, so cases range from clear skies to the full
/// storm. Times are milliseconds inside the 14 s run.
#[derive(Clone, Debug)]
struct WeatherSpec {
    one_way: Option<(usize, usize, u64, u64)>,
    flap: Option<(usize, usize, u64, u64, u64)>,
    dup: Option<(u16, u64)>,
    reorder: Option<(u16, u8, u64, u64)>,
    gray: Option<(usize, u64, u64, u64)>,
    skew: Option<(usize, u32, u32)>,
    zone: Option<(u8, u64, Option<u64>)>,
}

fn weather_spec() -> impl Strategy<Value = WeatherSpec> {
    (
        prop::option::of((0usize..4, 0usize..4, 1_500u64..6_000, 1_000u64..4_000)),
        prop::option::of((
            0usize..4,
            0usize..4,
            200u64..800,
            1_500u64..5_000,
            1_000u64..3_000,
        )),
        prop::option::of((0u16..700, 1_000u64..4_000)),
        prop::option::of((0u16..500, 1u8..4, 10u64..80, 1_000u64..4_000)),
        prop::option::of((0usize..4, 100u64..1_200, 2_000u64..6_000, 1_000u64..4_000)),
        prop::option::of((0usize..4, 1u32..4, 1u32..4)),
        prop::option::of((1u8..8, 3_000u64..8_000, prop::option::of(1_000u64..4_000))),
    )
        .prop_map(
            |(one_way, flap, dup, reorder, gray, skew, zone)| WeatherSpec {
                one_way,
                flap,
                dup,
                reorder,
                gray,
                skew,
                zone,
            },
        )
}

/// Compiles a spec into a [`Weather`]. Degenerate draws (self-links,
/// zero probabilities, identity skews) stay in on purpose: they are
/// legal compositions and must also be safe.
fn build_weather(spec: &WeatherSpec) -> Weather {
    let mut w = Weather::new();
    if let Some((from, to, at, hold)) = spec.one_way {
        w = w.one_way(
            ProcessSet::singleton(p(from)),
            ProcessSet::singleton(p(to)),
            ms(at),
            Some(ms(at + hold)),
        );
    }
    if let Some((a, b, half, at, span)) = spec.flap {
        w = w.flap(p(a), p(b), ms(half), ms(at), ms(at + span));
    }
    if let Some((per_mille, at)) = spec.dup {
        w = w.duplicate(per_mille, ms(at), Some(ms(at + 4_000)));
    }
    if let Some((per_mille, depth, hold, at)) = spec.reorder {
        w = w.reorder(per_mille, depth, ms(hold), ms(at), Some(ms(at + 4_000)));
    }
    if let Some((node, extra, at, hold)) = spec.gray {
        w = w.gray(p(node), ms(extra), ms(at), Some(ms(at + hold)));
    }
    if let Some((node, num, den)) = spec.skew {
        w = w.skew(p(node), ClockSkew::ratio(num, den));
    }
    if let Some((bits, at, recover)) = spec.zone {
        // The zone draws from {p1, p2, p3}; p0 stays up so the QoS and
        // command paths always have a live anchor.
        let zone: ProcessSet = (1..4)
            .filter(|ix| bits & (1 << (ix - 1)) != 0)
            .map(p)
            .collect();
        w = w.correlated_crash(zone, ms(at), recover.map(|hold| ms(at + hold)));
    }
    w
}

/// The workload every weather composition runs under: n=4, 14 s,
/// heal-merge on, six commands spread through calm and storm.
fn weather_scenario(spec: &WeatherSpec, seed: u64) -> ServiceScenario {
    let mut scenario = ServiceScenario {
        online: build_weather(spec).apply_to(OnlineScenario {
            n: 4,
            duration: ms(14_000),
            seed,
            heal_merge: true,
            ..OnlineScenario::default()
        }),
        ..ServiceScenario::default()
    };
    for i in 0..6u64 {
        scenario = scenario.command(ms(1_500 * (i + 1)), p((i as usize) % 4), 300 + i);
    }
    scenario
}

proptest! {
    // Weather runs drive four fault planes at once; keep the per-push
    // case count modest like the churn battery above.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Agreement at every index, no log forks, and no acked decision
    /// lost under random compositions of all seven weather primitives.
    #[test]
    fn composed_weather_never_breaks_agreement_or_loses_acked_decisions(
        seed in 0u64..1024,
        spec in weather_spec(),
    ) {
        let scenario = weather_scenario(&spec, seed);
        check_safety(weather_service_runner(chen(), scenario));
    }

    /// Every composed weather run is a pure function of (spec, seed):
    /// the full report replays bit-identically.
    #[test]
    fn composed_weather_runs_reproduce_per_seed(
        seed in 0u64..64,
        spec in weather_spec(),
    ) {
        let scenario = weather_scenario(&spec, seed);
        let a = run_weather_service(chen(), &scenario);
        let b = run_weather_service(chen(), &scenario);
        prop_assert_eq!(a.logs, b.logs);
        prop_assert_eq!(a.bases, b.bases);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.membership.view_changes, b.membership.view_changes);
        prop_assert_eq!(a.membership.weather_directives, b.membership.weather_directives);
    }

    /// Retry safety: random weather compositions with uniform datagram
    /// loss stacked on top, so the retransmission plane actually fires
    /// (duplicated consensus frames, re-pushed suffixes, re-gossiped
    /// commands). Retransmissions must behave as delayed duplicates:
    /// no fork at any index, no command decided twice
    /// ([`check_safety`]'s dedup check), no acked decision lost.
    #[test]
    fn retransmissions_under_weather_and_loss_never_fork_or_double_decide(
        seed in 0u64..1024,
        loss_pct in 0u64..=20,
        spec in weather_spec(),
    ) {
        let mut scenario = weather_scenario(&spec, seed);
        scenario.online.loss = loss_pct as f64 / 100.0;
        check_safety(weather_service_runner(chen(), scenario));
    }

    /// And the lossy runs stay a pure function of (spec, loss, seed):
    /// whether and when each retry fires is part of the deterministic
    /// schedule, so the whole report replays bit-identically.
    #[test]
    fn lossy_weather_runs_reproduce_per_seed(
        seed in 0u64..64,
        loss_pct in 1u64..=20,
        spec in weather_spec(),
    ) {
        let mut scenario = weather_scenario(&spec, seed);
        scenario.online.loss = loss_pct as f64 / 100.0;
        let a = run_weather_service(chen(), &scenario);
        let b = run_weather_service(chen(), &scenario);
        prop_assert_eq!(a.logs, b.logs);
        prop_assert_eq!(a.bases, b.bases);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(
            a.membership.retransmits_sent,
            b.membership.retransmits_sent
        );
        prop_assert_eq!(
            a.membership.duplicate_frames_dropped,
            b.membership.duplicate_frames_dropped
        );
    }
}

/// A heal with traffic on both sides: the majority decides during the
/// cut, the healed minority catches up purely by state transfer, and
/// every acknowledged decision survives — the deterministic anchor of
/// the property above.
#[test]
fn healed_minority_recovers_every_acknowledged_decision() {
    let scenario = churn_scenario(3, true, &[(4_000, 8_000, 0b1000)], None);
    let report = run_service(chen(), &scenario);
    assert!(report.agreement_holds());
    assert!(report.live_logs_converged(), "{:?}", report.logs);
    assert_eq!(
        report.decided_values().len(),
        6,
        "{:?}",
        report.decided_values()
    );
    assert!(report.membership.decisions_transferred > 0);
    assert_eq!(report.membership.decisions_lost, 0);
}

/// A long single-node outage with the workload fully decided before the
/// heal, so the rejoin is pure catch-up: p3 is cut off at 2 s, the
/// majority decides ~40 commands, the partition heals at 14 s.
fn rejoin_scenario(retain: Option<u64>) -> ServiceScenario {
    let mut scenario = ServiceScenario {
        online: OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(22_000),
            seed: 11,
            heal_merge: true,
            schedule: FaultSchedule::new()
                .at(ms(2_000), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(14_000), Fault::Heal),
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    };
    if let Some(k) = retain {
        scenario = scenario.with_compaction(CompactionPolicy::retain_last(k));
    }
    let mut at = 1_000;
    let mut value = 500;
    while at <= 13_000 {
        scenario = scenario.command(ms(at), p((value as usize) % 3), value);
        at += 300;
        value += 1;
    }
    scenario
}

/// Snapshot rejoin and suffix rejoin are *equivalent*: the same outage
/// replayed with and without compaction converges on the same decided
/// sequence — the snapshot path changes how state moves, never what
/// state is.
#[test]
fn snapshot_rejoin_matches_suffix_rejoin_final_state() {
    let suffix = run_service(chen(), &rejoin_scenario(None));
    let snapshot = run_service(chen(), &rejoin_scenario(Some(4)));
    for report in [&suffix, &snapshot] {
        assert!(report.agreement_holds());
        assert!(report.live_logs_converged(), "{:?}", report.logs);
        assert_eq!(report.membership.decisions_lost, 0);
    }
    assert_eq!(suffix.membership.snapshots_sent, 0);
    assert!(
        snapshot.membership.snapshots_sent > 0,
        "the rejoiner fell past the retained tail, so a snapshot must move: {:?}",
        snapshot.membership
    );
    assert_eq!(suffix.decided_len(), snapshot.decided_len());
    // Every decision the compacted run still retains matches the
    // uncompacted run's value at the same absolute index; everything
    // below the compacted base is digest-covered but must exist in the
    // suffix run's full history.
    let full = &suffix.logs[0];
    for log in &snapshot.logs {
        for d in log {
            let witness = full
                .iter()
                .find(|w| w.index == d.index)
                .unwrap_or_else(|| panic!("index {} missing from the full history", d.index));
            assert_eq!(witness.value, d.value, "divergence at index {}", d.index);
        }
    }
}

/// A rejoiner *far* older than the retained tail (retain-last-2 against
/// ~40 missed decisions) still converges: the gap signal, snapshot
/// install, and follow-up suffix chunks compose across any gap size.
#[test]
fn rejoiner_far_older_than_the_retained_tail_converges() {
    let report = run_service(chen(), &rejoin_scenario(Some(2)));
    assert!(report.agreement_holds());
    assert!(report.live_logs_converged(), "{:?}", report.logs);
    assert_eq!(report.membership.decisions_lost, 0);
    assert!(report.membership.snapshots_sent > 0);
    assert!(
        report.bases.iter().any(|&b| b > 0),
        "retain-last-2 must actually compact: {:?}",
        report.bases
    );
    assert!(
        !report.membership.rejoin_latencies.is_empty(),
        "the heal must resolve into a measured rejoin"
    );
}

/// Same outage family as [`rejoin_scenario`] but with a workload deep
/// enough (~57 decisions) that the compacted base passes the rejoiner
/// even when the retained tail is wider than one sync datagram.
fn deep_rejoin_scenario(retain: u64) -> ServiceScenario {
    let mut scenario = ServiceScenario {
        online: OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(30_000),
            seed: 11,
            heal_merge: true,
            schedule: FaultSchedule::new()
                .at(ms(2_000), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(19_000), Fault::Heal),
            ..OnlineScenario::default()
        },
        ..ServiceScenario::default()
    }
    .with_compaction(CompactionPolicy::retain_last(retain));
    let mut at = 1_000;
    let mut value = 500;
    while at <= 17_800 {
        scenario = scenario.command(ms(at), p((value as usize) % 3), value);
        at += 300;
        value += 1;
    }
    scenario
}

/// A retained tail wider than one sync datagram (`MAX_SYNC_ENTRIES` =
/// 32) must still hand off completely: the snapshot reply carries the
/// digest summary plus only the *first* 32-entry chunk, and the
/// rejoiner's follow-up suffix request pulls the remainder. The healed
/// log must match the majority's entry-exactly — values *and* view
/// stamps — not merely value-wise.
#[test]
fn snapshot_handoff_chunks_a_retained_tail_wider_than_one_datagram() {
    let report = run_service(chen(), &deep_rejoin_scenario(40));
    assert!(report.agreement_holds());
    assert!(report.live_logs_converged(), "{:?}", report.logs);
    assert_eq!(report.membership.decisions_lost, 0);
    assert!(
        report.membership.snapshots_sent > 0,
        "the rejoiner fell past the retained tail, so a snapshot must move: {:?}",
        report.membership
    );
    assert!(
        report.bases.iter().any(|&b| b > 0),
        "retain-last-40 must actually compact ~57 decisions: {:?}",
        report.bases
    );
    // The cell only proves chunking if some final retained tail is
    // genuinely wider than one datagram.
    assert!(
        report.logs.iter().any(|log| log.len() > MAX_SYNC_ENTRIES),
        "retained tails never exceeded one sync chunk: {:?}",
        report.logs.iter().map(Vec::len).collect::<Vec<_>>()
    );
    // Entry-exact convergence across the fleet: every retained decision
    // matches the reference replica's full record at the same absolute
    // index (value, view id, view membership), so the snapshot + chunked
    // suffix handoff reconstructed the tail verbatim.
    let reference = &report.logs[0];
    for log in &report.logs {
        for d in log {
            let witness = reference
                .iter()
                .find(|w| w.index == d.index)
                .unwrap_or_else(|| panic!("index {} missing from the reference log", d.index));
            assert_eq!(
                witness, d,
                "handoff rewrote the record at index {}",
                d.index
            );
        }
    }
}

// ---- out-of-range ProcessId regressions (the PR 2 panic family) ------

/// `MembershipWatcher::observe` with a member index beyond the fleet
/// used to panic on its per-member bookkeeping vectors.
#[test]
fn watcher_observe_ignores_out_of_range_members() {
    let mut w = MembershipWatcher::new(3);
    let v = ProcessSet::full(3);
    w.observe(ms(10), vec![(p(0), 1, v), (p(120), 7, v)]);
    let report = w.report();
    assert_eq!(report.view_changes, 1, "only the in-range member counts");
}

/// Ground-truth notes about processes outside the fleet are ignored
/// rather than indexed.
#[test]
fn watcher_notes_ignore_out_of_range_processes() {
    let mut w = MembershipWatcher::new(2);
    w.note_crash(p(90), ms(5));
    w.note_recover(p(91));
    let report = w.report();
    assert_eq!(report.exclusion_latency.len(), 2);
    assert!(report.false_exclusions.is_empty());
}

/// A heartbeat claiming a wild sender index (arbitrary u16 from the
/// wire) used to panic `ProcessId::new` inside the membership drain.
#[test]
fn membership_survives_heartbeats_with_wild_senders() {
    let clock = VirtualClock::new();
    let net = InMemoryNetwork::new(2, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
    let mut node =
        MembershipNode::new(2, chen(), net.endpoint(p(1)), clock.clone(), ms(50)).with_heal_merge();
    let hostile = net.endpoint(p(0));
    for sender in [2u16, 127, 128, 999, u16::MAX] {
        hostile.send(
            p(1),
            encode(&WireMsg::Heartbeat(Heartbeat {
                sender,
                seq: 1,
                sent_at: Nanos::ZERO,
            })),
        );
    }
    clock.advance(ms(10));
    node.poll(); // must not panic
    assert_eq!(node.view().members, ProcessSet::full(2));
}

/// Same guard on the plain detector node loop.
#[test]
fn detector_node_survives_heartbeats_with_wild_senders() {
    let clock = VirtualClock::new();
    let net = InMemoryNetwork::new(2, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
    let mut node = DetectorNode::new(2, chen(), net.endpoint(p(1)), clock.clone(), ms(50));
    let hostile = net.endpoint(p(0));
    hostile.send(
        p(1),
        encode(&WireMsg::Heartbeat(Heartbeat {
            sender: 40_000,
            seq: 0,
            sent_at: Nanos::ZERO,
        })),
    );
    clock.advance(ms(10));
    assert!(node.poll().is_empty());
}

/// Hostile service frames: a decision relay at an absurd index and a
/// sync chunk claiming a near-overflow start must be absorbed without
/// panicking or corrupting the log.
#[test]
fn service_node_absorbs_hostile_frames() {
    let n = 3;
    let clock = VirtualClock::new();
    let net = InMemoryNetwork::new(n, NetworkConfig::reliable(ms(1), ms(2)), clock.clone());
    let mut runner = ServiceRunner::new(
        chen(),
        ServiceScenario {
            online: OnlineScenario {
                n,
                duration: ms(2_000),
                ..OnlineScenario::default()
            },
            ..ServiceScenario::default()
        },
    );
    // The runner owns its own network; craft hostile traffic on a
    // second fleet sharing the codec instead.
    let mut victim = rfd_net::service::DecisionService::new(
        n,
        chen(),
        net.endpoint(p(1)),
        clock.clone(),
        ms(50),
    );
    let hostile = net.endpoint(p(0));
    hostile.send(
        p(1),
        encode(&WireMsg::Decided(DecidedMsg {
            index: u64::MAX,
            view_id: u64::MAX,
            view_members: u128::MAX,
            value: 7,
        })),
    );
    hostile.send(
        p(1),
        encode(&WireMsg::SyncReply(SyncReply {
            start: u64::MAX - 1,
            entries: vec![(1, 1, 1), (2, 2, 2)],
        })),
    );
    hostile.send(p(1), bytes::Bytes::from_static(b"\xfd\x02\x07garbage"));
    clock.advance(ms(10));
    let _ = victim.poll(); // must not panic
    assert!(
        victim.log().is_empty(),
        "hostile frames must not mint decisions"
    );
    // And the real runner still works end to end afterwards.
    runner.run_to_end();
    assert!(runner.report().agreement_holds());
}
