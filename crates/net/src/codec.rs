//! Wire format for heartbeats, membership and decision-service messages.
//!
//! One magic, one tag byte per message kind. Decoding is total: any byte
//! string returns `Ok` or a [`DecodeError`] — never a panic, never an
//! attacker-controlled allocation (list lengths are validated against
//! both a hard cap and the bytes actually present). The service-layer
//! messages (tags 3–7) carry the live replicated log:
//! [`Command`] gossips client submissions, [`ConsensusFrame`] wraps one
//! slot-scoped message of the rotating-coordinator consensus,
//! [`DecidedMsg`] relays decisions TRB-style, and
//! [`SyncRequest`]/[`SyncReply`] implement post-heal state transfer.

use crate::clock::Nanos;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rfd_algo::consensus::RotatingMsg;
use rfd_core::{ProcessId, ProcessSet};

const MAGIC: u16 = 0xFD02; // "failure detector, DSN'02"

/// Hard cap on log entries per [`SyncReply`] datagram: keeps every
/// chunk under a typical MTU and bounds what a corrupt length field can
/// make the decoder allocate.
pub const MAX_SYNC_ENTRIES: usize = 32;

/// A heartbeat message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender index.
    pub sender: u16,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// Sender-local send time.
    pub sent_at: Nanos,
}

/// A view-change announcement (membership layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewChange {
    /// Monotone view identifier.
    pub view_id: u64,
    /// Member bitmap (bit `i` = `pᵢ` is in the view).
    pub members: u128,
}

/// A client command gossiped to the group (service layer). The value
/// alone identifies the command — values must be unique per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Command {
    /// The command value.
    pub value: u64,
}

/// One slot-scoped message of the rotating-coordinator consensus the
/// decision service runs per log index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusFrame {
    /// The log slot (consensus instance) the message belongs to.
    pub slot: u64,
    /// The wrapped consensus message.
    pub msg: RotatingMsg<u64>,
}

/// A decision announcement, relayed TRB-style so every member — even
/// one that sat out the deciding quorum — learns the log entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecidedMsg {
    /// The log index.
    pub index: u64,
    /// Id of the view the decision was taken in.
    pub view_id: u64,
    /// Member bitmap of that view (the tiebreaker of the total view
    /// order used to resolve conflicting suffixes on merge).
    pub view_members: u128,
    /// The decided command.
    pub value: u64,
}

/// A state-transfer request: "send me your decision log from
/// `from_index`" — issued after a view change re-admits members.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncRequest {
    /// First log index the requester is missing.
    pub from_index: u64,
}

/// A state-transfer chunk: a contiguous run of decision-log entries
/// starting at `start` (at most [`MAX_SYNC_ENTRIES`] per datagram).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncReply {
    /// Index of the first entry.
    pub start: u64,
    /// `(value, view_id, view_members)` per consecutive entry.
    pub entries: Vec<(u64, u64, u128)>,
}

/// Any wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// A heartbeat.
    Heartbeat(Heartbeat),
    /// A view change.
    ViewChange(ViewChange),
    /// A client command submission (service layer).
    Command(Command),
    /// A slot-scoped consensus message (service layer).
    Consensus(ConsensusFrame),
    /// A decision relay (service layer).
    Decided(DecidedMsg),
    /// A state-transfer request (service layer).
    SyncRequest(SyncRequest),
    /// A state-transfer chunk (service layer).
    SyncReply(SyncReply),
}

/// Encoding/decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The datagram is shorter than its header claims.
    Truncated,
    /// Unknown magic or message tag.
    Malformed,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::Malformed => write!(f, "unknown magic or tag"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a message.
///
/// # Panics
///
/// Panics if a [`SyncReply`] carries more than [`MAX_SYNC_ENTRIES`]
/// entries — senders must chunk.
#[must_use]
pub fn encode(msg: &WireMsg) -> Bytes {
    let mut b = BytesMut::with_capacity(40);
    b.put_u16(MAGIC);
    match msg {
        WireMsg::Heartbeat(hb) => {
            b.put_u8(1);
            b.put_u16(hb.sender);
            b.put_u64(hb.seq);
            b.put_u64(hb.sent_at.as_nanos());
        }
        WireMsg::ViewChange(vc) => {
            b.put_u8(2);
            b.put_u64(vc.view_id);
            b.put_u128(vc.members);
        }
        WireMsg::Command(c) => {
            b.put_u8(3);
            b.put_u64(c.value);
        }
        WireMsg::Consensus(frame) => {
            b.put_u8(4);
            b.put_u64(frame.slot);
            match &frame.msg {
                RotatingMsg::Estimate { r, ts, v } => {
                    b.put_u8(1);
                    b.put_u64(*r);
                    b.put_u64(*ts);
                    b.put_u64(*v);
                }
                RotatingMsg::Propose { r, v } => {
                    b.put_u8(2);
                    b.put_u64(*r);
                    b.put_u64(*v);
                }
                RotatingMsg::Ack { r } => {
                    b.put_u8(3);
                    b.put_u64(*r);
                }
                RotatingMsg::Nack { r } => {
                    b.put_u8(4);
                    b.put_u64(*r);
                }
                RotatingMsg::Decide(v) => {
                    b.put_u8(5);
                    b.put_u64(*v);
                }
            }
        }
        WireMsg::Decided(d) => {
            b.put_u8(5);
            b.put_u64(d.index);
            b.put_u64(d.view_id);
            b.put_u128(d.view_members);
            b.put_u64(d.value);
        }
        WireMsg::SyncRequest(s) => {
            b.put_u8(6);
            b.put_u64(s.from_index);
        }
        WireMsg::SyncReply(s) => {
            assert!(
                s.entries.len() <= MAX_SYNC_ENTRIES,
                "SyncReply overflows a chunk: {} entries",
                s.entries.len()
            );
            b.put_u8(7);
            b.put_u64(s.start);
            b.put_u16(s.entries.len() as u16);
            for (value, view_id, view_members) in &s.entries {
                b.put_u64(*value);
                b.put_u64(*view_id);
                b.put_u128(*view_members);
            }
        }
    }
    b.freeze()
}

/// Decodes a datagram.
///
/// # Errors
///
/// Returns [`DecodeError`] on short or malformed input.
pub fn decode(mut data: &[u8]) -> Result<WireMsg, DecodeError> {
    if data.len() < 3 {
        return Err(DecodeError::Truncated);
    }
    if data.get_u16() != MAGIC {
        return Err(DecodeError::Malformed);
    }
    match data.get_u8() {
        1 => {
            if data.len() < 2 + 8 + 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireMsg::Heartbeat(Heartbeat {
                sender: data.get_u16(),
                seq: data.get_u64(),
                sent_at: Nanos::from_nanos(data.get_u64()),
            }))
        }
        2 => {
            if data.len() < 8 + 16 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireMsg::ViewChange(ViewChange {
                view_id: data.get_u64(),
                members: data.get_u128(),
            }))
        }
        3 => {
            if data.len() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireMsg::Command(Command {
                value: data.get_u64(),
            }))
        }
        4 => {
            if data.len() < 8 + 1 {
                return Err(DecodeError::Truncated);
            }
            let slot = data.get_u64();
            let kind = data.get_u8();
            let need = match kind {
                1 => 24,
                2 => 16,
                3..=5 => 8,
                _ => return Err(DecodeError::Malformed),
            };
            if data.len() < need {
                return Err(DecodeError::Truncated);
            }
            let msg = match kind {
                1 => RotatingMsg::Estimate {
                    r: data.get_u64(),
                    ts: data.get_u64(),
                    v: data.get_u64(),
                },
                2 => RotatingMsg::Propose {
                    r: data.get_u64(),
                    v: data.get_u64(),
                },
                3 => RotatingMsg::Ack { r: data.get_u64() },
                4 => RotatingMsg::Nack { r: data.get_u64() },
                _ => RotatingMsg::Decide(data.get_u64()),
            };
            Ok(WireMsg::Consensus(ConsensusFrame { slot, msg }))
        }
        5 => {
            if data.len() < 8 + 8 + 16 + 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireMsg::Decided(DecidedMsg {
                index: data.get_u64(),
                view_id: data.get_u64(),
                view_members: data.get_u128(),
                value: data.get_u64(),
            }))
        }
        6 => {
            if data.len() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireMsg::SyncRequest(SyncRequest {
                from_index: data.get_u64(),
            }))
        }
        7 => {
            if data.len() < 8 + 2 {
                return Err(DecodeError::Truncated);
            }
            let start = data.get_u64();
            let count = usize::from(data.get_u16());
            if count > MAX_SYNC_ENTRIES {
                return Err(DecodeError::Malformed);
            }
            if data.len() < count * (8 + 8 + 16) {
                return Err(DecodeError::Truncated);
            }
            let entries = (0..count)
                .map(|_| (data.get_u64(), data.get_u64(), data.get_u128()))
                .collect();
            Ok(WireMsg::SyncReply(SyncReply { start, entries }))
        }
        _ => Err(DecodeError::Malformed),
    }
}

/// Converts a member bitmap to a [`ProcessSet`].
#[must_use]
pub fn members_to_set(members: u128, n: usize) -> ProcessSet {
    (0..n)
        .filter(|&ix| members & (1u128 << ix) != 0)
        .map(ProcessId::new)
        .collect()
}

/// Converts a [`ProcessSet`] to a member bitmap.
#[must_use]
pub fn set_to_members(set: ProcessSet) -> u128 {
    set.iter()
        .fold(0u128, |acc, pid| acc | (1u128 << pid.index()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_roundtrip() {
        let hb = WireMsg::Heartbeat(Heartbeat {
            sender: 3,
            seq: 99,
            sent_at: Nanos::from_millis(1234),
        });
        assert_eq!(decode(&encode(&hb)).unwrap(), hb);
    }

    #[test]
    fn view_change_roundtrip() {
        let vc = WireMsg::ViewChange(ViewChange {
            view_id: 7,
            members: 0b1011,
        });
        assert_eq!(decode(&encode(&vc)).unwrap(), vc);
    }

    #[test]
    fn junk_is_rejected() {
        assert_eq!(decode(b""), Err(DecodeError::Truncated));
        assert_eq!(
            decode(b"\x00\x01\x05junkjunkjunk"),
            Err(DecodeError::Malformed)
        );
        // Right magic, bad tag.
        assert_eq!(decode(&[0xFD, 0x02, 9, 0, 0]), Err(DecodeError::Malformed));
        // Right magic and tag, short body.
        assert_eq!(decode(&[0xFD, 0x02, 1, 0]), Err(DecodeError::Truncated));
    }

    #[test]
    fn service_messages_roundtrip() {
        let msgs = vec![
            WireMsg::Command(Command { value: 41 }),
            WireMsg::Consensus(ConsensusFrame {
                slot: 9,
                msg: RotatingMsg::Estimate { r: 4, ts: 2, v: 17 },
            }),
            WireMsg::Consensus(ConsensusFrame {
                slot: 0,
                msg: RotatingMsg::Decide(5),
            }),
            WireMsg::Decided(DecidedMsg {
                index: 3,
                view_id: 2,
                view_members: 0b1011,
                value: 7,
            }),
            WireMsg::SyncRequest(SyncRequest { from_index: 12 }),
            WireMsg::SyncReply(SyncReply {
                start: 4,
                entries: vec![(10, 1, 0b111), (11, 2, 0b011)],
            }),
        ];
        for msg in msgs {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn sync_reply_rejects_an_inflated_count() {
        let good = encode(&WireMsg::SyncReply(SyncReply {
            start: 0,
            entries: vec![(1, 1, 1)],
        }));
        let mut bad = good.to_vec();
        // The count field sits after magic (2), tag (1) and start (8).
        bad[11] = 0xFF;
        bad[12] = 0xFF;
        assert_eq!(decode(&bad), Err(DecodeError::Malformed));
        bad[11] = 0;
        bad[12] = 9; // claims 9 entries, carries 1
        assert_eq!(decode(&bad), Err(DecodeError::Truncated));
    }

    #[test]
    fn member_bitmap_roundtrip() {
        let set: ProcessSet = [0usize, 2, 5].iter().map(|&i| ProcessId::new(i)).collect();
        assert_eq!(members_to_set(set_to_members(set), 8), set);
    }
}
