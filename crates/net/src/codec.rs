//! Wire format for heartbeats and membership messages.

use crate::clock::Nanos;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rfd_core::{ProcessId, ProcessSet};

const MAGIC: u16 = 0xFD02; // "failure detector, DSN'02"

/// A heartbeat message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender index.
    pub sender: u16,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// Sender-local send time.
    pub sent_at: Nanos,
}

/// A view-change announcement (membership layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewChange {
    /// Monotone view identifier.
    pub view_id: u64,
    /// Member bitmap (bit `i` = `pᵢ` is in the view).
    pub members: u128,
}

/// Any wire message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// A heartbeat.
    Heartbeat(Heartbeat),
    /// A view change.
    ViewChange(ViewChange),
}

/// Encoding/decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The datagram is shorter than its header claims.
    Truncated,
    /// Unknown magic or message tag.
    Malformed,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::Malformed => write!(f, "unknown magic or tag"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a message.
#[must_use]
pub fn encode(msg: &WireMsg) -> Bytes {
    let mut b = BytesMut::with_capacity(40);
    b.put_u16(MAGIC);
    match msg {
        WireMsg::Heartbeat(hb) => {
            b.put_u8(1);
            b.put_u16(hb.sender);
            b.put_u64(hb.seq);
            b.put_u64(hb.sent_at.as_nanos());
        }
        WireMsg::ViewChange(vc) => {
            b.put_u8(2);
            b.put_u64(vc.view_id);
            b.put_u128(vc.members);
        }
    }
    b.freeze()
}

/// Decodes a datagram.
///
/// # Errors
///
/// Returns [`DecodeError`] on short or malformed input.
pub fn decode(mut data: &[u8]) -> Result<WireMsg, DecodeError> {
    if data.len() < 3 {
        return Err(DecodeError::Truncated);
    }
    if data.get_u16() != MAGIC {
        return Err(DecodeError::Malformed);
    }
    match data.get_u8() {
        1 => {
            if data.len() < 2 + 8 + 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireMsg::Heartbeat(Heartbeat {
                sender: data.get_u16(),
                seq: data.get_u64(),
                sent_at: Nanos::from_nanos(data.get_u64()),
            }))
        }
        2 => {
            if data.len() < 8 + 16 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireMsg::ViewChange(ViewChange {
                view_id: data.get_u64(),
                members: data.get_u128(),
            }))
        }
        _ => Err(DecodeError::Malformed),
    }
}

/// Converts a member bitmap to a [`ProcessSet`].
#[must_use]
pub fn members_to_set(members: u128, n: usize) -> ProcessSet {
    (0..n)
        .filter(|&ix| members & (1u128 << ix) != 0)
        .map(ProcessId::new)
        .collect()
}

/// Converts a [`ProcessSet`] to a member bitmap.
#[must_use]
pub fn set_to_members(set: ProcessSet) -> u128 {
    set.iter()
        .fold(0u128, |acc, pid| acc | (1u128 << pid.index()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_roundtrip() {
        let hb = WireMsg::Heartbeat(Heartbeat {
            sender: 3,
            seq: 99,
            sent_at: Nanos::from_millis(1234),
        });
        assert_eq!(decode(&encode(&hb)).unwrap(), hb);
    }

    #[test]
    fn view_change_roundtrip() {
        let vc = WireMsg::ViewChange(ViewChange {
            view_id: 7,
            members: 0b1011,
        });
        assert_eq!(decode(&encode(&vc)).unwrap(), vc);
    }

    #[test]
    fn junk_is_rejected() {
        assert_eq!(decode(b""), Err(DecodeError::Truncated));
        assert_eq!(
            decode(b"\x00\x01\x05junkjunkjunk"),
            Err(DecodeError::Malformed)
        );
        // Right magic, bad tag.
        assert_eq!(decode(&[0xFD, 0x02, 9, 0, 0]), Err(DecodeError::Malformed));
        // Right magic and tag, short body.
        assert_eq!(decode(&[0xFD, 0x02, 1, 0]), Err(DecodeError::Truncated));
    }

    #[test]
    fn member_bitmap_roundtrip() {
        let set: ProcessSet = [0usize, 2, 5].iter().map(|&i| ProcessId::new(i)).collect();
        assert_eq!(members_to_set(set_to_members(set), 8), set);
    }
}
