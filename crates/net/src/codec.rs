//! Wire format for heartbeats, membership and decision-service messages.
//!
//! One magic, one tag byte per message kind. Decoding is total: any byte
//! string returns `Ok` or a [`DecodeError`] — never a panic, never an
//! attacker-controlled allocation (list lengths are validated against
//! both a hard cap and the bytes actually present). The service-layer
//! messages (tags 3–7) carry the live replicated log:
//! [`Command`] gossips client submissions, [`ConsensusFrame`] wraps one
//! slot-scoped message of the rotating-coordinator consensus,
//! [`DecidedMsg`] relays decisions TRB-style, and
//! [`SyncRequest`]/[`SyncReply`] implement post-heal state transfer.
//! Tag 8 is a [`Batch`](WireMsg::Batch): every frame a node owes one
//! destination in one tick, packed into a single datagram. Tags 9–10
//! ([`SnapshotRequest`]/[`SnapshotReply`]) implement fast rejoin: a
//! rejoiner whose log fell behind the compacted base receives a
//! view-stamped prefix summary instead of a replay of history. The
//! full field-layout reference lives in `docs/WIRE.md`.
//!
//! ## Allocation-free paths and the buffer-reuse contract
//!
//! The codec has two tiers:
//!
//! * **Owned**: [`encode`] returns a fresh [`Bytes`]; [`decode`] returns
//!   a [`WireMsg`], allocating only for variants with variable-length
//!   payloads ([`SyncReply`], [`Batch`](WireMsg::Batch)).
//! * **Zero-copy**: [`encode_into`] writes into a caller-supplied
//!   [`BytesMut`] — it **clears the buffer first** (the frame replaces
//!   any previous content; it never appends), so a warmed buffer is
//!   reused allocation-free. [`decode_borrowed`] returns a
//!   [`WireView`] that borrows variable-length payloads from the
//!   datagram instead of copying them out.
//!
//! The owned functions are thin shims over the zero-copy tier and
//! accept/produce byte-identical frames.

use crate::clock::Nanos;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rfd_algo::consensus::RotatingMsg;
use rfd_core::{ProcessId, ProcessSet};

const MAGIC: u16 = 0xFD02; // "failure detector, DSN'02"

/// The wire tag constants — one per frame kind, single source of truth.
///
/// Every tag must appear in the encode dispatch, in
/// [`decode_borrowed`]'s match, as a [`WireMsg`]/[`WireView`] variant,
/// and as a row of ARCHITECTURE.md's tag table; `rfd-lint`'s wire-tag
/// exhaustiveness check cross-checks all five places so a new tag
/// cannot ship half-wired.
pub mod tags {
    /// [`Heartbeat`](super::Heartbeat) liveness evidence.
    pub const HEARTBEAT: u8 = 1;
    /// [`ViewChange`](super::ViewChange) coordinator announcements.
    pub const VIEW_CHANGE: u8 = 2;
    /// [`Command`](super::Command) client-command gossip.
    pub const COMMAND: u8 = 3;
    /// [`ConsensusFrame`](super::ConsensusFrame) slot-scoped consensus.
    pub const CONSENSUS: u8 = 4;
    /// [`DecidedMsg`](super::DecidedMsg) TRB-style decision relay.
    pub const DECIDED: u8 = 5;
    /// [`SyncRequest`](super::SyncRequest) state-transfer request.
    pub const SYNC_REQUEST: u8 = 6;
    /// [`SyncReply`](super::SyncReply) state-transfer chunk.
    pub const SYNC_REPLY: u8 = 7;
    /// [`Batch`](super::WireMsg::Batch) coalesced frames.
    pub const BATCH: u8 = 8;
    /// [`SnapshotRequest`](super::SnapshotRequest) fast-rejoin request.
    pub const SNAPSHOT_REQUEST: u8 = 9;
    /// [`SnapshotReply`](super::SnapshotReply) compacted-prefix summary.
    pub const SNAPSHOT_REPLY: u8 = 10;
}

/// Hard cap on log entries per [`SyncReply`] datagram: keeps every
/// chunk under a typical MTU and bounds what a corrupt length field can
/// make the decoder allocate.
pub const MAX_SYNC_ENTRIES: usize = 32;

/// Hard cap on sub-frames per [`Batch`](WireMsg::Batch) datagram.
pub const MAX_BATCH_FRAMES: usize = 64;

/// Bytes per [`SyncReply`] log entry on the wire.
const SYNC_ENTRY_LEN: usize = 8 + 8 + 16;

/// A heartbeat message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender index.
    pub sender: u16,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// Sender-local send time.
    pub sent_at: Nanos,
}

/// A view-change announcement (membership layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewChange {
    /// Monotone view identifier.
    pub view_id: u64,
    /// Member bitmap (bit `i` = `pᵢ` is in the view).
    pub members: u128,
}

/// A client command gossiped to the group (service layer). The value
/// alone identifies the command — values must be unique per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Command {
    /// The command value.
    pub value: u64,
}

/// One slot-scoped message of the rotating-coordinator consensus the
/// decision service runs per log index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusFrame {
    /// The log slot (consensus instance) the message belongs to.
    pub slot: u64,
    /// The wrapped consensus message.
    pub msg: RotatingMsg<u64>,
}

/// A decision announcement, relayed TRB-style so every member — even
/// one that sat out the deciding quorum — learns the log entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecidedMsg {
    /// The log index.
    pub index: u64,
    /// Id of the view the decision was taken in.
    pub view_id: u64,
    /// Member bitmap of that view (the tiebreaker of the total view
    /// order used to resolve conflicting suffixes on merge).
    pub view_members: u128,
    /// The decided command.
    pub value: u64,
}

/// A state-transfer request: "send me your decision log from
/// `from_index`" — issued after a view change re-admits members.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncRequest {
    /// First log index the requester is missing.
    pub from_index: u64,
}

/// A state-transfer chunk: a contiguous run of decision-log entries
/// starting at `start` (at most [`MAX_SYNC_ENTRIES`] per datagram).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncReply {
    /// Index of the first entry.
    pub start: u64,
    /// `(value, view_id, view_members)` per consecutive entry.
    pub entries: Vec<(u64, u64, u128)>,
}

/// A fast-rejoin request: "my log ends at `from_index`, which you said
/// is below your compacted base — send me a snapshot instead". Issued
/// when a [`SyncReply`] comes back starting *above* the requested
/// index, the responder's signal that the prefix is compacted away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotRequest {
    /// Absolute length of the requester's log (first missing index).
    pub from_index: u64,
}

/// A fast-rejoin reply: a view-stamped summary of the compacted prefix
/// `[0, upto)` plus the first chunk of the retained tail (entries start
/// at index `upto`, at most [`MAX_SYNC_ENTRIES`] per datagram — the
/// requester pulls the rest with an ordinary [`SyncRequest`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotReply {
    /// The summary covers decisions `[0, upto)`.
    pub upto: u64,
    /// Chained digest of the covered prefix.
    pub digest: u64,
    /// Id of the view the last covered decision was taken in.
    pub view_id: u64,
    /// Member bitmap of that view.
    pub view_members: u128,
    /// `(value, view_id, view_members)` per retained-tail entry,
    /// consecutive from index `upto`.
    pub entries: Vec<(u64, u64, u128)>,
}

/// Any wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// A heartbeat.
    Heartbeat(Heartbeat),
    /// A view change.
    ViewChange(ViewChange),
    /// A client command submission (service layer).
    Command(Command),
    /// A slot-scoped consensus message (service layer).
    Consensus(ConsensusFrame),
    /// A decision relay (service layer).
    Decided(DecidedMsg),
    /// A state-transfer request (service layer).
    SyncRequest(SyncRequest),
    /// A state-transfer chunk (service layer).
    SyncReply(SyncReply),
    /// A coalesced datagram: every frame a node owes one destination in
    /// one tick. Batches never nest.
    Batch(Vec<WireMsg>),
    /// A fast-rejoin request (service layer).
    SnapshotRequest(SnapshotRequest),
    /// A fast-rejoin compacted-prefix summary (service layer).
    SnapshotReply(SnapshotReply),
}

/// Encoding/decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The datagram is shorter than its header claims.
    Truncated,
    /// Unknown magic or message tag.
    Malformed,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::Malformed => write!(f, "unknown magic or tag"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A borrowed view of a decoded [`SyncReply`]: the entry array stays in
/// the datagram; [`SyncReplyView::iter`] reads entries in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncReplyView<'a> {
    /// Index of the first entry.
    pub start: u64,
    /// The raw entry array, exactly `len × 32` bytes.
    raw: &'a [u8],
}

impl<'a> SyncReplyView<'a> {
    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.len() / SYNC_ENTRY_LEN
    }

    /// Whether the chunk is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Iterates `(value, view_id, view_members)` entries in place.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u128)> + 'a {
        self.raw
            .chunks_exact(SYNC_ENTRY_LEN)
            .map(|mut chunk| (chunk.get_u64(), chunk.get_u64(), chunk.get_u128()))
    }

    /// Copies the view into an owned [`SyncReply`].
    #[must_use]
    pub fn to_owned(&self) -> SyncReply {
        SyncReply {
            start: self.start,
            entries: self.iter().collect(),
        }
    }
}

/// A borrowed view of a decoded [`SnapshotReply`]: the retained-tail
/// entry array stays in the datagram; [`SnapshotReplyView::iter`] reads
/// entries in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotReplyView<'a> {
    /// The summary covers decisions `[0, upto)`.
    pub upto: u64,
    /// Chained digest of the covered prefix.
    pub digest: u64,
    /// Id of the view the last covered decision was taken in.
    pub view_id: u64,
    /// Member bitmap of that view.
    pub view_members: u128,
    /// The raw entry array, exactly `len × 32` bytes.
    raw: &'a [u8],
}

impl<'a> SnapshotReplyView<'a> {
    /// Number of retained-tail entries included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.len() / SYNC_ENTRY_LEN
    }

    /// Whether the reply carries no tail entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Iterates `(value, view_id, view_members)` tail entries in place.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u128)> + 'a {
        self.raw
            .chunks_exact(SYNC_ENTRY_LEN)
            .map(|mut chunk| (chunk.get_u64(), chunk.get_u64(), chunk.get_u128()))
    }

    /// Copies the view into an owned [`SnapshotReply`].
    #[must_use]
    pub fn to_owned(&self) -> SnapshotReply {
        SnapshotReply {
            upto: self.upto,
            digest: self.digest,
            view_id: self.view_id,
            view_members: self.view_members,
            entries: self.iter().collect(),
        }
    }
}

/// A borrowed view of a decoded [`Batch`](WireMsg::Batch): sub-frames
/// stay in the datagram, re-parsed lazily by [`BatchView::iter`]. The
/// whole batch was validated by [`decode_borrowed`], so iteration never
/// fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchView<'a> {
    count: u8,
    /// The raw sub-frame area: `count` length-prefixed frames.
    raw: &'a [u8],
}

impl<'a> BatchView<'a> {
    /// Number of sub-frames.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.count)
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the sub-frames as borrowed views.
    #[must_use]
    pub fn iter(&self) -> BatchIter<'a> {
        BatchIter {
            remaining: self.count,
            rest: self.raw,
        }
    }
}

/// Iterator over a [`BatchView`]'s sub-frames.
#[derive(Clone, Debug)]
pub struct BatchIter<'a> {
    remaining: u8,
    rest: &'a [u8],
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = WireView<'a>;

    fn next(&mut self) -> Option<WireView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // [`decode_borrowed`] validated every sub-frame before handing
        // out the view, so these checks cannot fire — but the iterator
        // stays total anyway: on any inconsistency it ends the batch
        // instead of panicking on attacker-reachable state.
        let (prefix, after_len) = split_checked(self.rest, 2)?;
        let len = usize::from(u16::from_be_bytes(prefix.try_into().ok()?));
        let (frame, tail) = split_checked(after_len, len)?;
        self.rest = tail;
        match decode_borrowed(frame) {
            Ok(view) => Some(view),
            Err(_) => {
                debug_assert!(false, "batch was validated by decode_borrowed");
                self.remaining = 0;
                None
            }
        }
    }
}

/// `split_at` without the panic: `None` when `data` is shorter than
/// `mid`.
fn split_checked(data: &[u8], mid: usize) -> Option<(&[u8], &[u8])> {
    (data.len() >= mid).then(|| data.split_at(mid))
}

/// A decoded wire message that borrows variable-length payloads from
/// the datagram. Fixed-size frames decode to the same owned structs as
/// [`WireMsg`]; [`SyncReply`] and [`Batch`](WireMsg::Batch) stay
/// borrowed. Convert with [`WireView::into_owned`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireView<'a> {
    /// A heartbeat.
    Heartbeat(Heartbeat),
    /// A view change.
    ViewChange(ViewChange),
    /// A client command submission (service layer).
    Command(Command),
    /// A slot-scoped consensus message (service layer).
    Consensus(ConsensusFrame),
    /// A decision relay (service layer).
    Decided(DecidedMsg),
    /// A state-transfer request (service layer).
    SyncRequest(SyncRequest),
    /// A state-transfer chunk, borrowed from the datagram.
    SyncReply(SyncReplyView<'a>),
    /// A coalesced datagram, borrowed from the datagram.
    Batch(BatchView<'a>),
    /// A fast-rejoin request (service layer).
    SnapshotRequest(SnapshotRequest),
    /// A fast-rejoin summary, borrowed from the datagram.
    SnapshotReply(SnapshotReplyView<'a>),
}

impl WireView<'_> {
    /// Copies the view into an owned [`WireMsg`].
    #[must_use]
    pub fn into_owned(self) -> WireMsg {
        match self {
            WireView::Heartbeat(hb) => WireMsg::Heartbeat(hb),
            WireView::ViewChange(vc) => WireMsg::ViewChange(vc),
            WireView::Command(c) => WireMsg::Command(c),
            WireView::Consensus(frame) => WireMsg::Consensus(frame),
            WireView::Decided(d) => WireMsg::Decided(d),
            WireView::SyncRequest(s) => WireMsg::SyncRequest(s),
            WireView::SyncReply(view) => WireMsg::SyncReply(view.to_owned()),
            WireView::Batch(batch) => {
                WireMsg::Batch(batch.iter().map(WireView::into_owned).collect())
            }
            WireView::SnapshotRequest(s) => WireMsg::SnapshotRequest(s),
            WireView::SnapshotReply(view) => WireMsg::SnapshotReply(view.to_owned()),
        }
    }
}

/// The exact encoded frame length of a message, in bytes.
///
/// `encode(msg).len() == encoded_len(msg)` for every encodable message;
/// the batch encoder uses this to emit sub-frame length prefixes in one
/// forward pass.
#[must_use]
pub fn encoded_len(msg: &WireMsg) -> usize {
    let body = match msg {
        WireMsg::Heartbeat(_) => 2 + 8 + 8,
        WireMsg::ViewChange(_) => 8 + 16,
        WireMsg::Command(_) | WireMsg::SyncRequest(_) | WireMsg::SnapshotRequest(_) => 8,
        WireMsg::Consensus(frame) => {
            8 + 1
                + match frame.msg {
                    RotatingMsg::Estimate { .. } => 24,
                    RotatingMsg::Propose { .. } => 16,
                    RotatingMsg::Ack { .. } | RotatingMsg::Nack { .. } => 8,
                    RotatingMsg::Decide(_) => 8,
                }
        }
        WireMsg::Decided(_) => 8 + 8 + 16 + 8,
        WireMsg::SyncReply(s) => 8 + 2 + s.entries.len() * SYNC_ENTRY_LEN,
        WireMsg::SnapshotReply(s) => 8 + 8 + 8 + 16 + 2 + s.entries.len() * SYNC_ENTRY_LEN,
        WireMsg::Batch(frames) => 1 + frames.iter().map(|sub| 2 + encoded_len(sub)).sum::<usize>(),
    };
    2 + 1 + body
}

/// Encodes a message into `buf`, **clearing it first** — the frame
/// replaces any previous content. Reusing one warmed buffer across
/// calls is allocation-free once it has reached its steady capacity.
///
/// # Panics
///
/// Panics if a [`SyncReply`] or [`SnapshotReply`] carries more than
/// [`MAX_SYNC_ENTRIES`] entries, a [`Batch`](WireMsg::Batch) more than
/// [`MAX_BATCH_FRAMES`] sub-frames, or a batch nests another batch —
/// senders must chunk and flatten.
pub fn encode_into(msg: &WireMsg, buf: &mut BytesMut) {
    // One uniqueness check for the whole frame: write through the
    // backing vector instead of paying `Arc::make_mut` per field.
    let v = buf.as_mut_vec();
    v.clear();
    v.reserve(encoded_len(msg));
    encode_frame(msg, v);
}

/// Appends one full frame (magic, tag, body) to `buf`.
fn encode_frame(msg: &WireMsg, b: &mut Vec<u8>) {
    b.put_u16(MAGIC);
    match msg {
        WireMsg::Heartbeat(hb) => {
            b.put_u8(tags::HEARTBEAT);
            b.put_u16(hb.sender);
            b.put_u64(hb.seq);
            b.put_u64(hb.sent_at.as_nanos());
        }
        WireMsg::ViewChange(vc) => {
            b.put_u8(tags::VIEW_CHANGE);
            b.put_u64(vc.view_id);
            b.put_u128(vc.members);
        }
        WireMsg::Command(c) => {
            b.put_u8(tags::COMMAND);
            b.put_u64(c.value);
        }
        WireMsg::Consensus(frame) => {
            b.put_u8(tags::CONSENSUS);
            b.put_u64(frame.slot);
            match &frame.msg {
                RotatingMsg::Estimate { r, ts, v } => {
                    b.put_u8(1);
                    b.put_u64(*r);
                    b.put_u64(*ts);
                    b.put_u64(*v);
                }
                RotatingMsg::Propose { r, v } => {
                    b.put_u8(2);
                    b.put_u64(*r);
                    b.put_u64(*v);
                }
                RotatingMsg::Ack { r } => {
                    b.put_u8(3);
                    b.put_u64(*r);
                }
                RotatingMsg::Nack { r } => {
                    b.put_u8(4);
                    b.put_u64(*r);
                }
                RotatingMsg::Decide(v) => {
                    b.put_u8(5);
                    b.put_u64(*v);
                }
            }
        }
        WireMsg::Decided(d) => {
            b.put_u8(tags::DECIDED);
            b.put_u64(d.index);
            b.put_u64(d.view_id);
            b.put_u128(d.view_members);
            b.put_u64(d.value);
        }
        WireMsg::SyncRequest(s) => {
            b.put_u8(tags::SYNC_REQUEST);
            b.put_u64(s.from_index);
        }
        WireMsg::SyncReply(s) => {
            assert!(
                s.entries.len() <= MAX_SYNC_ENTRIES,
                "SyncReply overflows a chunk: {} entries",
                s.entries.len()
            );
            b.put_u8(tags::SYNC_REPLY);
            b.put_u64(s.start);
            #[allow(clippy::cast_possible_truncation)]
            b.put_u16(s.entries.len() as u16);
            for (value, view_id, view_members) in &s.entries {
                b.put_u64(*value);
                b.put_u64(*view_id);
                b.put_u128(*view_members);
            }
        }
        WireMsg::SnapshotRequest(s) => {
            b.put_u8(tags::SNAPSHOT_REQUEST);
            b.put_u64(s.from_index);
        }
        WireMsg::SnapshotReply(s) => {
            assert!(
                s.entries.len() <= MAX_SYNC_ENTRIES,
                "SnapshotReply overflows a chunk: {} entries",
                s.entries.len()
            );
            b.put_u8(tags::SNAPSHOT_REPLY);
            b.put_u64(s.upto);
            b.put_u64(s.digest);
            b.put_u64(s.view_id);
            b.put_u128(s.view_members);
            #[allow(clippy::cast_possible_truncation)]
            b.put_u16(s.entries.len() as u16);
            for (value, view_id, view_members) in &s.entries {
                b.put_u64(*value);
                b.put_u64(*view_id);
                b.put_u128(*view_members);
            }
        }
        WireMsg::Batch(frames) => put_batch_body(frames, b),
    }
}

/// Appends a batch tag and body: sub-frame count, then each sub-frame
/// length-prefixed. Shared by the [`WireMsg::Batch`] arm of the frame
/// encoder and the slice-based [`encode_batch_into`].
fn put_batch_body(frames: &[WireMsg], b: &mut Vec<u8>) {
    assert!(
        frames.len() <= MAX_BATCH_FRAMES,
        "Batch overflows a datagram: {} frames",
        frames.len()
    );
    b.put_u8(tags::BATCH);
    #[allow(clippy::cast_possible_truncation)]
    b.put_u8(frames.len() as u8);
    for sub in frames {
        assert!(
            !matches!(sub, WireMsg::Batch(_)),
            "batches must not nest — flatten before encoding"
        );
        let len = encoded_len(sub);
        #[allow(clippy::cast_possible_truncation)]
        b.put_u16(len as u16);
        encode_frame(sub, b);
    }
}

/// Encodes a [`Batch`](WireMsg::Batch) frame directly from a slice of
/// sub-frames, **clearing `buf` first** exactly like [`encode_into`].
/// The coalescing send paths reuse one frame list and one buffer per
/// tick without ever building a `WireMsg::Batch` (whose `Vec` would
/// allocate every tick). Byte-identical to
/// `encode_into(&WireMsg::Batch(frames.to_vec()), buf)`.
///
/// # Panics
///
/// As [`encode_into`] of the equivalent [`WireMsg::Batch`].
pub fn encode_batch_into(frames: &[WireMsg], buf: &mut BytesMut) {
    let total = 2 + 1 + 1 + frames.iter().map(|sub| 2 + encoded_len(sub)).sum::<usize>();
    let v = buf.as_mut_vec();
    v.clear();
    v.reserve(total);
    v.put_u16(MAGIC);
    put_batch_body(frames, v);
}

/// Encodes a message into a fresh buffer. Thin shim over
/// [`encode_into`]; hot paths should reuse a buffer instead.
///
/// # Panics
///
/// As [`encode_into`].
#[must_use]
pub fn encode(msg: &WireMsg) -> Bytes {
    let mut b = BytesMut::with_capacity(encoded_len(msg));
    encode_frame(msg, b.as_mut_vec());
    b.freeze()
}

/// Decodes a datagram into a borrowed [`WireView`] — variable-length
/// payloads ([`SyncReply`], [`Batch`](WireMsg::Batch)) stay in `data`;
/// nothing is copied or allocated. Batches are validated sub-frame by
/// sub-frame here, so [`BatchView::iter`] cannot fail later; nested
/// batches are rejected as [`DecodeError::Malformed`].
///
/// # Errors
///
/// Returns [`DecodeError`] on short or malformed input.
pub fn decode_borrowed(mut data: &[u8]) -> Result<WireView<'_>, DecodeError> {
    if data.len() < 3 {
        return Err(DecodeError::Truncated);
    }
    if data.get_u16() != MAGIC {
        return Err(DecodeError::Malformed);
    }
    match data.get_u8() {
        tags::HEARTBEAT => {
            if data.len() < 2 + 8 + 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireView::Heartbeat(Heartbeat {
                sender: data.get_u16(),
                seq: data.get_u64(),
                sent_at: Nanos::from_nanos(data.get_u64()),
            }))
        }
        tags::VIEW_CHANGE => {
            if data.len() < 8 + 16 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireView::ViewChange(ViewChange {
                view_id: data.get_u64(),
                members: data.get_u128(),
            }))
        }
        tags::COMMAND => {
            if data.len() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireView::Command(Command {
                value: data.get_u64(),
            }))
        }
        tags::CONSENSUS => {
            if data.len() < 8 + 1 {
                return Err(DecodeError::Truncated);
            }
            let slot = data.get_u64();
            let kind = data.get_u8();
            let need = match kind {
                1 => 24,
                2 => 16,
                3..=5 => 8,
                _ => return Err(DecodeError::Malformed),
            };
            if data.len() < need {
                return Err(DecodeError::Truncated);
            }
            let msg = match kind {
                1 => RotatingMsg::Estimate {
                    r: data.get_u64(),
                    ts: data.get_u64(),
                    v: data.get_u64(),
                },
                2 => RotatingMsg::Propose {
                    r: data.get_u64(),
                    v: data.get_u64(),
                },
                3 => RotatingMsg::Ack { r: data.get_u64() },
                4 => RotatingMsg::Nack { r: data.get_u64() },
                _ => RotatingMsg::Decide(data.get_u64()),
            };
            Ok(WireView::Consensus(ConsensusFrame { slot, msg }))
        }
        tags::DECIDED => {
            if data.len() < 8 + 8 + 16 + 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireView::Decided(DecidedMsg {
                index: data.get_u64(),
                view_id: data.get_u64(),
                view_members: data.get_u128(),
                value: data.get_u64(),
            }))
        }
        tags::SYNC_REQUEST => {
            if data.len() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireView::SyncRequest(SyncRequest {
                from_index: data.get_u64(),
            }))
        }
        tags::SYNC_REPLY => {
            if data.len() < 8 + 2 {
                return Err(DecodeError::Truncated);
            }
            let start = data.get_u64();
            let count = usize::from(data.get_u16());
            if count > MAX_SYNC_ENTRIES {
                return Err(DecodeError::Malformed);
            }
            let Some(raw) = data.get(..count * SYNC_ENTRY_LEN) else {
                return Err(DecodeError::Truncated);
            };
            Ok(WireView::SyncReply(SyncReplyView { start, raw }))
        }
        tags::BATCH => {
            if data.is_empty() {
                return Err(DecodeError::Truncated);
            }
            let count = data.get_u8();
            if usize::from(count) > MAX_BATCH_FRAMES {
                return Err(DecodeError::Malformed);
            }
            let raw = data;
            let mut rest = data;
            for _ in 0..count {
                if rest.len() < 2 {
                    return Err(DecodeError::Truncated);
                }
                let len = usize::from(rest.get_u16());
                if rest.len() < len {
                    return Err(DecodeError::Truncated);
                }
                let (frame, tail) = rest.split_at(len);
                if matches!(decode_borrowed(frame)?, WireView::Batch(_)) {
                    return Err(DecodeError::Malformed);
                }
                rest = tail;
            }
            Ok(WireView::Batch(BatchView { count, raw }))
        }
        tags::SNAPSHOT_REQUEST => {
            if data.len() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(WireView::SnapshotRequest(SnapshotRequest {
                from_index: data.get_u64(),
            }))
        }
        tags::SNAPSHOT_REPLY => {
            if data.len() < 8 + 8 + 8 + 16 + 2 {
                return Err(DecodeError::Truncated);
            }
            let upto = data.get_u64();
            let digest = data.get_u64();
            let view_id = data.get_u64();
            let view_members = data.get_u128();
            let count = usize::from(data.get_u16());
            if count > MAX_SYNC_ENTRIES {
                return Err(DecodeError::Malformed);
            }
            let Some(raw) = data.get(..count * SYNC_ENTRY_LEN) else {
                return Err(DecodeError::Truncated);
            };
            Ok(WireView::SnapshotReply(SnapshotReplyView {
                upto,
                digest,
                view_id,
                view_members,
                raw,
            }))
        }
        _ => Err(DecodeError::Malformed),
    }
}

/// Decodes a datagram into an owned [`WireMsg`]. Thin shim over
/// [`decode_borrowed`]; hot paths should use the borrowed form to skip
/// the copy-out of variable-length payloads.
///
/// # Errors
///
/// Returns [`DecodeError`] on short or malformed input.
pub fn decode(data: &[u8]) -> Result<WireMsg, DecodeError> {
    decode_borrowed(data).map(WireView::into_owned)
}

/// Converts a member bitmap to a [`ProcessSet`].
#[must_use]
pub fn members_to_set(members: u128, n: usize) -> ProcessSet {
    (0..n)
        .filter(|&ix| members & (1u128 << ix) != 0)
        .map(ProcessId::new)
        .collect()
}

/// Converts a [`ProcessSet`] to a member bitmap.
#[must_use]
pub fn set_to_members(set: ProcessSet) -> u128 {
    set.iter()
        .fold(0u128, |acc, pid| acc | (1u128 << pid.index()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_roundtrip() {
        let hb = WireMsg::Heartbeat(Heartbeat {
            sender: 3,
            seq: 99,
            sent_at: Nanos::from_millis(1234),
        });
        assert_eq!(decode(&encode(&hb)).unwrap(), hb);
    }

    #[test]
    fn view_change_roundtrip() {
        let vc = WireMsg::ViewChange(ViewChange {
            view_id: 7,
            members: 0b1011,
        });
        assert_eq!(decode(&encode(&vc)).unwrap(), vc);
    }

    #[test]
    fn junk_is_rejected() {
        assert_eq!(decode(b""), Err(DecodeError::Truncated));
        assert_eq!(
            decode(b"\x00\x01\x05junkjunkjunk"),
            Err(DecodeError::Malformed)
        );
        // Right magic, bad tag.
        assert_eq!(
            decode(&[0xFD, 0x02, 0xEE, 0, 0]),
            Err(DecodeError::Malformed)
        );
        // Right magic and tag, short body.
        assert_eq!(decode(&[0xFD, 0x02, 1, 0]), Err(DecodeError::Truncated));
    }

    #[test]
    fn service_messages_roundtrip() {
        let msgs = vec![
            WireMsg::Command(Command { value: 41 }),
            WireMsg::Consensus(ConsensusFrame {
                slot: 9,
                msg: RotatingMsg::Estimate { r: 4, ts: 2, v: 17 },
            }),
            WireMsg::Consensus(ConsensusFrame {
                slot: 0,
                msg: RotatingMsg::Decide(5),
            }),
            WireMsg::Decided(DecidedMsg {
                index: 3,
                view_id: 2,
                view_members: 0b1011,
                value: 7,
            }),
            WireMsg::SyncRequest(SyncRequest { from_index: 12 }),
            WireMsg::SyncReply(SyncReply {
                start: 4,
                entries: vec![(10, 1, 0b111), (11, 2, 0b011)],
            }),
            WireMsg::SnapshotRequest(SnapshotRequest { from_index: 2 }),
            WireMsg::SnapshotReply(SnapshotReply {
                upto: 40,
                digest: 0xFEED_BEEF,
                view_id: 3,
                view_members: 0b1011,
                entries: vec![(50, 3, 0b1011), (51, 3, 0b1011)],
            }),
        ];
        for msg in msgs {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn batch_roundtrip() {
        let batch = WireMsg::Batch(vec![
            WireMsg::Heartbeat(Heartbeat {
                sender: 2,
                seq: 5,
                sent_at: Nanos::from_millis(10),
            }),
            WireMsg::ViewChange(ViewChange {
                view_id: 3,
                members: 0b111,
            }),
            WireMsg::SyncReply(SyncReply {
                start: 0,
                entries: vec![(1, 1, 0b1)],
            }),
        ]);
        assert_eq!(decode(&encode(&batch)).unwrap(), batch);
        // The empty batch is legal (if pointless) and round-trips too.
        let empty = WireMsg::Batch(Vec::new());
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn slice_batch_encoder_matches_the_owned_one() {
        let frames = vec![
            WireMsg::Heartbeat(Heartbeat {
                sender: 1,
                seq: 7,
                sent_at: Nanos::from_millis(3),
            }),
            WireMsg::ViewChange(ViewChange {
                view_id: 2,
                members: 0b101,
            }),
        ];
        let mut via_slice = BytesMut::new();
        encode_batch_into(&frames, &mut via_slice);
        let via_owned = encode(&WireMsg::Batch(frames));
        assert_eq!(&via_slice[..], &via_owned[..]);
    }

    #[test]
    fn nested_batches_are_rejected() {
        // Hand-built frame: a batch whose single sub-frame is itself a
        // batch (the encoder refuses to produce this).
        let inner = encode(&WireMsg::Batch(Vec::new()));
        let mut bad = BytesMut::new();
        bad.put_u16(0xFD02);
        bad.put_u8(8);
        bad.put_u8(1);
        #[allow(clippy::cast_possible_truncation)]
        bad.put_u16(inner.len() as u16);
        bad.put_slice(&inner);
        assert_eq!(decode(&bad), Err(DecodeError::Malformed));
    }

    #[test]
    fn batch_with_short_subframe_is_truncated() {
        let mut bad = BytesMut::new();
        bad.put_u16(0xFD02);
        bad.put_u8(8);
        bad.put_u8(2); // claims two sub-frames, carries none
        assert_eq!(decode(&bad), Err(DecodeError::Truncated));
    }

    #[test]
    fn encoded_len_matches_the_encoder() {
        let msgs = vec![
            WireMsg::Heartbeat(Heartbeat {
                sender: 1,
                seq: 2,
                sent_at: Nanos::from_millis(3),
            }),
            WireMsg::ViewChange(ViewChange {
                view_id: 1,
                members: 0b1,
            }),
            WireMsg::Command(Command { value: 9 }),
            WireMsg::Consensus(ConsensusFrame {
                slot: 1,
                msg: RotatingMsg::Ack { r: 2 },
            }),
            WireMsg::Decided(DecidedMsg {
                index: 0,
                view_id: 0,
                view_members: 0,
                value: 0,
            }),
            WireMsg::SyncRequest(SyncRequest { from_index: 0 }),
            WireMsg::SyncReply(SyncReply {
                start: 0,
                entries: vec![(1, 2, 3), (4, 5, 6)],
            }),
            WireMsg::SnapshotRequest(SnapshotRequest { from_index: 7 }),
            WireMsg::SnapshotReply(SnapshotReply {
                upto: 9,
                digest: 1,
                view_id: 2,
                view_members: 0b11,
                entries: vec![(1, 2, 3)],
            }),
            WireMsg::Batch(vec![
                WireMsg::Command(Command { value: 1 }),
                WireMsg::SyncRequest(SyncRequest { from_index: 2 }),
            ]),
        ];
        for msg in msgs {
            assert_eq!(encode(&msg).len(), encoded_len(&msg), "{msg:?}");
        }
    }

    #[test]
    fn encode_into_clears_previous_content() {
        let mut buf = BytesMut::new();
        let big = WireMsg::SyncReply(SyncReply {
            start: 0,
            entries: (0..8).map(|i| (i, i, 0)).collect(),
        });
        encode_into(&big, &mut buf);
        let small = WireMsg::Command(Command { value: 1 });
        encode_into(&small, &mut buf);
        assert_eq!(buf.len(), encoded_len(&small), "clears, never appends");
        assert_eq!(decode(&buf).unwrap(), small);
    }

    #[test]
    fn borrowed_sync_reply_matches_owned() {
        let msg = WireMsg::SyncReply(SyncReply {
            start: 4,
            entries: vec![(10, 1, 0b111), (11, 2, 0b011)],
        });
        let wire = encode(&msg);
        match decode_borrowed(&wire).unwrap() {
            WireView::SyncReply(view) => {
                assert_eq!(view.len(), 2);
                assert_eq!(WireMsg::SyncReply(view.to_owned()), msg);
            }
            other => panic!("wrong view: {other:?}"),
        }
    }

    #[test]
    fn sync_reply_rejects_an_inflated_count() {
        let good = encode(&WireMsg::SyncReply(SyncReply {
            start: 0,
            entries: vec![(1, 1, 1)],
        }));
        let mut bad = good.to_vec();
        // The count field sits after magic (2), tag (1) and start (8).
        bad[11] = 0xFF;
        bad[12] = 0xFF;
        assert_eq!(decode(&bad), Err(DecodeError::Malformed));
        bad[11] = 0;
        bad[12] = 9; // claims 9 entries, carries 1
        assert_eq!(decode(&bad), Err(DecodeError::Truncated));
    }

    #[test]
    fn borrowed_snapshot_reply_matches_owned() {
        let msg = WireMsg::SnapshotReply(SnapshotReply {
            upto: 64,
            digest: 0xABCD,
            view_id: 5,
            view_members: 0b1101,
            entries: vec![(70, 5, 0b1101), (71, 6, 0b0101)],
        });
        let wire = encode(&msg);
        match decode_borrowed(&wire).unwrap() {
            WireView::SnapshotReply(view) => {
                assert_eq!(view.upto, 64);
                assert_eq!(view.len(), 2);
                assert!(!view.is_empty());
                assert_eq!(WireMsg::SnapshotReply(view.to_owned()), msg);
            }
            other => panic!("wrong view: {other:?}"),
        }
    }

    #[test]
    fn snapshot_reply_rejects_an_inflated_count() {
        let good = encode(&WireMsg::SnapshotReply(SnapshotReply {
            upto: 1,
            digest: 2,
            view_id: 3,
            view_members: 4,
            entries: vec![(1, 1, 1)],
        }));
        let mut bad = good.to_vec();
        // The count sits after magic (2), tag (1), upto (8), digest
        // (8), view_id (8) and view_members (16).
        bad[43] = 0xFF;
        bad[44] = 0xFF;
        assert_eq!(decode(&bad), Err(DecodeError::Malformed));
        bad[43] = 0;
        bad[44] = 9; // claims 9 entries, carries 1
        assert_eq!(decode(&bad), Err(DecodeError::Truncated));
    }

    #[test]
    fn member_bitmap_roundtrip() {
        let set: ProcessSet = [0usize, 2, 5].iter().map(|&i| ProcessId::new(i)).collect();
        assert_eq!(members_to_set(set_to_members(set), 8), set);
    }
}
