//! QoS metrics for failure detectors (Chen–Toueg–Aguilera, IEEE TC 2002)
//! and the single-link evaluation harness behind experiment E7.
//!
//! The primary metrics:
//!
//! * **Detection time `T_D`** — from the crash to the beginning of the
//!   final (permanent) suspicion.
//! * **Mistake rate `λ_M`** — false-suspicion episodes per second of
//!   pre-crash (or crash-free) operation.
//! * **Average mistake duration `T_M`** — mean length of a false
//!   suspicion.
//! * **Query accuracy probability `P_A`** — fraction of pre-crash time
//!   the detector answered "trust" (correctly).

use crate::clock::{Clock, Nanos, VirtualClock};
use crate::detector::DetectorNode;
use crate::estimator::ArrivalEstimator;
use crate::transport::{InMemoryNetwork, NetworkConfig};
use rfd_core::ProcessId;

/// Records the suspect/trust transitions of one observer about one
/// target and computes QoS metrics against ground truth.
#[derive(Clone, Debug, Default)]
pub struct QosTracker {
    /// Suspicion intervals `(start, end)`; the last may be open.
    episodes: Vec<(Nanos, Option<Nanos>)>,
    state: bool,
    last_sample: Option<Nanos>,
}

impl QosTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the detector's answer at `now` (`true` = suspect).
    /// Samples must be fed in non-decreasing time order.
    pub fn sample(&mut self, now: Nanos, suspect: bool) {
        if let Some(prev) = self.last_sample {
            debug_assert!(now >= prev, "samples must be time-ordered");
        }
        self.last_sample = Some(now);
        match (self.state, suspect) {
            (false, true) => self.episodes.push((now, None)),
            (true, false) => {
                if let Some(ep) = self.episodes.last_mut() {
                    ep.1 = Some(now);
                }
            }
            _ => {}
        }
        self.state = suspect;
    }

    /// Computes the QoS report given the target's `crash` time (if it
    /// crashed) and the observation `end` time.
    #[must_use]
    pub fn finalize(&self, crash: Option<Nanos>, end: Nanos) -> QosReport {
        let truth_horizon = crash.unwrap_or(end).min(end);
        let mut mistakes = 0u32;
        let mut mistake_time = Nanos::ZERO;
        let mut longest_mistake = Nanos::ZERO;
        let mut detection_time = None;
        for &(start, end_ep) in &self.episodes {
            let ep_end = end_ep.unwrap_or(end);
            match crash {
                Some(c) if end_ep.is_none() && ep_end >= c => {
                    // The final, permanent suspicion. If it began before
                    // the crash it was a (lucky) mistake turned detection;
                    // T_D counts from the crash, floored at zero.
                    detection_time = Some(start.saturating_sub(c));
                    // Its pre-crash portion counts as mistake time.
                    if start < c {
                        mistakes += 1;
                        let d = c.saturating_sub(start);
                        mistake_time = mistake_time.saturating_add(d);
                        longest_mistake = longest_mistake.max(d);
                    }
                }
                _ => {
                    // A closed episode, or one with no crash: a mistake
                    // (clip to the truth horizon).
                    let m_start = start.min(truth_horizon);
                    let m_end = ep_end.min(truth_horizon);
                    if m_end > m_start || (start < truth_horizon && end_ep.is_none()) {
                        mistakes += 1;
                        let d = m_end.saturating_sub(m_start);
                        mistake_time = mistake_time.saturating_add(d);
                        longest_mistake = longest_mistake.max(d);
                    }
                }
            }
        }
        let truth_secs = truth_horizon.as_secs_f64();
        QosReport {
            detection_time,
            mistakes,
            mistake_rate: if truth_secs > 0.0 {
                f64::from(mistakes) / truth_secs
            } else {
                0.0
            },
            avg_mistake_duration: if mistakes > 0 {
                Nanos::from_nanos(mistake_time.as_nanos() / u64::from(mistakes))
            } else {
                Nanos::ZERO
            },
            longest_mistake,
            query_accuracy: if truth_horizon > Nanos::ZERO {
                1.0 - mistake_time.as_nanos() as f64 / truth_horizon.as_nanos() as f64
            } else {
                1.0
            },
        }
    }
}

/// An **online** QoS monitor: the incremental counterpart of
/// [`QosTracker`].
///
/// The tracker records every suspicion episode and computes the metrics
/// post hoc in [`QosTracker::finalize`]; a long-running service cannot
/// afford either the unbounded episode list or the end-of-run scan. The
/// monitor instead folds each sample into O(1) running aggregates and
/// answers [`QosMonitor::report`] at any time in O(1).
///
/// The monitor is constructed with the ground-truth crash time (QoS
/// metrics are *defined* against ground truth — the batch path passes
/// the same value to `finalize`), which lets every closed episode be
/// clipped to the crash immediately. By construction, for any sample
/// prefix fed to both,
/// `monitor.report(end) == tracker.finalize(crash, end)` field for field
/// — property-tested in `tests/prop_qos.rs`.
///
/// [`crate::online::OnlineRunner`] embeds one monitor per ordered
/// observer–target pair and samples them every tick; it is the
/// runtime-layer sibling of the simulation layer's streaming run driver
/// (`rfd_sim::stream::StreamRun`).
#[derive(Clone, Debug)]
pub struct QosMonitor {
    crash: Option<Nanos>,
    state: bool,
    open_since: Option<Nanos>,
    mistakes: u32,
    mistake_time: Nanos,
    longest_mistake: Nanos,
    last_sample: Option<Nanos>,
}

impl QosMonitor {
    /// Creates a monitor for a target that crashes at `crash` (ground
    /// truth; `None` for a target that never crashes during the
    /// observation).
    #[must_use]
    pub fn new(crash: Option<Nanos>) -> Self {
        Self {
            crash,
            state: false,
            open_since: None,
            mistakes: 0,
            mistake_time: Nanos::ZERO,
            longest_mistake: Nanos::ZERO,
            last_sample: None,
        }
    }

    /// The ground-truth crash time this monitor judges against.
    #[must_use]
    pub fn crash(&self) -> Option<Nanos> {
        self.crash
    }

    /// Records the detector's answer at `now` (`true` = suspect).
    /// Samples must be fed in non-decreasing time order.
    pub fn sample(&mut self, now: Nanos, suspect: bool) {
        if let Some(prev) = self.last_sample {
            debug_assert!(now >= prev, "samples must be time-ordered");
        }
        self.last_sample = Some(now);
        match (self.state, suspect) {
            (false, true) => self.open_since = Some(now),
            (true, false) => {
                if let Some(start) = self.open_since.take() {
                    // A closed episode is a mistake; clip it to the crash
                    // (post-crash suspicion of a crashed target is not a
                    // mistake). This matches the batch clipping, where
                    // the horizon is min(crash, end) and every closed
                    // episode ends at or before `end`.
                    let (s, e) = match self.crash {
                        Some(c) => (start.min(c), now.min(c)),
                        None => (start, now),
                    };
                    if e > s {
                        self.mistakes += 1;
                        let d = e.saturating_sub(s);
                        self.mistake_time = self.mistake_time.saturating_add(d);
                        self.longest_mistake = self.longest_mistake.max(d);
                    }
                }
            }
            _ => {}
        }
        self.state = suspect;
    }

    /// The current QoS report as of observation time `end` — equal to
    /// what [`QosTracker::finalize`] computes from the full sample list.
    ///
    /// `end` must be at or after the last fed sample: closed episodes
    /// are folded eagerly, so a report horizon that rewinds behind
    /// already-folded samples cannot un-count them (the batch tracker,
    /// which keeps the episode list, would clip them to `end`).
    #[must_use]
    pub fn report(&self, end: Nanos) -> QosReport {
        if let Some(last) = self.last_sample {
            debug_assert!(
                end >= last,
                "report horizon {end} precedes the last sample {last}"
            );
        }
        let truth_horizon = self.crash.unwrap_or(end).min(end);
        let mut mistakes = self.mistakes;
        let mut mistake_time = self.mistake_time;
        let mut longest_mistake = self.longest_mistake;
        let mut detection_time = None;
        if let Some(start) = self.open_since {
            match self.crash {
                Some(c) if end >= c => {
                    // The open suspicion covers the crash: a detection.
                    detection_time = Some(start.saturating_sub(c));
                    if start < c {
                        mistakes += 1;
                        let d = c.saturating_sub(start);
                        mistake_time = mistake_time.saturating_add(d);
                        longest_mistake = longest_mistake.max(d);
                    }
                }
                _ => {
                    // Still a mistake in progress (no crash, or the crash
                    // lies beyond the observation end).
                    if start < truth_horizon {
                        mistakes += 1;
                        let d = truth_horizon.saturating_sub(start);
                        mistake_time = mistake_time.saturating_add(d);
                        longest_mistake = longest_mistake.max(d);
                    }
                }
            }
        }
        let truth_secs = truth_horizon.as_secs_f64();
        QosReport {
            detection_time,
            mistakes,
            mistake_rate: if truth_secs > 0.0 {
                f64::from(mistakes) / truth_secs
            } else {
                0.0
            },
            avg_mistake_duration: if mistakes > 0 {
                Nanos::from_nanos(mistake_time.as_nanos() / u64::from(mistakes))
            } else {
                Nanos::ZERO
            },
            longest_mistake,
            query_accuracy: if truth_horizon > Nanos::ZERO {
                1.0 - mistake_time.as_nanos() as f64 / truth_horizon.as_nanos() as f64
            } else {
                1.0
            },
        }
    }
}

/// QoS metrics of one observer–target pair.
#[derive(Clone, Debug)]
pub struct QosReport {
    /// `T_D`: crash → start of the permanent suspicion. `None` if the
    /// target never crashed or the crash was never detected.
    pub detection_time: Option<Nanos>,
    /// Number of false-suspicion episodes.
    pub mistakes: u32,
    /// `λ_M`: mistakes per second of pre-crash operation.
    pub mistake_rate: f64,
    /// `T_M`: mean mistake duration.
    pub avg_mistake_duration: Nanos,
    /// The single longest mistake episode (clipped like the rest). The
    /// mean hides a gray-failure signature — many short mistakes and one
    /// crushing outage-length one average out — so the weather
    /// experiments (E15) read this tail metric alongside `T_M`.
    pub longest_mistake: Nanos,
    /// `P_A`: fraction of pre-crash time spent (correctly) trusting.
    pub query_accuracy: f64,
}

/// Scenario parameters for the single-link QoS harness.
#[derive(Clone, Debug)]
pub struct QosScenario {
    /// Heartbeat period.
    pub period: Nanos,
    /// Network loss probability (independent Bernoulli losses).
    pub loss: f64,
    /// Optional Gilbert–Elliott burst-loss override
    /// `(p_enter, p_exit, loss_in_burst)`; takes precedence over `loss`.
    pub burst: Option<(f64, f64, f64)>,
    /// Minimum one-way delay.
    pub min_delay: Nanos,
    /// Maximum one-way delay.
    pub max_delay: Nanos,
    /// Target crash time, if any.
    pub crash_at: Option<Nanos>,
    /// Observation duration.
    pub duration: Nanos,
    /// Sampling interval for the observer's query loop.
    pub sample_every: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QosScenario {
    fn default() -> Self {
        Self {
            period: Nanos::from_millis(100),
            loss: 0.0,
            burst: None,
            min_delay: Nanos::from_millis(2),
            max_delay: Nanos::from_millis(10),
            crash_at: None,
            duration: Nanos::from_millis(60_000),
            sample_every: Nanos::from_millis(5),
            seed: 0,
        }
    }
}

/// Runs the two-node scenario — `p1` heartbeats, `p0` observes with the
/// given estimator — and returns the observer's QoS report about `p1`.
pub fn evaluate_qos<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: &QosScenario,
) -> QosReport {
    let clock = VirtualClock::new();
    let base = NetworkConfig::reliable(scenario.min_delay, scenario.max_delay);
    let config = match scenario.burst {
        Some((p_enter, p_exit, loss_in_burst)) => {
            base.with_burst_loss(p_enter, p_exit, loss_in_burst)
        }
        None => base.with_loss(scenario.loss),
    }
    .with_seed(scenario.seed);
    let net = InMemoryNetwork::new(2, config, clock.clone());
    let observer_id = ProcessId::new(0);
    let target_id = ProcessId::new(1);
    let mut observer = DetectorNode::new(
        2,
        prototype.clone(),
        net.endpoint(observer_id),
        clock.clone(),
        scenario.period,
    );
    let mut target = DetectorNode::new(
        2,
        prototype,
        net.endpoint(target_id),
        clock.clone(),
        scenario.period,
    );
    let mut tracker = QosTracker::new();
    let mut crashed = false;
    while clock.now() < scenario.duration {
        let now = clock.now();
        if let Some(c) = scenario.crash_at {
            if !crashed && now >= c {
                crashed = true;
                net.take_down(target_id);
            }
        }
        if !crashed {
            target.poll();
        }
        let suspects = observer.poll();
        tracker.sample(now, suspects.contains(target_id));
        clock.advance(scenario.sample_every);
    }
    tracker.finalize(scenario.crash_at, scenario.duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn tracker_counts_mistakes_and_durations() {
        let mut t = QosTracker::new();
        t.sample(ms(0), false);
        t.sample(ms(10), true); // mistake 1: [10, 30)
        t.sample(ms(30), false);
        t.sample(ms(50), true); // mistake 2: [50, 60)
        t.sample(ms(60), false);
        let report = t.finalize(None, ms(100));
        assert_eq!(report.mistakes, 2);
        assert_eq!(report.avg_mistake_duration.as_millis(), 15);
        assert_eq!(
            report.longest_mistake.as_millis(),
            20,
            "the tail metric keeps the worst episode the mean dilutes"
        );
        assert!((report.query_accuracy - 0.7).abs() < 1e-9);
        assert!(report.detection_time.is_none());
    }

    #[test]
    fn tracker_computes_detection_time() {
        let mut t = QosTracker::new();
        t.sample(ms(0), false);
        t.sample(ms(120), true); // permanent: crash at 100 → T_D = 20ms
        let report = t.finalize(Some(ms(100)), ms(500));
        assert_eq!(report.detection_time.unwrap().as_millis(), 20);
        assert_eq!(report.mistakes, 0);
    }

    #[test]
    fn premature_final_suspicion_counts_pre_crash_as_mistake() {
        let mut t = QosTracker::new();
        t.sample(ms(0), false);
        t.sample(ms(80), true); // began before the crash at 100
        let report = t.finalize(Some(ms(100)), ms(500));
        assert_eq!(report.detection_time.unwrap(), Nanos::ZERO);
        assert_eq!(report.mistakes, 1);
        assert_eq!(report.avg_mistake_duration.as_millis(), 20);
    }

    /// The incremental monitor reproduces the tracker's numbers on the
    /// same sample streams (the exhaustive check is the property test in
    /// `tests/prop_qos.rs`; these are the documented edge cases).
    #[test]
    fn monitor_matches_tracker_on_the_edge_cases() {
        type Case = (Vec<(Nanos, bool)>, Option<Nanos>, Nanos);
        let cases: Vec<Case> = vec![
            // Two closed mistakes, no crash.
            (
                vec![
                    (ms(0), false),
                    (ms(10), true),
                    (ms(30), false),
                    (ms(50), true),
                    (ms(60), false),
                ],
                None,
                ms(100),
            ),
            // Clean detection.
            (
                vec![(ms(0), false), (ms(120), true)],
                Some(ms(100)),
                ms(500),
            ),
            // Premature final suspicion straddling the crash.
            (vec![(ms(0), false), (ms(80), true)], Some(ms(100)), ms(500)),
            // Open mistake with the crash beyond the observation end.
            (vec![(ms(0), false), (ms(80), true)], Some(ms(900)), ms(500)),
            // Closed episode entirely after the crash: not a mistake.
            (
                vec![(ms(0), false), (ms(150), true), (ms(180), false)],
                Some(ms(100)),
                ms(500),
            ),
            // No samples at all.
            (vec![], None, ms(100)),
        ];
        for (samples, crash, end) in cases {
            let mut tracker = QosTracker::new();
            let mut monitor = QosMonitor::new(crash);
            for &(t, s) in &samples {
                tracker.sample(t, s);
                monitor.sample(t, s);
            }
            let batch = tracker.finalize(crash, end);
            let live = monitor.report(end);
            assert_eq!(live.detection_time, batch.detection_time, "{samples:?}");
            assert_eq!(live.mistakes, batch.mistakes, "{samples:?}");
            assert_eq!(
                live.avg_mistake_duration, batch.avg_mistake_duration,
                "{samples:?}"
            );
            assert_eq!(live.longest_mistake, batch.longest_mistake, "{samples:?}");
            assert_eq!(
                live.mistake_rate.to_bits(),
                batch.mistake_rate.to_bits(),
                "{samples:?}"
            );
            assert_eq!(
                live.query_accuracy.to_bits(),
                batch.query_accuracy.to_bits(),
                "{samples:?}"
            );
        }
    }

    /// Unlike the tracker, the monitor answers mid-stream in O(1): the
    /// report after a prefix equals finalizing that prefix.
    #[test]
    fn monitor_reports_are_valid_mid_stream() {
        let crash = Some(ms(100));
        let samples = [
            (ms(0), false),
            (ms(40), true),
            (ms(60), false),
            (ms(120), true),
        ];
        let mut monitor = QosMonitor::new(crash);
        let mut tracker = QosTracker::new();
        for (i, &(t, s)) in samples.iter().enumerate() {
            monitor.sample(t, s);
            tracker.sample(t, s);
            let end = t;
            let live = monitor.report(end);
            let batch = tracker.finalize(crash, end);
            assert_eq!(live.mistakes, batch.mistakes, "prefix {i}");
            assert_eq!(live.detection_time, batch.detection_time, "prefix {i}");
        }
    }

    #[test]
    fn reliable_network_yields_no_mistakes_for_all_estimators() {
        let scenario = QosScenario {
            duration: ms(20_000),
            ..QosScenario::default()
        };
        let fixed = evaluate_qos(FixedTimeout::new(ms(400)), &scenario);
        let chen = evaluate_qos(ChenEstimator::new(ms(100), 16, ms(400)), &scenario);
        let jac = evaluate_qos(JacobsonEstimator::new(4.0, ms(400)), &scenario);
        let phi = evaluate_qos(PhiAccrual::new(3.0, 32, ms(400)), &scenario);
        for (name, r) in [
            ("fixed", &fixed),
            ("chen", &chen),
            ("jacobson", &jac),
            ("phi", &phi),
        ] {
            assert_eq!(r.mistakes, 0, "{name}: {r:?}");
            assert!(r.query_accuracy > 0.999, "{name}: {r:?}");
        }
    }

    #[test]
    fn crash_is_detected_by_all_estimators() {
        let scenario = QosScenario {
            crash_at: Some(ms(10_000)),
            duration: ms(20_000),
            ..QosScenario::default()
        };
        let fixed = evaluate_qos(FixedTimeout::new(ms(400)), &scenario);
        let chen = evaluate_qos(ChenEstimator::new(ms(100), 16, ms(400)), &scenario);
        let jac = evaluate_qos(JacobsonEstimator::new(4.0, ms(400)), &scenario);
        let phi = evaluate_qos(PhiAccrual::new(3.0, 32, ms(400)), &scenario);
        for (name, r) in [
            ("fixed", &fixed),
            ("chen", &chen),
            ("jacobson", &jac),
            ("phi", &phi),
        ] {
            let td = r
                .detection_time
                .unwrap_or_else(|| panic!("{name} missed the crash"));
            assert!(
                td.as_millis() < 2_000,
                "{name}: detection took {td} (report {r:?})"
            );
        }
    }

    #[test]
    fn lossy_network_hurts_fixed_short_timeouts_most() {
        let scenario = QosScenario {
            loss: 0.15,
            duration: ms(60_000),
            seed: 5,
            ..QosScenario::default()
        };
        // A timeout barely above the period: every lost heartbeat is a
        // mistake.
        let aggressive = evaluate_qos(FixedTimeout::new(ms(150)), &scenario);
        // Adaptive detectors ride it out far better.
        let phi = evaluate_qos(PhiAccrual::new(5.0, 64, ms(400)), &scenario);
        assert!(
            aggressive.mistakes > phi.mistakes,
            "aggressive fixed {} vs phi {}",
            aggressive.mistakes,
            phi.mistakes
        );
    }
}
