//! Heartbeat arrival estimators — the adaptive core of realistic
//! failure detectors.
//!
//! The paper's §1.3 observes that real systems implement (approximations
//! of) `P` by timing out heartbeats. How the timeout is chosen is the
//! whole game: too short and the detector makes mistakes (costing
//! accuracy), too long and crashes go unnoticed (costing detection time).
//! This module implements the four classic strategies evaluated in
//! experiment E7:
//!
//! * [`FixedTimeout`] — a static bound (the naive baseline);
//! * [`ChenEstimator`] — Chen–Toueg–Aguilera's expected-arrival estimator
//!   with a constant safety margin α;
//! * [`JacobsonEstimator`] — TCP-RTO-style mean + 4·deviation adaptive
//!   timeout;
//! * [`PhiAccrual`] — Hayashibara's φ-accrual detector (the
//!   Cassandra/Akka design): a continuous suspicion level thresholded at
//!   φ.
//!
//! All of them implement [`ArrivalEstimator`]: observe heartbeat
//! arrivals, then answer "is the peer suspect at time `t`?" and with what
//! confidence.

mod chen;
mod fixed;
mod jacobson;
mod phi;

pub use chen::ChenEstimator;
pub use fixed::FixedTimeout;
pub use jacobson::JacobsonEstimator;
pub use phi::PhiAccrual;

use crate::clock::Nanos;
use core::fmt;

/// An adaptive (or fixed) heartbeat-timeout strategy.
pub trait ArrivalEstimator: fmt::Debug {
    /// Records a heartbeat arrival at time `now`.
    fn observe(&mut self, now: Nanos);

    /// The time until which the peer is trusted, given the arrivals seen
    /// so far (the current *freshness point*). `None` before the first
    /// arrival, and also when no threshold crossing exists within the
    /// estimator's probe horizon (e.g. [`PhiAccrual`] under a
    /// huge-variance window): a returned deadline is a guarantee that the
    /// peer becomes suspect once it passes, so estimators must never
    /// fabricate one.
    fn deadline(&self) -> Option<Nanos>;

    /// Whether the peer is suspected at `now`.
    fn is_suspect(&self, now: Nanos) -> bool {
        matches!(self.deadline(), Some(d) if now > d)
    }

    /// A monotone suspicion level at `now`: `0.0` right after a
    /// heartbeat, growing with silence. Implementations with a natural
    /// scale (φ-accrual) return it; others return the silence/deadline
    /// ratio.
    fn suspicion_level(&self, now: Nanos) -> f64;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Sliding-window statistics over heartbeat inter-arrival times,
/// shared by the adaptive estimators.
#[derive(Clone, Debug)]
pub(crate) struct ArrivalWindow {
    capacity: usize,
    samples: std::collections::VecDeque<u64>,
    last_arrival: Option<Nanos>,
}

impl ArrivalWindow {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "need at least two samples for statistics");
        Self {
            capacity,
            samples: std::collections::VecDeque::with_capacity(capacity),
            last_arrival: None,
        }
    }

    /// Records an arrival; returns the inter-arrival gap if there was a
    /// previous arrival.
    pub(crate) fn record(&mut self, now: Nanos) -> Option<u64> {
        let gap = self
            .last_arrival
            .map(|prev| now.saturating_sub(prev).as_nanos());
        self.last_arrival = Some(now);
        if let Some(g) = gap {
            if self.samples.len() == self.capacity {
                self.samples.pop_front();
            }
            self.samples.push_back(g);
        }
        gap
    }

    pub(crate) fn last_arrival(&self) -> Option<Nanos> {
        self.last_arrival
    }

    pub(crate) fn len(&self) -> usize {
        self.samples.len()
    }

    /// Mean inter-arrival in nanoseconds.
    pub(crate) fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&g| g as f64).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population variance of inter-arrivals.
    pub(crate) fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        if self.samples.len() < 2 {
            return Some(0.0);
        }
        let var = self
            .samples
            .iter()
            .map(|&g| {
                let d = g as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.samples.len() as f64;
        Some(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_tracks_gaps_and_statistics() {
        let mut w = ArrivalWindow::new(4);
        assert_eq!(w.record(Nanos::from_millis(0)), None);
        assert_eq!(w.record(Nanos::from_millis(10)), Some(10_000_000));
        assert_eq!(w.record(Nanos::from_millis(20)), Some(10_000_000));
        assert_eq!(w.mean(), Some(10_000_000.0));
        assert_eq!(w.variance(), Some(0.0));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn window_evicts_oldest_at_capacity() {
        let mut w = ArrivalWindow::new(2);
        w.record(Nanos::from_millis(0));
        w.record(Nanos::from_millis(10)); // gap 10ms
        w.record(Nanos::from_millis(30)); // gap 20ms
        w.record(Nanos::from_millis(70)); // gap 40ms, evicts 10ms
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(30_000_000.0));
    }

    #[test]
    fn variance_reflects_jitter() {
        let mut w = ArrivalWindow::new(8);
        w.record(Nanos::from_millis(0));
        w.record(Nanos::from_millis(10));
        w.record(Nanos::from_millis(30));
        let var = w.variance().unwrap();
        assert!(var > 0.0);
    }
}
