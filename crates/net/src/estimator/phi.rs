//! The φ-accrual failure detector (Hayashibara et al., SRDS 2004).

use super::{ArrivalEstimator, ArrivalWindow};
use crate::clock::Nanos;

/// Accrual detector: instead of a binary suspect bit, output a continuous
/// suspicion level
/// `φ(t) = −log₁₀ P(next heartbeat arrives after t)`
/// under a normal model of inter-arrival times, and suspect when φ
/// crosses a threshold. φ = 1 means ≈10 % chance the silence is benign,
/// φ = 3 means ≈0.1 %. This is the design adopted by Cassandra and Akka —
/// the modern descendant of the paper's "group membership timeout".
#[derive(Clone, Debug)]
pub struct PhiAccrual {
    window: ArrivalWindow,
    threshold: f64,
    /// Minimum standard deviation to avoid φ exploding on perfectly
    /// regular traffic.
    min_std: f64,
    bootstrap: Nanos,
}

impl PhiAccrual {
    /// Creates a φ-accrual detector suspecting at `threshold`, with a
    /// sliding window of `window` samples and a `bootstrap` timeout.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive, `window < 2`, or
    /// `bootstrap` is zero.
    #[must_use]
    pub fn new(threshold: f64, window: usize, bootstrap: Nanos) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(
            bootstrap > Nanos::ZERO,
            "bootstrap timeout must be positive"
        );
        Self {
            window: ArrivalWindow::new(window),
            threshold,
            min_std: 1e5, // 0.1 ms floor
            bootstrap,
        }
    }

    /// The suspicion threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The φ value at time `now` (0 before the first heartbeat).
    #[must_use]
    pub fn phi(&self, now: Nanos) -> f64 {
        let Some(last) = self.window.last_arrival() else {
            return 0.0;
        };
        let elapsed = now.saturating_sub(last).as_nanos() as f64;
        let (mean, std) = match (self.window.mean(), self.window.variance()) {
            (Some(m), Some(v)) if self.window.len() >= 2 => (m, v.sqrt().max(self.min_std)),
            _ => {
                // Bootstrap: treat the bootstrap timeout as mean with a
                // generous deviation.
                let b = self.bootstrap.as_nanos() as f64;
                (b / 2.0, b / 4.0)
            }
        };
        // P(X > elapsed) for X ~ N(mean, std²), via the logistic
        // approximation of the normal CDF used by the Akka
        // implementation.
        let y = (elapsed - mean) / std;
        let e = (-y * (1.5976 + 0.070566 * y * y)).exp();
        let p_later = if elapsed > mean {
            e / (1.0 + e)
        } else {
            1.0 - 1.0 / (1.0 + e)
        };
        -p_later.max(1e-12).log10()
    }
}

impl ArrivalEstimator for PhiAccrual {
    fn observe(&mut self, now: Nanos) {
        self.window.record(now);
    }

    fn deadline(&self) -> Option<Nanos> {
        // The deadline is implicit: the time at which φ crosses the
        // threshold. Probe geometrically from the last arrival. The probe
        // is capped: with an extremely wide inter-arrival spread the
        // crossing can lie beyond any horizon a caller could act on, and
        // a deadline that never crosses the threshold would be a false
        // "suspect after this time" guarantee — report `None` instead.
        const PROBE_CAP: u64 = 1 << 51; // ≈ 26 days
        let last = self.window.last_arrival()?;
        let mut lo = 0u64;
        let mut hi = self.bootstrap.as_nanos().max(1);
        while self.phi(last.saturating_add(Nanos::from_nanos(hi))) < self.threshold {
            if hi >= PROBE_CAP {
                // Saturated without bracketing a crossing.
                return None;
            }
            lo = hi;
            hi = hi.saturating_mul(2).min(PROBE_CAP);
        }
        // Binary search the crossing point in [lo, hi]; the loop above
        // guarantees φ(last + hi) ≥ threshold.
        for _ in 0..40 {
            let mid = lo + (hi - lo) / 2;
            if self.phi(last.saturating_add(Nanos::from_nanos(mid))) < self.threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(last.saturating_add(Nanos::from_nanos(hi)))
    }

    fn is_suspect(&self, now: Nanos) -> bool {
        self.window.last_arrival().is_some() && self.phi(now) >= self.threshold
    }

    fn suspicion_level(&self, now: Nanos) -> f64 {
        self.phi(now)
    }

    fn name(&self) -> &'static str {
        "phi-accrual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn trained(period_ms: u64) -> PhiAccrual {
        let mut e = PhiAccrual::new(3.0, 16, ms(500));
        for k in 0..16 {
            e.observe(ms(k * period_ms));
        }
        e
    }

    /// Training with realistic jitter (alternating 80/120 ms gaps) so the
    /// inter-arrival distribution has nonzero spread.
    fn trained_jittery() -> (PhiAccrual, Nanos) {
        let mut e = PhiAccrual::new(3.0, 16, ms(500));
        let mut t = 0u64;
        for k in 0..16 {
            t += if k % 2 == 0 { 80 } else { 120 };
            e.observe(ms(t));
        }
        (e, ms(t))
    }

    #[test]
    fn phi_is_monotone_in_silence() {
        let (e, last) = trained_jittery();
        let p1 = e.phi(last.saturating_add(ms(50)));
        let p2 = e.phi(last.saturating_add(ms(150)));
        let p3 = e.phi(last.saturating_add(ms(400)));
        assert!(p1 < p2 && p2 < p3, "{p1} {p2} {p3}");
    }

    #[test]
    fn fresh_heartbeat_resets_phi() {
        let mut e = trained(100);
        let late = ms(15 * 100 + 500);
        assert!(e.phi(late) > 3.0);
        e.observe(late);
        assert!(e.phi(late.saturating_add(ms(10))) < 1.0);
    }

    #[test]
    fn suspects_after_long_silence_only() {
        let e = trained(100);
        let last = ms(1500);
        assert!(!e.is_suspect(last.saturating_add(ms(100))));
        assert!(e.is_suspect(last.saturating_add(ms(2_000))));
    }

    #[test]
    fn deadline_matches_threshold_crossing() {
        let e = trained(100);
        let d = e.deadline().unwrap();
        let just_before = Nanos::from_nanos(d.as_nanos() - 2_000_000);
        let just_after = d.saturating_add(ms(2));
        assert!(e.phi(just_before) < 3.0);
        assert!(e.phi(just_after) >= 3.0);
    }

    /// Regression: with a huge-variance window the φ curve may stay below
    /// the threshold past the geometric probe's cap. The old code broke
    /// out of the probe at ~2⁵⁰ ns and returned a "deadline" that never
    /// crosses the threshold — a false suspect-after-this-time guarantee.
    /// The fix reports `None` when the probe fails to bracket a crossing.
    #[test]
    fn deadline_is_none_when_probe_cannot_bracket_a_crossing() {
        let mut e = PhiAccrual::new(3.0, 16, ms(500));
        // Two samples with a ~46-day gap: mean ≈ std ≈ 2e15 ns, so φ at
        // the probe cap (~2⁵¹ ns past the last arrival) is still tiny.
        e.observe(Nanos::from_nanos(0));
        e.observe(Nanos::from_nanos(1));
        e.observe(Nanos::from_nanos(4_000_000_000_000_000));
        let last = Nanos::from_nanos(4_000_000_000_000_000);
        assert!(
            e.phi(last.saturating_add(Nanos::from_nanos(1 << 51))) < e.threshold(),
            "precondition: no crossing within the probe horizon"
        );
        // Pre-fix this returned Some(d) with φ(d) < threshold; now the
        // saturation is explicit.
        assert!(e.deadline().is_none(), "probe saturation must yield None");
        // And silence inside the probe horizon is indeed not suspect.
        assert!(!e.is_suspect(last.saturating_add(Nanos::from_nanos(1 << 50))));
    }

    #[test]
    fn higher_threshold_suspects_later() {
        let mut lax = PhiAccrual::new(8.0, 16, ms(500));
        let mut strict = PhiAccrual::new(1.0, 16, ms(500));
        for k in 0..16 {
            lax.observe(ms(k * 100));
            strict.observe(ms(k * 100));
        }
        let d_lax = lax.deadline().unwrap();
        let d_strict = strict.deadline().unwrap();
        assert!(d_lax > d_strict);
    }
}
