//! Chen–Toueg–Aguilera's expected-arrival estimator.

use super::{ArrivalEstimator, ArrivalWindow};
use crate::clock::Nanos;

/// The Chen et al. QoS-oriented estimator (IEEE TC 2002).
///
/// The next heartbeat's *expected arrival* is predicted as the average of
/// the last `window` arrival times shifted by one period, and the peer is
/// trusted until `expected + α` — a constant safety margin directly
/// trading detection time for accuracy. Predicting from observed
/// arrivals absorbs steady network delay; α absorbs jitter.
///
/// This implementation uses the standard practical simplification: the
/// expected next arrival is `last_arrival + mean_interarrival` over the
/// sliding window.
#[derive(Clone, Debug)]
pub struct ChenEstimator {
    window: ArrivalWindow,
    alpha: Nanos,
    /// Fallback trust period before enough samples exist.
    bootstrap: Nanos,
}

impl ChenEstimator {
    /// Creates an estimator with safety margin `alpha`, sliding window
    /// of `window` inter-arrival samples, and a `bootstrap` timeout used
    /// until the window has data.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or `bootstrap` is zero.
    #[must_use]
    pub fn new(alpha: Nanos, window: usize, bootstrap: Nanos) -> Self {
        assert!(
            bootstrap > Nanos::ZERO,
            "bootstrap timeout must be positive"
        );
        Self {
            window: ArrivalWindow::new(window),
            alpha,
            bootstrap,
        }
    }

    /// The safety margin α.
    #[must_use]
    pub fn alpha(&self) -> Nanos {
        self.alpha
    }
}

impl ArrivalEstimator for ChenEstimator {
    fn observe(&mut self, now: Nanos) {
        self.window.record(now);
    }

    fn deadline(&self) -> Option<Nanos> {
        let last = self.window.last_arrival()?;
        let expected_gap = match self.window.mean() {
            Some(mean) if self.window.len() >= 2 => Nanos::from_nanos(mean as u64),
            _ => self.bootstrap,
        };
        Some(last.saturating_add(expected_gap).saturating_add(self.alpha))
    }

    fn suspicion_level(&self, now: Nanos) -> f64 {
        match (self.window.last_arrival(), self.deadline()) {
            (Some(last), Some(deadline)) => {
                let span = deadline.saturating_sub(last).as_nanos().max(1);
                now.saturating_sub(last).as_nanos() as f64 / span as f64
            }
            _ => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "chen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn adapts_to_the_observed_period() {
        let mut e = ChenEstimator::new(ms(20), 8, ms(500));
        // Heartbeats every 100 ms.
        for k in 0..10 {
            e.observe(ms(k * 100));
        }
        let deadline = e.deadline().unwrap();
        // Expected next ≈ 1000ms, margin 20ms.
        assert_eq!(deadline.as_millis(), 1020);
        assert!(!e.is_suspect(ms(1015)));
        assert!(e.is_suspect(ms(1025)));
    }

    #[test]
    fn bootstrap_timeout_applies_before_samples() {
        let mut e = ChenEstimator::new(ms(0), 4, ms(300));
        e.observe(ms(0));
        assert!(!e.is_suspect(ms(299)));
        assert!(e.is_suspect(ms(301)));
    }

    #[test]
    fn slower_period_stretches_the_deadline() {
        let mut fast = ChenEstimator::new(ms(10), 8, ms(500));
        let mut slow = ChenEstimator::new(ms(10), 8, ms(500));
        for k in 0..8 {
            fast.observe(ms(k * 50));
            slow.observe(ms(k * 200));
        }
        let f = fast.deadline().unwrap().saturating_sub(ms(7 * 50));
        let s = slow.deadline().unwrap().saturating_sub(ms(7 * 200));
        assert!(s > f, "period adaptation: slow peers get more slack");
    }
}
