//! The fixed-timeout baseline.

use super::ArrivalEstimator;
use crate::clock::Nanos;

/// Suspect a peer whenever no heartbeat arrived for a fixed `timeout`.
///
/// The naive baseline of experiment E7: a short timeout detects crashes
/// quickly but turns every network hiccup into a mistake; a long one is
/// safe but slow. The adaptive estimators exist to escape this trade-off.
///
/// # Examples
///
/// ```
/// use rfd_net::clock::Nanos;
/// use rfd_net::estimator::{ArrivalEstimator, FixedTimeout};
///
/// let mut e = FixedTimeout::new(Nanos::from_millis(100));
/// e.observe(Nanos::from_millis(0));
/// assert!(!e.is_suspect(Nanos::from_millis(99)));
/// assert!(e.is_suspect(Nanos::from_millis(101)));
/// ```
#[derive(Clone, Debug)]
pub struct FixedTimeout {
    timeout: Nanos,
    last: Option<Nanos>,
}

impl FixedTimeout {
    /// Creates a detector with the given timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    #[must_use]
    pub fn new(timeout: Nanos) -> Self {
        assert!(timeout > Nanos::ZERO, "timeout must be positive");
        Self {
            timeout,
            last: None,
        }
    }

    /// The configured timeout.
    #[must_use]
    pub fn timeout(&self) -> Nanos {
        self.timeout
    }
}

impl ArrivalEstimator for FixedTimeout {
    fn observe(&mut self, now: Nanos) {
        self.last = Some(now);
    }

    fn deadline(&self) -> Option<Nanos> {
        self.last.map(|l| l.saturating_add(self.timeout))
    }

    fn suspicion_level(&self, now: Nanos) -> f64 {
        match self.last {
            None => 0.0,
            Some(l) => now.saturating_sub(l).as_nanos() as f64 / self.timeout.as_nanos() as f64,
        }
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_suspicion_before_first_heartbeat() {
        let e = FixedTimeout::new(Nanos::from_millis(50));
        assert!(!e.is_suspect(Nanos::from_millis(10_000)));
        assert_eq!(e.deadline(), None);
    }

    #[test]
    fn fresh_heartbeat_resets_suspicion() {
        let mut e = FixedTimeout::new(Nanos::from_millis(50));
        e.observe(Nanos::from_millis(0));
        assert!(e.is_suspect(Nanos::from_millis(60)));
        e.observe(Nanos::from_millis(60));
        assert!(!e.is_suspect(Nanos::from_millis(100)));
    }

    #[test]
    fn suspicion_level_grows_with_silence() {
        let mut e = FixedTimeout::new(Nanos::from_millis(100));
        e.observe(Nanos::ZERO);
        let early = e.suspicion_level(Nanos::from_millis(10));
        let late = e.suspicion_level(Nanos::from_millis(90));
        assert!(late > early);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_rejected() {
        let _ = FixedTimeout::new(Nanos::ZERO);
    }
}
