//! Jacobson-style adaptive timeout (the TCP RTO rule on inter-arrivals).

use super::ArrivalEstimator;
use crate::clock::Nanos;

/// Exponentially weighted mean/deviation timeout: trust until
/// `last + srtt + β · rttvar`, with the TCP constants
/// (gain 1/8 for the mean, 1/4 for the deviation, β = 4).
///
/// Compared with [`super::ChenEstimator`], the exponential filter reacts
/// faster to period changes and the deviation term adapts the margin to
/// the observed jitter rather than using a fixed α.
#[derive(Clone, Debug)]
pub struct JacobsonEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    beta: f64,
    last: Option<Nanos>,
    bootstrap: Nanos,
}

impl JacobsonEstimator {
    /// Creates an estimator with deviation multiplier `beta` and a
    /// `bootstrap` timeout used before the first inter-arrival sample.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not positive or `bootstrap` is zero.
    #[must_use]
    pub fn new(beta: f64, bootstrap: Nanos) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        assert!(
            bootstrap > Nanos::ZERO,
            "bootstrap timeout must be positive"
        );
        Self {
            srtt: None,
            rttvar: 0.0,
            beta,
            last: None,
            bootstrap,
        }
    }

    /// The smoothed inter-arrival estimate, if any.
    #[must_use]
    pub fn smoothed_gap(&self) -> Option<Nanos> {
        self.srtt.map(|v| Nanos::from_nanos(v as u64))
    }
}

impl ArrivalEstimator for JacobsonEstimator {
    fn observe(&mut self, now: Nanos) {
        if let Some(prev) = self.last {
            let sample = now.saturating_sub(prev).as_nanos() as f64;
            match self.srtt {
                None => {
                    self.srtt = Some(sample);
                    self.rttvar = sample / 2.0;
                }
                Some(srtt) => {
                    let err = (sample - srtt).abs();
                    self.rttvar = 0.75 * self.rttvar + 0.25 * err;
                    self.srtt = Some(0.875 * srtt + 0.125 * sample);
                }
            }
        }
        self.last = Some(now);
    }

    fn deadline(&self) -> Option<Nanos> {
        let last = self.last?;
        let rto = match self.srtt {
            Some(srtt) => Nanos::from_nanos((srtt + self.beta * self.rttvar) as u64),
            None => self.bootstrap,
        };
        Some(last.saturating_add(rto))
    }

    fn suspicion_level(&self, now: Nanos) -> f64 {
        match (self.last, self.deadline()) {
            (Some(last), Some(deadline)) => {
                let span = deadline.saturating_sub(last).as_nanos().max(1);
                now.saturating_sub(last).as_nanos() as f64 / span as f64
            }
            _ => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "jacobson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn converges_to_stable_period() {
        let mut e = JacobsonEstimator::new(4.0, ms(500));
        for k in 0..50 {
            e.observe(ms(k * 100));
        }
        let gap = e.smoothed_gap().unwrap().as_millis();
        assert!((95..=105).contains(&gap), "gap={gap}");
        // With zero jitter the deviation decays toward zero, so the
        // deadline converges to last + period: trusted just inside the
        // period, suspect just past it.
        assert!(!e.is_suspect(ms(49 * 100 + 90)));
        assert!(e.is_suspect(ms(49 * 100 + 130)));
    }

    #[test]
    fn jitter_widens_the_margin() {
        let mut steady = JacobsonEstimator::new(4.0, ms(500));
        let mut jittery = JacobsonEstimator::new(4.0, ms(500));
        let mut t_s = 0u64;
        let mut t_j = 0u64;
        for k in 0..40 {
            t_s += 100;
            steady.observe(ms(t_s));
            t_j += if k % 2 == 0 { 60 } else { 140 };
            jittery.observe(ms(t_j));
        }
        let m_s = steady
            .deadline()
            .unwrap()
            .saturating_sub(ms(t_s))
            .as_millis();
        let m_j = jittery
            .deadline()
            .unwrap()
            .saturating_sub(ms(t_j))
            .as_millis();
        assert!(
            m_j > m_s,
            "jittery peer should get a wider margin ({m_j} vs {m_s})"
        );
    }

    #[test]
    fn bootstrap_before_first_gap() {
        let mut e = JacobsonEstimator::new(4.0, ms(250));
        e.observe(ms(0));
        assert!(e.is_suspect(ms(251)));
        assert!(!e.is_suspect(ms(249)));
    }
}
