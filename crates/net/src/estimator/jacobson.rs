//! Jacobson-style adaptive timeout (the TCP RTO rule on inter-arrivals).

use super::ArrivalEstimator;
use crate::clock::Nanos;

/// Exponentially weighted mean/deviation timeout: trust until
/// `last + srtt + β · rttvar`, with the TCP constants
/// (gain 1/8 for the mean, 1/4 for the deviation, β = 4).
///
/// Compared with [`super::ChenEstimator`], the exponential filter reacts
/// faster to period changes and the deviation term adapts the margin to
/// the observed jitter rather than using a fixed α.
#[derive(Clone, Debug)]
pub struct JacobsonEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    beta: f64,
    last: Option<Nanos>,
    bootstrap: Nanos,
}

impl JacobsonEstimator {
    /// Creates an estimator with deviation multiplier `beta` and a
    /// `bootstrap` timeout used before the first inter-arrival sample.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not positive or `bootstrap` is zero.
    #[must_use]
    pub fn new(beta: f64, bootstrap: Nanos) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        assert!(
            bootstrap > Nanos::ZERO,
            "bootstrap timeout must be positive"
        );
        Self {
            srtt: None,
            rttvar: 0.0,
            beta,
            last: None,
            bootstrap,
        }
    }

    /// The smoothed inter-arrival estimate, if any.
    #[must_use]
    pub fn smoothed_gap(&self) -> Option<Nanos> {
        self.srtt.map(|v| Nanos::from_nanos(v as u64))
    }
}

impl ArrivalEstimator for JacobsonEstimator {
    fn observe(&mut self, now: Nanos) {
        if let Some(prev) = self.last {
            let mut sample = now.saturating_sub(prev).as_nanos() as f64;
            match self.srtt {
                None => {
                    self.srtt = Some(sample);
                    self.rttvar = sample / 2.0;
                }
                Some(srtt) => {
                    // Karn-style clamp: a gap longer than the current RTO
                    // means the peer was already past its deadline when
                    // this heartbeat arrived — the gap measures the outage
                    // (a lost-heartbeat run, a partition), not the peer's
                    // sending period. Feeding it raw is the classic
                    // pre-Karn TCP RTO failure: one partition-sized gap
                    // inflates the timeout for many periods. The clamp
                    // ceiling is *twice* the RTO (TCP's timeout backoff
                    // step): clamping to the RTO itself would freeze
                    // adaptation once rttvar decays to zero on regular
                    // traffic (rto == srtt ⇒ clamped err == 0 forever),
                    // falsely suspecting a peer that legitimately slowed
                    // down; the 2× headroom keeps each late heartbeat
                    // growing the estimate geometrically until it covers
                    // the real period, while a partition-sized gap still
                    // cannot blow it up.
                    let ceiling = 2.0 * (srtt + self.beta * self.rttvar);
                    if sample > ceiling {
                        sample = ceiling;
                    }
                    let err = (sample - srtt).abs();
                    self.rttvar = 0.75 * self.rttvar + 0.25 * err;
                    self.srtt = Some(0.875 * srtt + 0.125 * sample);
                }
            }
        }
        self.last = Some(now);
    }

    fn deadline(&self) -> Option<Nanos> {
        let last = self.last?;
        let rto = match self.srtt {
            Some(srtt) => Nanos::from_nanos((srtt + self.beta * self.rttvar) as u64),
            None => self.bootstrap,
        };
        Some(last.saturating_add(rto))
    }

    fn suspicion_level(&self, now: Nanos) -> f64 {
        match (self.last, self.deadline()) {
            (Some(last), Some(deadline)) => {
                let span = deadline.saturating_sub(last).as_nanos().max(1);
                now.saturating_sub(last).as_nanos() as f64 / span as f64
            }
            _ => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "jacobson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn converges_to_stable_period() {
        let mut e = JacobsonEstimator::new(4.0, ms(500));
        for k in 0..50 {
            e.observe(ms(k * 100));
        }
        let gap = e.smoothed_gap().unwrap().as_millis();
        assert!((95..=105).contains(&gap), "gap={gap}");
        // With zero jitter the deviation decays toward zero, so the
        // deadline converges to last + period: trusted just inside the
        // period, suspect just past it.
        assert!(!e.is_suspect(ms(49 * 100 + 90)));
        assert!(e.is_suspect(ms(49 * 100 + 130)));
    }

    #[test]
    fn jitter_widens_the_margin() {
        let mut steady = JacobsonEstimator::new(4.0, ms(500));
        let mut jittery = JacobsonEstimator::new(4.0, ms(500));
        let mut t_s = 0u64;
        let mut t_j = 0u64;
        for k in 0..40 {
            t_s += 100;
            steady.observe(ms(t_s));
            t_j += if k % 2 == 0 { 60 } else { 140 };
            jittery.observe(ms(t_j));
        }
        let m_s = steady
            .deadline()
            .unwrap()
            .saturating_sub(ms(t_s))
            .as_millis();
        let m_j = jittery
            .deadline()
            .unwrap()
            .saturating_sub(ms(t_j))
            .as_millis();
        assert!(
            m_j > m_s,
            "jittery peer should get a wider margin ({m_j} vs {m_s})"
        );
    }

    /// Regression: a 10 s outage on a 100 ms stream used to feed the
    /// 10.1 s gap straight into srtt/rttvar (srtt ≈ 1.35 s,
    /// rttvar ≈ 2.5 s → RTO > 11 s), so the deadline stayed inflated for
    /// dozens of periods. With the Karn-style clamp the deadline must
    /// re-converge within a few periods.
    #[test]
    fn outage_gap_does_not_inflate_the_timeout() {
        let mut e = JacobsonEstimator::new(4.0, ms(500));
        let mut t = 0u64;
        for _ in 0..50 {
            t += 100;
            e.observe(ms(t));
        }
        // 10 s of silence (the peer was long past its deadline), then the
        // stream resumes.
        t += 10_000;
        e.observe(ms(t));
        for _ in 0..5 {
            t += 100;
            e.observe(ms(t));
        }
        let margin = e.deadline().unwrap().saturating_sub(ms(t));
        assert!(
            margin.as_millis() < 500,
            "deadline must re-converge within a few periods; margin = {margin}"
        );
        assert!(
            !e.is_suspect(ms(t + 90)),
            "a peer back on its period must be trusted inside the period"
        );
    }

    /// The clamp must not freeze adaptation: on perfectly regular
    /// traffic rttvar decays to exactly 0.0 (rto == srtt), and a clamp
    /// at the RTO itself would then pin every later sample to srtt
    /// (err == 0 forever) — a peer that legitimately slows down would be
    /// suspected on every interval with no recovery. The 2×RTO ceiling
    /// lets the estimate grow geometrically out of the freeze.
    #[test]
    fn period_increase_recovers_even_after_variance_fully_decays() {
        let mut e = JacobsonEstimator::new(4.0, ms(500));
        let mut t = 0u64;
        for _ in 0..3000 {
            t += 100;
            e.observe(ms(t));
        }
        // The geometric decay bottoms out in the subnormal range (0.75×
        // the smallest subnormal rounds back to itself), so "fully
        // decayed" means rto == srtt to the last bit, not literal 0.0.
        assert!(
            e.rttvar < 1e-300,
            "precondition: deviation fully decayed (rttvar = {})",
            e.rttvar
        );
        // The peer legitimately slows to a 250 ms period.
        for _ in 0..10 {
            t += 250;
            e.observe(ms(t));
        }
        assert!(
            !e.is_suspect(ms(t + 240)),
            "the deadline must re-cover the new period (deadline {:?}, last {})",
            e.deadline(),
            ms(t)
        );
    }

    #[test]
    fn bootstrap_before_first_gap() {
        let mut e = JacobsonEstimator::new(4.0, ms(250));
        e.observe(ms(0));
        assert!(e.is_suspect(ms(251)));
        assert!(!e.is_suspect(ms(249)));
    }
}
