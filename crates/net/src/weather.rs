//! The adversarial weather catalogue: a composable, seed-deterministic
//! fault-scenario DSL layered over
//! [`FaultInjector`]/[`FaultyTransport`].
//!
//! The base [`FaultSchedule`](crate::online::FaultSchedule) speaks four
//! faults — crash, recover, partition, heal — which covers fail-stop
//! churn but none of the weathers realistic QoS analysis cares about.
//! This module grows the vocabulary with [`WeatherDirective`]s, applied
//! mid-run through the same schedule machinery
//! ([`Fault::Weather`]), and a [`Weather`]
//! builder that composes them into schedules:
//!
//! * **asymmetric (one-way) partitions** — [`Weather::one_way`]: `a`
//!   hears `b` but not vice versa, the classic detector asymmetry a
//!   symmetric [`Fault::Partition`]
//!   cannot express;
//! * **flapping links** — [`Weather::flap`]: a link that blocks and
//!   heals on a square wave, stressing mistake-rate (λ_M) accounting;
//! * **message duplication** — [`Weather::duplicate`]: each forwarded
//!   datagram is cloned with seeded probability, probing wire-path
//!   idempotency;
//! * **bounded reordering** — [`Weather::reorder`]: arrivals are held
//!   back until a bounded number of younger datagrams overtake them (or
//!   a hold timer fires), the unreliable-channel model of Chandra–Toueg;
//! * **latency spikes / gray failure** — [`Weather::spike`] (everyone)
//!   and [`Weather::gray`] (one slow-but-alive node — the realistic
//!   detector's hardest case: heartbeats arrive, but late);
//! * **clock skew** — [`Weather::skew`]: a node's
//!   [`Pacer`](crate::clock::Pacer) runs at a different rate via
//!   [`SkewedClock`], so its heartbeat period is locally honest but
//!   globally wrong;
//! * **correlated failures** — [`Weather::correlated_crash`]: a whole
//!   rack/zone [`ProcessSet`] crashing (and optionally recovering) as
//!   one event.
//!
//! Everything stays deterministic per seed: directives land at scheduled
//! virtual times, probabilistic planes (duplication, reordering, loss)
//! draw from the injector's single seeded RNG in poll order, and a
//! [`Weather`] with no events is bit-identical to the bare
//! [`FaultyTransport`] path (the DSL
//! is a strict superset, not a fork — `service_differential.rs` pins
//! this).
//!
//! # Examples
//!
//! ```
//! use rfd_core::ProcessId;
//! use rfd_net::clock::{ClockSkew, Nanos};
//! use rfd_net::estimator::ChenEstimator;
//! use rfd_net::online::OnlineScenario;
//! use rfd_net::service::ServiceScenario;
//! use rfd_net::weather::{run_weather_service, Weather};
//!
//! let ms = Nanos::from_millis;
//! let p = ProcessId::new;
//! // A composed weather: p0↔p2 flaps, then p2 goes gray, while p1's
//! // clock runs 400 ppm fast the whole time.
//! let weather = Weather::new()
//!     .flap(p(0), p(2), ms(400), ms(1_000), ms(2_600))
//!     .gray(p(2), ms(120), ms(3_000), Some(ms(5_000)))
//!     .skew(p(1), ClockSkew::ppm(400));
//! let scenario = ServiceScenario {
//!     online: weather.apply_to(OnlineScenario {
//!         n: 3,
//!         period: ms(50),
//!         duration: ms(8_000),
//!         ..OnlineScenario::default()
//!     }),
//!     ..ServiceScenario::default()
//! }
//! .command(ms(500), p(0), 7);
//! let report = run_weather_service(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);
//! assert!(report.agreement_holds(), "safety survives the weather");
//! assert!(report.decided_len() >= 1);
//! ```

use crate::clock::{ClockSkew, Nanos, SkewedClock, VirtualClock};
use crate::estimator::ArrivalEstimator;
use crate::online::{Fault, OnlineRunner, OnlineScenario};
use crate::service::{ServiceReport, ServiceRunner, ServiceScenario};
use crate::transport::{Endpoint, FaultInjector, FaultyTransport, InMemoryNetwork, NetworkConfig};
use rfd_core::{ProcessId, ProcessSet};

/// One weather mutation of the fault plane, applied mid-run through
/// [`Fault::Weather`] by the schedule machinery.
///
/// Directives mutate the cluster's shared [`FaultInjector`]; a substrate
/// without one (the bare
/// [`InMemoryNetwork`]) reports the
/// directive unsupported and the driver panics — weather schedules need
/// a weather-capable fleet (see [`weather_fleet`]).
///
/// Probabilities are integer per-mille (0..=1000) so directives stay
/// `Copy + Eq` and schedules stay comparable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WeatherDirective {
    /// Blocks the directed link `from → to` (the reverse direction is
    /// unaffected — this is what makes partitions *asymmetric*).
    BlockLink {
        /// Sending side of the blocked link.
        from: ProcessId,
        /// Receiving side of the blocked link.
        to: ProcessId,
    },
    /// Unblocks the directed link `from → to`.
    UnblockLink {
        /// Sending side of the unblocked link.
        from: ProcessId,
        /// Receiving side of the unblocked link.
        to: ProcessId,
    },
    /// Each forwarded datagram is duplicated with probability
    /// `per_mille / 1000` (0 disables the plane and its RNG draws).
    Duplicate {
        /// Duplication probability in per-mille (0..=1000).
        per_mille: u16,
    },
    /// Each arriving datagram is held back with probability
    /// `per_mille / 1000`, released once `depth` younger datagrams have
    /// overtaken it or after `hold` of extra latency, whichever first —
    /// bounded reordering (0 per-mille disables the plane).
    Reorder {
        /// Hold-back probability in per-mille (0..=1000).
        per_mille: u16,
        /// How many younger datagrams may overtake a held one.
        depth: u8,
        /// Maximum extra holding latency.
        hold: Nanos,
    },
    /// `node` goes gray: alive and sending, but everything it sends
    /// arrives `extra` late (slow-but-alive).
    Gray {
        /// The slow-but-alive node.
        node: ProcessId,
        /// Extra one-way latency on everything it sends.
        extra: Nanos,
    },
    /// Ends `node`'s gray failure.
    Ungray {
        /// The recovering node.
        node: ProcessId,
    },
    /// A cluster-wide latency spike: every arrival is held `extra`
    /// longer until [`WeatherDirective::Calm`].
    Spike {
        /// Extra one-way latency on every link.
        extra: Nanos,
    },
    /// Ends a cluster-wide [`WeatherDirective::Spike`].
    Calm,
}

/// A composable adversarial-weather schedule (builder style): each
/// method appends scheduled [`WeatherDirective`]s / base [`Fault`]s
/// and/or per-node [`ClockSkew`]s, and [`Weather::apply_to`] merges the
/// result into an [`OnlineScenario`].
///
/// See the [module docs](self) for the catalogue and an end-to-end
/// example. An empty `Weather` changes nothing.
#[derive(Clone, Debug, Default)]
pub struct Weather {
    events: Vec<(Nanos, Fault)>,
    skews: Vec<(ProcessId, ClockSkew)>,
}

impl Weather {
    /// Clear skies: no directives, no skew.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this weather schedules nothing at all.
    #[must_use]
    pub fn is_calm(&self) -> bool {
        self.events.is_empty() && self.skews.is_empty()
    }

    /// The scheduled `(time, fault)` events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[(Nanos, Fault)] {
        &self.events
    }

    /// Appends a raw base [`Fault`] at `at` (crash / recover / partition
    /// / heal / weather) — the escape hatch for anything the named
    /// combinators don't cover.
    #[must_use]
    pub fn fault(mut self, at: Nanos, fault: Fault) -> Self {
        self.events.push((at, fault));
        self
    }

    /// Appends a raw [`WeatherDirective`] at `at`.
    #[must_use]
    pub fn directive(self, at: Nanos, directive: WeatherDirective) -> Self {
        self.fault(at, Fault::Weather(directive))
    }

    /// An asymmetric partition: from `at` (until `until`, if given),
    /// every directed link from a node in `from` to a node in `to` is
    /// blocked. The reverse directions keep flowing — `to` still hears
    /// `from`-bound traffic's senders, they just never hear back.
    #[must_use]
    pub fn one_way(
        mut self,
        from: ProcessSet,
        to: ProcessSet,
        at: Nanos,
        until: Option<Nanos>,
    ) -> Self {
        for f in from {
            for t in to {
                if f == t {
                    continue;
                }
                self = self.directive(at, WeatherDirective::BlockLink { from: f, to: t });
                if let Some(u) = until {
                    self = self.directive(u, WeatherDirective::UnblockLink { from: f, to: t });
                }
            }
        }
        self
    }

    /// A flapping link: both directions of `a ↔ b` block and heal on a
    /// square wave of the given `half_period`, starting blocked at `at`,
    /// guaranteed unblocked at `until`.
    ///
    /// # Panics
    ///
    /// Panics if `half_period` is zero.
    #[must_use]
    pub fn flap(
        mut self,
        a: ProcessId,
        b: ProcessId,
        half_period: Nanos,
        at: Nanos,
        until: Nanos,
    ) -> Self {
        assert!(
            half_period > Nanos::ZERO,
            "flap needs a positive half-period"
        );
        let mut t = at;
        let mut blocked = false;
        while t < until {
            let (ab, ba) = if blocked {
                (
                    WeatherDirective::UnblockLink { from: a, to: b },
                    WeatherDirective::UnblockLink { from: b, to: a },
                )
            } else {
                (
                    WeatherDirective::BlockLink { from: a, to: b },
                    WeatherDirective::BlockLink { from: b, to: a },
                )
            };
            self = self.directive(t, ab).directive(t, ba);
            blocked = !blocked;
            t = t.saturating_add(half_period);
        }
        if blocked {
            self = self
                .directive(until, WeatherDirective::UnblockLink { from: a, to: b })
                .directive(until, WeatherDirective::UnblockLink { from: b, to: a });
        }
        self
    }

    /// Message duplication at `per_mille / 1000` probability from `at`
    /// (until `until`, if given).
    #[must_use]
    pub fn duplicate(mut self, per_mille: u16, at: Nanos, until: Option<Nanos>) -> Self {
        self = self.directive(at, WeatherDirective::Duplicate { per_mille });
        if let Some(u) = until {
            self = self.directive(u, WeatherDirective::Duplicate { per_mille: 0 });
        }
        self
    }

    /// Bounded reordering (see [`WeatherDirective::Reorder`]) from `at`
    /// (until `until`, if given).
    #[must_use]
    pub fn reorder(
        mut self,
        per_mille: u16,
        depth: u8,
        hold: Nanos,
        at: Nanos,
        until: Option<Nanos>,
    ) -> Self {
        self = self.directive(
            at,
            WeatherDirective::Reorder {
                per_mille,
                depth,
                hold,
            },
        );
        if let Some(u) = until {
            self = self.directive(
                u,
                WeatherDirective::Reorder {
                    per_mille: 0,
                    depth: 0,
                    hold: Nanos::ZERO,
                },
            );
        }
        self
    }

    /// Gray failure: `node` stays alive but everything it sends arrives
    /// `extra` late, from `at` (until `until`, if given).
    #[must_use]
    pub fn gray(mut self, node: ProcessId, extra: Nanos, at: Nanos, until: Option<Nanos>) -> Self {
        self = self.directive(at, WeatherDirective::Gray { node, extra });
        if let Some(u) = until {
            self = self.directive(u, WeatherDirective::Ungray { node });
        }
        self
    }

    /// A cluster-wide latency spike of `extra` from `at` (until `until`,
    /// if given).
    #[must_use]
    pub fn spike(mut self, extra: Nanos, at: Nanos, until: Option<Nanos>) -> Self {
        self = self.directive(at, WeatherDirective::Spike { extra });
        if let Some(u) = until {
            self = self.directive(u, WeatherDirective::Calm);
        }
        self
    }

    /// Runs `node`'s clock at `skew` for the whole scenario: its
    /// [`Pacer`](crate::clock::Pacer) ticks and timeout arithmetic are
    /// locally honest but globally fast/slow (see [`SkewedClock`]). The
    /// last skew given for a node wins.
    #[must_use]
    pub fn skew(mut self, node: ProcessId, skew: ClockSkew) -> Self {
        self.skews.push((node, skew));
        self
    }

    /// A correlated rack/zone failure: every node in `zone` crashes at
    /// `at` as one event (and recovers at `recover`, if given).
    #[must_use]
    pub fn correlated_crash(mut self, zone: ProcessSet, at: Nanos, recover: Option<Nanos>) -> Self {
        for node in zone {
            self = self.fault(at, Fault::Crash(node));
            if let Some(r) = recover {
                self = self.fault(r, Fault::Recover(node));
            }
        }
        self
    }

    /// The per-node [`ClockSkew`] vector for an `n`-node fleet (identity
    /// where [`Weather::skew`] said nothing).
    #[must_use]
    pub fn skews_for(&self, n: usize) -> Vec<ClockSkew> {
        let mut out = vec![ClockSkew::IDENTITY; n];
        for &(node, skew) in &self.skews {
            if let Some(slot) = out.get_mut(node.index()) {
                *slot = skew;
            }
        }
        out
    }

    /// Merges this weather into `scenario`: its events join the
    /// scenario's existing [`FaultSchedule`](crate::online::FaultSchedule)
    /// (time-sorted) and its skews replace `scenario.skews`.
    #[must_use]
    pub fn apply_to(&self, mut scenario: OnlineScenario) -> OnlineScenario {
        scenario.schedule = self
            .events
            .iter()
            .fold(scenario.schedule, |s, &(t, f)| s.at(t, f));
        scenario.skews = self.skews_for(scenario.n);
        scenario
    }

    /// [`Weather::apply_to`] for a full [`ServiceScenario`].
    #[must_use]
    pub fn apply_to_service(&self, mut scenario: ServiceScenario) -> ServiceScenario {
        scenario.online = self.apply_to(scenario.online);
        scenario
    }
}

/// The transport a weather fleet runs over: a reliable in-memory medium
/// wrapped by the weather-capable [`FaultInjector`], re-stamping each
/// node's arrivals in that node's (possibly skewed) local time.
pub type WeatherTransport = FaultyTransport<Endpoint, SkewedClock<VirtualClock>>;

/// Builds the deterministic weather substrate for `scenario`: a
/// *reliable* [`InMemoryNetwork`]
/// (the scenario's `delay` and `seed`) wrapped per node by one shared
/// [`FaultInjector`] carrying the scenario's `loss` — so every drop,
/// duplicate, hold and block is the injector's doing and every
/// [`WeatherDirective`] in the schedule has a fault plane to act on.
/// Each node's wrapper re-stamps arrivals through that node's
/// [`SkewedClock`] (`scenario.skews`, identity when absent).
///
/// Returns `(per-node transports, shared injector, driver clock)`; feed
/// them to [`OnlineRunner::over`] / [`ServiceRunner::over`] or use the
/// [`weather_online_runner`] / [`run_weather_service`] shorthands.
#[must_use]
pub fn weather_fleet(
    scenario: &OnlineScenario,
) -> (Vec<WeatherTransport>, FaultInjector, VirtualClock) {
    let n = scenario.n;
    let clock = VirtualClock::new();
    let config =
        NetworkConfig::reliable(scenario.delay.0, scenario.delay.1).with_seed(scenario.seed);
    let net = InMemoryNetwork::new(n, config, clock.clone());
    let injector = FaultInjector::new(scenario.loss, scenario.seed);
    let transports = (0..n)
        .map(|ix| {
            let skew = scenario.skews.get(ix).copied().unwrap_or_default();
            FaultyTransport::new(
                net.endpoint(ProcessId::new(ix)),
                injector.clone(),
                SkewedClock::new(clock.clone(), skew),
            )
        })
        .collect();
    (transports, injector, clock)
}

/// An [`OnlineRunner`] (detector fleet + per-pair QoS monitors) over the
/// [`weather_fleet`] substrate — deterministic per `scenario.seed`.
#[must_use]
pub fn weather_online_runner<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: OnlineScenario,
) -> OnlineRunner<E, WeatherTransport, VirtualClock, FaultInjector> {
    let (transports, injector, clock) = weather_fleet(&scenario);
    OnlineRunner::over(prototype, scenario, transports, injector, clock)
}

/// A [`ServiceRunner`] (replicated decision service) over the
/// [`weather_fleet`] substrate — deterministic per
/// `scenario.online.seed`.
#[must_use]
pub fn weather_service_runner<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: ServiceScenario,
) -> ServiceRunner<E, WeatherTransport, VirtualClock, FaultInjector> {
    let (transports, injector, clock) = weather_fleet(&scenario.online);
    ServiceRunner::over(prototype, scenario, transports, injector, clock)
}

/// Runs a [`ServiceScenario`] to completion over the weather substrate
/// and returns the report — the weather-capable analogue of
/// [`run_service`](crate::service::run_service).
#[must_use]
pub fn run_weather_service<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: &ServiceScenario,
) -> ServiceReport {
    let mut runner = weather_service_runner(prototype, scenario.clone());
    runner.run_to_end();
    runner.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::transport::{ChurnableTransport, Transport};
    use bytes::Bytes;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn fleet(n: usize, seed: u64) -> (Vec<WeatherTransport>, FaultInjector, VirtualClock) {
        weather_fleet(&OnlineScenario {
            n,
            delay: (ms(1), ms(2)),
            seed,
            ..OnlineScenario::default()
        })
    }

    fn pump(clock: &VirtualClock) {
        clock.advance(ms(5));
    }

    #[test]
    fn one_way_blocks_exactly_one_direction() {
        let (nodes, injector, clock) = fleet(2, 1);
        assert!(injector.apply_weather(&WeatherDirective::BlockLink {
            from: p(0),
            to: p(1),
        }));
        nodes[0].send(p(1), Bytes::from_static(b"muted"));
        nodes[1].send(p(0), Bytes::from_static(b"audible"));
        pump(&clock);
        assert!(nodes[1].recv().is_none(), "the blocked direction drops");
        assert_eq!(
            &nodes[0].recv().expect("reverse flows").payload[..],
            b"audible"
        );
        assert!(injector.apply_weather(&WeatherDirective::UnblockLink {
            from: p(0),
            to: p(1),
        }));
        nodes[0].send(p(1), Bytes::from_static(b"healed"));
        pump(&clock);
        assert!(nodes[1].recv().is_some());
        assert_eq!(injector.weather_stats().link_dropped, 1);
    }

    #[test]
    fn certain_duplication_doubles_every_forwarded_datagram() {
        let (nodes, injector, clock) = fleet(2, 2);
        assert!(injector.apply_weather(&WeatherDirective::Duplicate { per_mille: 1000 }));
        for _ in 0..10 {
            nodes[0].send(p(1), Bytes::from_static(b"x"));
        }
        pump(&clock);
        let mut got = 0;
        while nodes[1].recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 20, "every datagram arrives twice at 1000‰");
        assert_eq!(injector.weather_stats().duplicated, 10);
    }

    #[test]
    fn reordering_lets_younger_datagrams_overtake_held_ones() {
        let (nodes, injector, clock) = fleet(2, 3);
        // Hold `slow` with certainty, then disable the plane so `fast`
        // passes straight through — a deterministic inversion.
        assert!(injector.apply_weather(&WeatherDirective::Reorder {
            per_mille: 1000,
            depth: 1,
            hold: ms(10_000),
        }));
        nodes[0].send(p(1), Bytes::from_static(b"slow"));
        pump(&clock);
        assert!(nodes[1].recv().is_none(), "held back");
        assert!(injector.apply_weather(&WeatherDirective::Reorder {
            per_mille: 0,
            depth: 0,
            hold: Nanos::ZERO,
        }));
        nodes[0].send(p(1), Bytes::from_static(b"fast"));
        pump(&clock);
        assert_eq!(
            &nodes[1].recv().expect("overtaker").payload[..],
            b"fast",
            "the younger datagram overtakes"
        );
        // `fast`'s delivery satisfied the depth-1 release bound long
        // before the 10 s hold expires.
        assert_eq!(&nodes[1].recv().expect("released").payload[..], b"slow");
        assert_eq!(injector.weather_stats().reordered, 1);
    }

    #[test]
    fn gray_failure_is_slow_but_alive() {
        let (nodes, injector, clock) = fleet(2, 4);
        assert!(injector.apply_weather(&WeatherDirective::Gray {
            node: p(0),
            extra: ms(50),
        }));
        nodes[0].send(p(1), Bytes::from_static(b"late"));
        pump(&clock);
        assert!(nodes[1].recv().is_none(), "gray output is held, not lost");
        clock.advance(ms(50));
        let dg = nodes[1].recv().expect("slow but alive");
        assert_eq!(&dg.payload[..], b"late");
        assert_eq!(
            dg.delivered_at,
            clock.now(),
            "release is re-stamped at delivery"
        );
        assert!(injector.apply_weather(&WeatherDirective::Ungray { node: p(0) }));
        nodes[0].send(p(1), Bytes::from_static(b"prompt"));
        pump(&clock);
        assert!(nodes[1].recv().is_some(), "ungray restores promptness");
        assert_eq!(injector.weather_stats().delayed, 1);
    }

    #[test]
    fn spike_delays_everyone_until_calm() {
        let (nodes, injector, clock) = fleet(3, 5);
        assert!(injector.apply_weather(&WeatherDirective::Spike { extra: ms(40) }));
        nodes[0].send(p(2), Bytes::from_static(b"a"));
        nodes[1].send(p(2), Bytes::from_static(b"b"));
        pump(&clock);
        assert!(nodes[2].recv().is_none(), "spike holds every link");
        clock.advance(ms(40));
        assert!(nodes[2].recv().is_some());
        assert!(nodes[2].recv().is_some());
        assert!(injector.apply_weather(&WeatherDirective::Calm));
        nodes[0].send(p(2), Bytes::from_static(b"c"));
        pump(&clock);
        assert!(nodes[2].recv().is_some(), "calm ends the spike");
    }

    #[test]
    fn weather_builder_compiles_into_a_sorted_merged_schedule() {
        let weather = Weather::new()
            .flap(p(0), p(1), ms(100), ms(500), ms(900))
            .gray(p(2), ms(30), ms(200), Some(ms(700)))
            .skew(p(1), ClockSkew::ratio(3, 2))
            .correlated_crash(ProcessSet::singleton(p(3)), ms(1_000), Some(ms(1_500)));
        assert!(!weather.is_calm());
        let scenario = weather.apply_to(OnlineScenario {
            n: 4,
            ..OnlineScenario::default()
        });
        let events = scenario.schedule.events();
        assert!(
            events.windows(2).all(|w| match w {
                [(a, _), (b, _)] => a <= b,
                _ => true,
            }),
            "merged schedule stays time-sorted"
        );
        // flap: toggles at 500/600/700/800, two directions each → 8
        // link events; gray on+off; crash+recover.
        assert_eq!(events.len(), 8 + 2 + 2);
        assert_eq!(
            scenario.skews,
            vec![
                ClockSkew::IDENTITY,
                ClockSkew::ratio(3, 2),
                ClockSkew::IDENTITY,
                ClockSkew::IDENTITY,
            ]
        );
        assert_eq!(
            events
                .iter()
                .filter(|(_, f)| matches!(f, Fault::Crash(_) | Fault::Recover(_)))
                .count(),
            2,
            "the correlated zone rides the base fault vocabulary"
        );
    }

    #[test]
    fn flap_always_ends_unblocked() {
        // An odd number of half-periods would otherwise strand the link.
        let weather = Weather::new().flap(p(0), p(1), ms(100), ms(0), ms(150));
        let blocks: i64 = weather
            .events()
            .iter()
            .map(|(_, f)| match f {
                Fault::Weather(WeatherDirective::BlockLink { .. }) => 1,
                Fault::Weather(WeatherDirective::UnblockLink { .. }) => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(blocks, 0, "every block is eventually unblocked");
    }

    #[test]
    fn calm_weather_changes_nothing_in_the_scenario() {
        let base = OnlineScenario::default();
        let after = Weather::new().apply_to(base.clone());
        assert_eq!(base.schedule.events(), after.schedule.events());
        assert_eq!(after.skews, vec![ClockSkew::IDENTITY; base.n]);
    }
}
