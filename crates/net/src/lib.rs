//! # rfd-net — the realistic failure-detection runtime
//!
//! The systems counterpart of the paper's theory: timeout-based failure
//! detectors as deployed systems actually build them (§1.3), evaluated
//! with Chen–Toueg–Aguilera QoS metrics.
//!
//! * [`clock`] — virtual (deterministic) and system time sources, and
//!   the [`clock::Pacer`] abstraction that lets one scenario driver run
//!   in simulated or wall time.
//! * [`transport`] — a seeded lossy virtual-time network and a real UDP
//!   transport carrying the same wire format ([`codec`]), plus the
//!   [`transport::ChurnableTransport`] fault-injection surface and the
//!   [`transport::FaultyTransport`] wrapper that provides it over real
//!   sockets.
//! * [`estimator`] — heartbeat timeout strategies: fixed, Chen,
//!   Jacobson, φ-accrual.
//! * [`detector`] — the per-node heartbeat detector and node loop.
//! * [`qos`] — detection time / mistake rate / query accuracy metrics
//!   and the single-link evaluation harness (experiment E7), plus the
//!   incremental [`qos::QosMonitor`] for long-running observation.
//! * [`membership`] — a view-based group membership that **emulates
//!   `P`** by exclusion, the paper's explanation of why real systems end
//!   up at the top of the collapsed hierarchy (experiment E8).
//! * [`online`] — the long-running service view: fault schedules
//!   (crash / recover / partition churn), the transport-generic
//!   resumable [`OnlineRunner`] with live per-pair QoS, and the
//!   churn-capable [`online::MembershipWatcher`] with split-brain /
//!   reconvergence accounting (experiments E11, E12).
//! * [`service`] — the replicated-decision service on top of it all:
//!   rotating-coordinator consensus per log slot over the
//!   membership-emulated `P`, TRB-style decision relaying, and
//!   post-heal state transfer between re-merged views (experiment E13).
//! * [`weather`] — the adversarial weather catalogue: a composable
//!   scenario DSL (one-way partitions, flapping links, duplication,
//!   bounded reordering, gray failure, clock skew, correlated zone
//!   crashes) over the [`transport::FaultInjector`] fault planes
//!   (experiment E15).
//!
//! ## Example: measure an estimator's QoS
//!
//! ```
//! use rfd_net::clock::Nanos;
//! use rfd_net::estimator::ChenEstimator;
//! use rfd_net::qos::{evaluate_qos, QosScenario};
//!
//! let scenario = QosScenario {
//!     crash_at: Some(Nanos::from_millis(5_000)),
//!     duration: Nanos::from_millis(10_000),
//!     ..QosScenario::default()
//! };
//! let report = evaluate_qos(
//!     ChenEstimator::new(Nanos::from_millis(100), 16, Nanos::from_millis(400)),
//!     &scenario,
//! );
//! assert!(report.detection_time.is_some(), "the crash is detected");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

/// The vendored byte-buffer crate backing [`codec`] and [`transport`]
/// payloads, re-exported so downstream crates and integration tests can
/// name [`bytes::Bytes`]/[`bytes::BytesMut`] without depending on the
/// vendored path themselves.
pub use bytes;

pub mod clock;
pub mod codec;
pub mod detector;
pub mod estimator;
pub mod membership;
pub mod online;
pub mod qos;
pub mod service;
pub mod transport;
pub mod weather;

pub use clock::{Clock, ClockSkew, Nanos, Pacer, SkewedClock, SystemClock, VirtualClock};
pub use detector::{DetectorNode, HeartbeatDetector};
pub use estimator::{ArrivalEstimator, ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
pub use online::{
    run_membership_churn, run_membership_churn_over, Fault, FaultSchedule, MembershipChurnReport,
    MembershipWatcher, OnlineEvent, OnlineRunner, OnlineScenario,
};
pub use qos::{evaluate_qos, QosMonitor, QosReport, QosScenario, QosTracker};
pub use service::{
    run_service, DecisionService, ReplicatedLog, ServiceReport, ServiceRunner, ServiceScenario,
};
pub use transport::{
    faulty_cluster, ChurnableTransport, FaultInjector, FaultyTransport, InMemoryNetwork, LossModel,
    NetworkConfig, Transport, UdpTransport,
};
pub use weather::{
    run_weather_service, weather_fleet, weather_online_runner, weather_service_runner, Weather,
    WeatherDirective, WeatherTransport,
};
