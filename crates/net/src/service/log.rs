//! The replicated decision log: totally ordered decisions, each stamped
//! with the membership view it was decided in, plus the reconciliation
//! rule post-heal state transfer uses to merge divergent logs, and
//! snapshot-based prefix compaction for fast rejoin.
//!
//! Compaction keeps indexing **absolute**: [`ReplicatedLog::len`] and
//! [`Decision::index`] always count from slot 0, and
//! [`ReplicatedLog::first_index`] marks where the retained tail starts.
//! Everything below `first_index` is summarised by a chained digest, so
//! two replicas can prove their compacted prefixes equal without
//! keeping them ([`ReplicatedLog::digest_at`]).

use rfd_core::ProcessSet;

/// FNV-1a offset basis: the digest chain's starting value.
const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime: the digest chain's mixing multiplier.
const DIGEST_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one big-endian word into the FNV-1a digest chain.
fn fold_word(mut digest: u64, word: u64) -> u64 {
    for byte in word.to_be_bytes() {
        digest = (digest ^ u64::from(byte)).wrapping_mul(DIGEST_PRIME);
    }
    digest
}

/// Folds one decision (index, value and full view stamp) into the
/// digest chain. Order-sensitive by construction: swapping two entries
/// changes the digest.
fn fold_decision(digest: u64, decision: &Decision) -> u64 {
    let members = decision.view.members;
    let mut d = fold_word(digest, decision.index);
    d = fold_word(d, decision.value);
    d = fold_word(d, decision.view.id);
    d = fold_word(d, members as u64);
    fold_word(d, (members >> 64) as u64)
}

/// The membership view a decision was taken in, carrying the **total
/// view order** of the heal-merge membership: primary key the monotone
/// view id, tiebreaker the member bitmap. The derived `Ord` is exactly
/// that `(id, members)` lexicographic order, so "resolved by the total
/// view order" is a plain comparison. The `Default` stamp `(0, ∅)` is
/// the bottom of that order, used before any view is installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ViewStamp {
    /// Monotone view identifier.
    pub id: u64,
    /// Member bitmap of the view (bit `i` = `pᵢ`).
    pub members: u128,
}

impl ViewStamp {
    /// The members as a [`ProcessSet`] (restricted to an `n`-process
    /// universe).
    #[must_use]
    pub fn member_set(&self, n: usize) -> ProcessSet {
        crate::codec::members_to_set(self.members, n)
    }
}

/// One totally ordered decision of the service: the `index`-th entry of
/// every replica's log holds the same `value` (uniform agreement), and
/// records the view it was decided in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Position in the total order.
    pub index: u64,
    /// The decided command.
    pub value: u64,
    /// The view the decision was taken in.
    pub view: ViewStamp,
}

/// What one [`ReplicatedLog::merge_suffix`] reconciliation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Remote entries adopted into the local log.
    pub adopted: u64,
    /// Local entries discarded to the total view order. Non-zero only
    /// if two replicas actually decided different values at one index —
    /// impossible while the consensus layer's (global-majority) safety
    /// holds, so this doubles as a safety alarm.
    pub lost: u64,
}

/// A compact, view-stamped summary of a log prefix: everything below
/// `upto` collapsed to a chained digest. Installing a snapshot
/// ([`ReplicatedLog::install_snapshot`]) replaces a rejoiner's log with
/// this summary in O(1), after which only the short retained tail needs
/// transferring — the heart of fast rejoin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The summary covers decisions `[0, upto)`.
    pub upto: u64,
    /// Chained FNV-1a digest of the covered prefix (see
    /// [`ReplicatedLog::digest_at`]).
    pub digest: u64,
    /// The view of the last covered decision (the `Default` stamp if
    /// the snapshot covers nothing).
    pub view: ViewStamp,
}

/// An append-only decision log with prefix-consistent merging and
/// snapshot compaction.
///
/// Replicas normally grow their logs through consensus decisions and
/// decision relays; after a partition heals, the merged sides exchange
/// suffixes and [`ReplicatedLog::merge_suffix`] reconciles them:
/// matching entries are skipped (prefix consistency), gaps are adopted,
/// and a genuinely conflicting entry — two different values at one index
/// — hands the whole suffix to the side whose entry was decided in the
/// higher-ranked view ([`ViewStamp`]'s total order).
///
/// Once a prefix is stable on every replica it can be compacted away
/// with [`ReplicatedLog::truncate_prefix`]; a rejoiner older than the
/// retained tail catches up by installing a [`Snapshot`] instead of
/// replaying history ([`ReplicatedLog::install_snapshot`]).
#[derive(Clone, Debug)]
pub struct ReplicatedLog {
    entries: Vec<Decision>,
    base: u64,
    base_digest: u64,
    base_view: ViewStamp,
    transferred: u64,
    lost: u64,
    compacted: u64,
    snapshots_installed: u64,
}

impl Default for ReplicatedLog {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            base: 0,
            // Every replica chains from the same FNV-1a offset basis,
            // so equal compacted prefixes yield equal digests.
            base_digest: DIGEST_SEED,
            base_view: ViewStamp::default(),
            transferred: 0,
            lost: 0,
            compacted: 0,
            snapshots_installed: 0,
        }
    }
}

impl ReplicatedLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of decisions in the log, **including** the compacted
    /// prefix — indices stay absolute under compaction.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Whether the log has no decisions yet (a compacted log is *not*
    /// empty — its decisions happened, they are just summarised).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first retained index: decisions below this are compacted
    /// into the digest chain and no longer individually readable.
    #[must_use]
    pub fn first_index(&self) -> u64 {
        self.base
    }

    /// The decision at `index`, if decided **and** still retained.
    #[must_use]
    pub fn get(&self, index: u64) -> Option<&Decision> {
        let slot = index.checked_sub(self.base)?;
        usize::try_from(slot).ok().and_then(|i| self.entries.get(i))
    }

    /// All retained decisions, in index order (the compacted prefix is
    /// summarised by the digest chain instead).
    #[must_use]
    pub fn entries(&self) -> &[Decision] {
        &self.entries
    }

    /// The retained decided values, in index order.
    #[must_use]
    pub fn values(&self) -> Vec<u64> {
        self.entries.iter().map(|d| d.value).collect()
    }

    /// The retained suffix from `index` on (empty if the log is
    /// shorter). If `index` falls inside the compacted prefix this is
    /// the whole retained tail — callers that need the *complete*
    /// history from `index` must check [`ReplicatedLog::first_index`]
    /// and negotiate a snapshot instead.
    #[must_use]
    pub fn suffix(&self, index: u64) -> &[Decision] {
        let from = usize::try_from(index.saturating_sub(self.base))
            .unwrap_or(usize::MAX)
            .min(self.entries.len());
        self.entries.get(from..).unwrap_or(&[])
    }

    /// Entries adopted via state transfer (suffix merges and snapshot
    /// installs) over the log's lifetime.
    #[must_use]
    pub fn transferred(&self) -> u64 {
        self.transferred
    }

    /// Entries discarded to the total view order over the log's
    /// lifetime (zero while consensus safety holds).
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Entries dropped locally by [`ReplicatedLog::truncate_prefix`]
    /// over the log's lifetime.
    #[must_use]
    pub fn compacted(&self) -> u64 {
        self.compacted
    }

    /// Snapshots adopted via [`ReplicatedLog::install_snapshot`] over
    /// the log's lifetime.
    #[must_use]
    pub fn snapshots_installed(&self) -> u64 {
        self.snapshots_installed
    }

    /// The chained digest of the prefix `[0, index)`, or `None` if
    /// `index` is below the compacted base (those entries are gone) or
    /// beyond the log end. Two replicas whose `digest_at(i)` agree held
    /// bit-identical decisions over `[0, i)` — the compaction-era form
    /// of prefix consistency.
    #[must_use]
    pub fn digest_at(&self, index: u64) -> Option<u64> {
        let skip = index.checked_sub(self.base)?;
        let skip = usize::try_from(skip).ok()?;
        if skip > self.entries.len() {
            return None;
        }
        let mut digest = self.base_digest;
        for decision in self.entries.iter().take(skip) {
            digest = fold_decision(digest, decision);
        }
        Some(digest)
    }

    /// A [`Snapshot`] summarising the prefix `[0, upto)`, or `None` if
    /// `upto` is below the compacted base or beyond the log end.
    ///
    /// ```
    /// use rfd_net::service::{ReplicatedLog, ViewStamp};
    ///
    /// let mut log = ReplicatedLog::new();
    /// let view = ViewStamp { id: 1, members: 0b1111 };
    /// for value in [10, 20, 30, 40] {
    ///     log.append(value, view);
    /// }
    /// let snap = log.snapshot(3).unwrap();
    /// assert_eq!(snap.upto, 3);
    /// assert_eq!(snap.view, view);
    /// assert_eq!(Some(snap.digest), log.digest_at(3));
    /// ```
    #[must_use]
    pub fn snapshot(&self, upto: u64) -> Option<Snapshot> {
        let digest = self.digest_at(upto)?;
        let view = if upto == self.base {
            self.base_view
        } else {
            let last = upto.checked_sub(self.base + 1)?;
            let last = usize::try_from(last).ok()?;
            self.entries.get(last)?.view
        };
        Some(Snapshot { upto, digest, view })
    }

    /// Compacts the prefix `[first_index, upto)` into the digest chain,
    /// returning how many entries were dropped. Indices stay absolute:
    /// `len()` is unchanged, reads below `upto` now return `None`.
    /// Clamped to the log end; a no-op below the current base.
    ///
    /// ```
    /// use rfd_net::service::{ReplicatedLog, ViewStamp};
    ///
    /// let mut log = ReplicatedLog::new();
    /// let view = ViewStamp { id: 0, members: 0b111 };
    /// for value in [10, 20, 30, 40] {
    ///     log.append(value, view);
    /// }
    /// let digest_before = log.digest_at(4);
    /// assert_eq!(log.truncate_prefix(2), 2);
    /// assert_eq!(log.first_index(), 2);
    /// assert_eq!(log.len(), 4); // absolute length is unchanged
    /// assert!(log.get(1).is_none()); // compacted away…
    /// assert_eq!(log.get(2).unwrap().value, 30); // …the tail remains
    /// assert_eq!(log.digest_at(4), digest_before); // digest chain too
    /// ```
    pub fn truncate_prefix(&mut self, upto: u64) -> u64 {
        let upto = upto.min(self.len());
        let Some(drop) = upto.checked_sub(self.base) else {
            return 0;
        };
        let Ok(drop) = usize::try_from(drop) else {
            return 0;
        };
        if drop == 0 {
            return 0;
        }
        for dropped in self.entries.drain(..drop) {
            self.base_digest = fold_decision(self.base_digest, &dropped);
            self.base_view = dropped.view;
        }
        self.base = upto;
        self.compacted += drop as u64;
        drop as u64
    }

    /// Adopts a remote [`Snapshot`] that extends past this log's end,
    /// replacing local state with the summary: the log jumps to
    /// `snapshot.upto` with an empty retained tail. Returns how many
    /// decisions the snapshot newly covered, or `None` (state
    /// untouched) if the snapshot does not extend the log — the defence
    /// against stale or forged snapshots.
    ///
    /// ```
    /// use rfd_net::service::{ReplicatedLog, ViewStamp};
    ///
    /// let mut veteran = ReplicatedLog::new();
    /// let view = ViewStamp { id: 2, members: 0b1111 };
    /// for value in [7, 8, 9] {
    ///     veteran.append(value, view);
    /// }
    /// let snap = veteran.snapshot(3).unwrap();
    ///
    /// let mut rejoiner = ReplicatedLog::new();
    /// assert_eq!(rejoiner.install_snapshot(&snap), Some(3));
    /// assert_eq!(rejoiner.len(), 3);
    /// // The compacted prefixes are provably identical:
    /// assert_eq!(rejoiner.digest_at(3), veteran.digest_at(3));
    /// // A snapshot that extends nothing is rejected:
    /// assert_eq!(rejoiner.install_snapshot(&snap), None);
    /// ```
    pub fn install_snapshot(&mut self, snapshot: &Snapshot) -> Option<u64> {
        let covered = snapshot.upto.checked_sub(self.len())?;
        if covered == 0 {
            return None;
        }
        self.entries.clear();
        self.base = snapshot.upto;
        self.base_digest = snapshot.digest;
        self.base_view = snapshot.view;
        self.transferred += covered;
        self.snapshots_installed += 1;
        Some(covered)
    }

    /// Appends the next decision, returning its (absolute) index.
    pub fn append(&mut self, value: u64, view: ViewStamp) -> u64 {
        let index = self.len();
        self.entries.push(Decision { index, value, view });
        index
    }

    /// Reconciles a remote contiguous run of `(value, view_id,
    /// view_members)` entries starting at index `start` into this log:
    ///
    /// * entries below the compacted base are skipped (already covered
    ///   by the digest chain);
    /// * entries matching the local value are skipped (already agreed);
    /// * entries extending the log are adopted;
    /// * entries beyond the current end + run (a gap) are ignored — the
    ///   caller requests the missing prefix instead;
    /// * a conflicting entry resolves by [`ViewStamp`] order: if the
    ///   remote view ranks higher, the local suffix from that index is
    ///   discarded (counted in [`MergeOutcome::lost`]) and the remote
    ///   run adopted; otherwise the rest of the remote run is ignored.
    pub fn merge_suffix(&mut self, start: u64, incoming: &[(u64, u64, u128)]) -> MergeOutcome {
        let mut outcome = MergeOutcome::default();
        for (offset, &(value, view_id, view_members)) in incoming.iter().enumerate() {
            let Some(index) = start.checked_add(offset as u64) else {
                break;
            };
            let view = ViewStamp {
                id: view_id,
                members: view_members,
            };
            if index < self.base {
                continue;
            }
            if index > self.len() {
                break;
            }
            if index == self.len() {
                self.entries.push(Decision { index, value, view });
                outcome.adopted += 1;
                continue;
            }
            let Some(&local) = self.get(index) else {
                break;
            };
            if local.value == value {
                continue;
            }
            if view > local.view {
                let dropped = self.len() - index;
                outcome.lost += dropped;
                self.entries.truncate((index - self.base) as usize);
                self.entries.push(Decision { index, value, view });
                outcome.adopted += 1;
            } else {
                break;
            }
        }
        self.transferred += outcome.adopted;
        self.lost += outcome.lost;
        outcome
    }

    /// Whether this log and `other` agree on every index both have
    /// decided **and retained** — the pairwise form of uniform
    /// agreement. Compacted prefixes are compared by digest where both
    /// sides can still compute one.
    #[must_use]
    pub fn prefix_consistent_with(&self, other: &ReplicatedLog) -> bool {
        let start = self.base.max(other.base);
        if let (Some(a), Some(b)) = (self.digest_at(start), other.digest_at(start)) {
            if a != b {
                return false;
            }
        }
        let mine = usize::try_from(start - self.base).unwrap_or(usize::MAX);
        let theirs = usize::try_from(start - other.base).unwrap_or(usize::MAX);
        self.entries
            .iter()
            .skip(mine)
            .zip(other.entries.iter().skip(theirs))
            .all(|(a, b)| a.value == b.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(id: u64, members: u128) -> ViewStamp {
        ViewStamp { id, members }
    }

    #[test]
    fn append_assigns_consecutive_indices() {
        let mut log = ReplicatedLog::new();
        assert_eq!(log.append(10, stamp(0, 0b11)), 0);
        assert_eq!(log.append(20, stamp(1, 0b01)), 1);
        assert_eq!(log.values(), vec![10, 20]);
        assert_eq!(log.get(1).unwrap().view.id, 1);
        assert!(log.get(2).is_none());
    }

    #[test]
    fn merge_adopts_missing_suffix_and_skips_agreed_prefix() {
        let mut log = ReplicatedLog::new();
        log.append(10, stamp(0, 0b111));
        let outcome = log.merge_suffix(0, &[(10, 0, 0b111), (20, 1, 0b011), (30, 1, 0b011)]);
        assert_eq!(
            outcome,
            MergeOutcome {
                adopted: 2,
                lost: 0
            }
        );
        assert_eq!(log.values(), vec![10, 20, 30]);
        assert_eq!(log.transferred(), 2);
        assert_eq!(log.lost(), 0);
    }

    #[test]
    fn merge_ignores_a_gapped_run() {
        let mut log = ReplicatedLog::new();
        log.append(10, stamp(0, 0b11));
        // A run starting at index 3 would leave a hole at 1..3.
        let outcome = log.merge_suffix(3, &[(40, 2, 0b11)]);
        assert_eq!(outcome, MergeOutcome::default());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn conflicting_suffix_resolves_to_the_higher_view() {
        // Local: decided 20,21 in view (1, {p2,p3}); remote decided
        // 30,31 at the same indices in view (1, {p0,p1}) — same id, and
        // {p2,p3} = 0b1100 outranks {p0,p1} = 0b0011 on the bitmap
        // tiebreaker, so the local suffix must survive...
        let mut local = ReplicatedLog::new();
        local.append(20, stamp(1, 0b1100));
        local.append(21, stamp(1, 0b1100));
        let outcome = local.merge_suffix(0, &[(30, 1, 0b0011), (31, 1, 0b0011)]);
        assert_eq!(outcome, MergeOutcome::default());
        assert_eq!(local.values(), vec![20, 21]);

        // ...and the mirror side loses its whole conflicting suffix.
        let mut remote = ReplicatedLog::new();
        remote.append(30, stamp(1, 0b0011));
        remote.append(31, stamp(1, 0b0011));
        let outcome = remote.merge_suffix(0, &[(20, 1, 0b1100), (21, 1, 0b1100)]);
        assert_eq!(
            outcome,
            MergeOutcome {
                adopted: 2,
                lost: 2
            }
        );
        assert_eq!(remote.values(), vec![20, 21]);
        assert_eq!(remote.lost(), 2);
    }

    #[test]
    fn higher_view_id_beats_any_bitmap() {
        let mut log = ReplicatedLog::new();
        log.append(20, stamp(1, u128::MAX));
        let outcome = log.merge_suffix(0, &[(30, 2, 0b1)]);
        assert_eq!(outcome.adopted, 1);
        assert_eq!(outcome.lost, 1);
        assert_eq!(log.values(), vec![30]);
    }

    #[test]
    fn prefix_consistency_is_checked_on_the_common_prefix() {
        let mut a = ReplicatedLog::new();
        let mut b = ReplicatedLog::new();
        a.append(1, stamp(0, 0b11));
        a.append(2, stamp(0, 0b11));
        b.append(1, stamp(0, 0b11));
        assert!(a.prefix_consistent_with(&b));
        assert!(b.prefix_consistent_with(&a));
        b.append(9, stamp(0, 0b11));
        assert!(!a.prefix_consistent_with(&b));
    }

    #[test]
    fn truncate_prefix_keeps_absolute_indexing() {
        let mut log = ReplicatedLog::new();
        for v in [10, 20, 30, 40, 50] {
            log.append(v, stamp(0, 0b111));
        }
        assert_eq!(log.truncate_prefix(3), 3);
        assert_eq!(log.first_index(), 3);
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        assert!(log.get(2).is_none());
        assert_eq!(log.get(3).map(|d| d.value), Some(40));
        assert_eq!(log.get(4).map(|d| (d.index, d.value)), Some((4, 50)));
        assert_eq!(log.values(), vec![40, 50]);
        assert_eq!(log.compacted(), 3);
        // Appends continue at the absolute tail.
        assert_eq!(log.append(60, stamp(0, 0b111)), 5);
        // Idempotent / clamped edges.
        assert_eq!(log.truncate_prefix(3), 0);
        assert_eq!(log.truncate_prefix(1), 0);
        assert_eq!(log.truncate_prefix(u64::MAX), 3);
        assert_eq!(log.len(), 6);
        assert!(log.entries().is_empty());
    }

    #[test]
    fn digest_chain_survives_compaction() {
        let mut log = ReplicatedLog::new();
        for v in [10, 20, 30, 40] {
            log.append(v, stamp(1, 0b1111));
        }
        let d2 = log.digest_at(2);
        let d4 = log.digest_at(4);
        assert!(d2.is_some() && d4.is_some());
        assert_ne!(d2, d4);
        log.truncate_prefix(2);
        assert_eq!(log.digest_at(2), d2);
        assert_eq!(log.digest_at(4), d4);
        // Below the base the prefix is gone: no digest.
        assert_eq!(log.digest_at(1), None);
        // Beyond the end: no digest either.
        assert_eq!(log.digest_at(5), None);
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        let mut a = ReplicatedLog::new();
        let mut b = ReplicatedLog::new();
        a.append(1, stamp(0, 0b11));
        a.append(2, stamp(0, 0b11));
        b.append(2, stamp(0, 0b11));
        b.append(1, stamp(0, 0b11));
        assert_ne!(a.digest_at(2), b.digest_at(2));
    }

    #[test]
    fn snapshot_install_reproduces_the_compacted_prefix() {
        let mut veteran = ReplicatedLog::new();
        for v in 0..10 {
            veteran.append(100 + v, stamp(v, 0b1111));
        }
        veteran.truncate_prefix(6);
        let snap = veteran.snapshot(6).unwrap();
        assert_eq!(snap.view, stamp(5, 0b1111));

        let mut rejoiner = ReplicatedLog::new();
        rejoiner.append(100, stamp(0, 0b1111)); // short stale prefix
        assert_eq!(rejoiner.install_snapshot(&snap), Some(5));
        assert_eq!(rejoiner.len(), 6);
        assert_eq!(rejoiner.first_index(), 6);
        assert_eq!(rejoiner.digest_at(6), veteran.digest_at(6));
        assert_eq!(rejoiner.snapshots_installed(), 1);

        // Pull the retained tail the PR-5 way; the logs end identical.
        let tail: Vec<_> = veteran
            .suffix(6)
            .iter()
            .map(|d| (d.value, d.view.id, d.view.members))
            .collect();
        rejoiner.merge_suffix(6, &tail);
        assert_eq!(rejoiner.values(), veteran.values());
        assert_eq!(rejoiner.digest_at(10), veteran.digest_at(10));
        assert!(rejoiner.prefix_consistent_with(&veteran));
    }

    #[test]
    fn stale_or_forged_snapshots_are_rejected() {
        let mut log = ReplicatedLog::new();
        for v in [1, 2, 3] {
            log.append(v, stamp(0, 0b11));
        }
        let before = log.clone();
        // Does not extend the log: rejected, state untouched.
        let stale = Snapshot {
            upto: 3,
            digest: 0xDEAD,
            view: stamp(9, 0b11),
        };
        assert_eq!(log.install_snapshot(&stale), None);
        assert_eq!(log.values(), before.values());
        assert_eq!(log.first_index(), 0);
        assert_eq!(log.snapshots_installed(), 0);
    }

    #[test]
    fn merge_skips_indices_below_the_base() {
        let mut log = ReplicatedLog::new();
        for v in [10, 20, 30] {
            log.append(v, stamp(0, 0b11));
        }
        log.truncate_prefix(2);
        // A run over the compacted prefix: entries below base skipped
        // (whatever their values), the retained index compared, the
        // tail adopted.
        let outcome = log.merge_suffix(
            0,
            &[(99, 5, 0b1), (98, 5, 0b1), (30, 0, 0b11), (40, 1, 0b11)],
        );
        assert_eq!(
            outcome,
            MergeOutcome {
                adopted: 1,
                lost: 0
            }
        );
        assert_eq!(log.values(), vec![30, 40]);
    }

    #[test]
    fn prefix_consistency_compares_digests_across_compaction() {
        let mut a = ReplicatedLog::new();
        let mut b = ReplicatedLog::new();
        for v in [1, 2, 3, 4] {
            a.append(v, stamp(0, 0b11));
            b.append(v, stamp(0, 0b11));
        }
        a.truncate_prefix(3);
        assert!(a.prefix_consistent_with(&b));
        assert!(b.prefix_consistent_with(&a));

        // Divergent history is caught through the digest even though
        // one side compacted it away.
        let mut c = ReplicatedLog::new();
        for v in [1, 9, 3, 4] {
            c.append(v, stamp(0, 0b11));
        }
        assert!(!a.prefix_consistent_with(&c));
        assert!(!c.prefix_consistent_with(&a));
    }

    #[test]
    fn snapshot_at_the_base_carries_the_last_compacted_view() {
        let mut log = ReplicatedLog::new();
        log.append(1, stamp(3, 0b111));
        log.append(2, stamp(4, 0b011));
        log.truncate_prefix(2);
        let snap = log.snapshot(2).unwrap();
        assert_eq!(snap.upto, 2);
        assert_eq!(snap.view, stamp(4, 0b011));
        assert!(log.snapshot(1).is_none());
        assert!(log.snapshot(3).is_none());
    }
}
