//! The replicated decision log: totally ordered decisions, each stamped
//! with the membership view it was decided in, plus the reconciliation
//! rule post-heal state transfer uses to merge divergent logs.

use rfd_core::ProcessSet;

/// The membership view a decision was taken in, carrying the **total
/// view order** of the heal-merge membership: primary key the monotone
/// view id, tiebreaker the member bitmap. The derived `Ord` is exactly
/// that `(id, members)` lexicographic order, so "resolved by the total
/// view order" is a plain comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ViewStamp {
    /// Monotone view identifier.
    pub id: u64,
    /// Member bitmap of the view (bit `i` = `pᵢ`).
    pub members: u128,
}

impl ViewStamp {
    /// The members as a [`ProcessSet`] (restricted to an `n`-process
    /// universe).
    #[must_use]
    pub fn member_set(&self, n: usize) -> ProcessSet {
        crate::codec::members_to_set(self.members, n)
    }
}

/// One totally ordered decision of the service: the `index`-th entry of
/// every replica's log holds the same `value` (uniform agreement), and
/// records the view it was decided in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Position in the total order.
    pub index: u64,
    /// The decided command.
    pub value: u64,
    /// The view the decision was taken in.
    pub view: ViewStamp,
}

/// What one [`ReplicatedLog::merge_suffix`] reconciliation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Remote entries adopted into the local log.
    pub adopted: u64,
    /// Local entries discarded to the total view order. Non-zero only
    /// if two replicas actually decided different values at one index —
    /// impossible while the consensus layer's (global-majority) safety
    /// holds, so this doubles as a safety alarm.
    pub lost: u64,
}

/// An append-only decision log with prefix-consistent merging.
///
/// Replicas normally grow their logs through consensus decisions and
/// decision relays; after a partition heals, the merged sides exchange
/// suffixes and [`ReplicatedLog::merge_suffix`] reconciles them:
/// matching entries are skipped (prefix consistency), gaps are adopted,
/// and a genuinely conflicting entry — two different values at one index
/// — hands the whole suffix to the side whose entry was decided in the
/// higher-ranked view ([`ViewStamp`]'s total order).
#[derive(Clone, Debug, Default)]
pub struct ReplicatedLog {
    entries: Vec<Decision>,
    transferred: u64,
    lost: u64,
}

impl ReplicatedLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of decisions in the log.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Whether the log has no decisions yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The decision at `index`, if decided.
    #[must_use]
    pub fn get(&self, index: u64) -> Option<&Decision> {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.entries.get(i))
    }

    /// All decisions, in index order.
    #[must_use]
    pub fn entries(&self) -> &[Decision] {
        &self.entries
    }

    /// The decided values, in index order.
    #[must_use]
    pub fn values(&self) -> Vec<u64> {
        self.entries.iter().map(|d| d.value).collect()
    }

    /// The suffix from `index` on (empty if the log is shorter).
    #[must_use]
    pub fn suffix(&self, index: u64) -> &[Decision] {
        let from = usize::try_from(index)
            .unwrap_or(usize::MAX)
            .min(self.entries.len());
        self.entries.get(from..).unwrap_or(&[])
    }

    /// Entries adopted via state transfer over the log's lifetime.
    #[must_use]
    pub fn transferred(&self) -> u64 {
        self.transferred
    }

    /// Entries discarded to the total view order over the log's
    /// lifetime (zero while consensus safety holds).
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Appends the next decision, returning its index.
    pub fn append(&mut self, value: u64, view: ViewStamp) -> u64 {
        let index = self.len();
        self.entries.push(Decision { index, value, view });
        index
    }

    /// Reconciles a remote contiguous run of `(value, view_id,
    /// view_members)` entries starting at index `start` into this log:
    ///
    /// * entries matching the local value are skipped (already agreed);
    /// * entries extending the log are adopted;
    /// * entries beyond the current end + run (a gap) are ignored — the
    ///   caller requests the missing prefix instead;
    /// * a conflicting entry resolves by [`ViewStamp`] order: if the
    ///   remote view ranks higher, the local suffix from that index is
    ///   discarded (counted in [`MergeOutcome::lost`]) and the remote
    ///   run adopted; otherwise the rest of the remote run is ignored.
    pub fn merge_suffix(&mut self, start: u64, incoming: &[(u64, u64, u128)]) -> MergeOutcome {
        let mut outcome = MergeOutcome::default();
        for (offset, &(value, view_id, view_members)) in incoming.iter().enumerate() {
            let Some(index) = start.checked_add(offset as u64) else {
                break;
            };
            let view = ViewStamp {
                id: view_id,
                members: view_members,
            };
            if index > self.len() {
                break;
            }
            if index == self.len() {
                self.entries.push(Decision { index, value, view });
                outcome.adopted += 1;
                continue;
            }
            let Some(&local) = self.entries.get(index as usize) else {
                break;
            };
            if local.value == value {
                continue;
            }
            if view > local.view {
                let dropped = self.len() - index;
                outcome.lost += dropped;
                self.entries.truncate(index as usize);
                self.entries.push(Decision { index, value, view });
                outcome.adopted += 1;
            } else {
                break;
            }
        }
        self.transferred += outcome.adopted;
        self.lost += outcome.lost;
        outcome
    }

    /// Whether this log and `other` agree on every index both have
    /// decided — the pairwise form of uniform agreement.
    #[must_use]
    pub fn prefix_consistent_with(&self, other: &ReplicatedLog) -> bool {
        self.entries
            .iter()
            .zip(&other.entries)
            .all(|(a, b)| a.value == b.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(id: u64, members: u128) -> ViewStamp {
        ViewStamp { id, members }
    }

    #[test]
    fn append_assigns_consecutive_indices() {
        let mut log = ReplicatedLog::new();
        assert_eq!(log.append(10, stamp(0, 0b11)), 0);
        assert_eq!(log.append(20, stamp(1, 0b01)), 1);
        assert_eq!(log.values(), vec![10, 20]);
        assert_eq!(log.get(1).unwrap().view.id, 1);
        assert!(log.get(2).is_none());
    }

    #[test]
    fn merge_adopts_missing_suffix_and_skips_agreed_prefix() {
        let mut log = ReplicatedLog::new();
        log.append(10, stamp(0, 0b111));
        let outcome = log.merge_suffix(0, &[(10, 0, 0b111), (20, 1, 0b011), (30, 1, 0b011)]);
        assert_eq!(
            outcome,
            MergeOutcome {
                adopted: 2,
                lost: 0
            }
        );
        assert_eq!(log.values(), vec![10, 20, 30]);
        assert_eq!(log.transferred(), 2);
        assert_eq!(log.lost(), 0);
    }

    #[test]
    fn merge_ignores_a_gapped_run() {
        let mut log = ReplicatedLog::new();
        log.append(10, stamp(0, 0b11));
        // A run starting at index 3 would leave a hole at 1..3.
        let outcome = log.merge_suffix(3, &[(40, 2, 0b11)]);
        assert_eq!(outcome, MergeOutcome::default());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn conflicting_suffix_resolves_to_the_higher_view() {
        // Local: decided 20,21 in view (1, {p2,p3}); remote decided
        // 30,31 at the same indices in view (1, {p0,p1}) — same id, and
        // {p2,p3} = 0b1100 outranks {p0,p1} = 0b0011 on the bitmap
        // tiebreaker, so the local suffix must survive...
        let mut local = ReplicatedLog::new();
        local.append(20, stamp(1, 0b1100));
        local.append(21, stamp(1, 0b1100));
        let outcome = local.merge_suffix(0, &[(30, 1, 0b0011), (31, 1, 0b0011)]);
        assert_eq!(outcome, MergeOutcome::default());
        assert_eq!(local.values(), vec![20, 21]);

        // ...and the mirror side loses its whole conflicting suffix.
        let mut remote = ReplicatedLog::new();
        remote.append(30, stamp(1, 0b0011));
        remote.append(31, stamp(1, 0b0011));
        let outcome = remote.merge_suffix(0, &[(20, 1, 0b1100), (21, 1, 0b1100)]);
        assert_eq!(
            outcome,
            MergeOutcome {
                adopted: 2,
                lost: 2
            }
        );
        assert_eq!(remote.values(), vec![20, 21]);
        assert_eq!(remote.lost(), 2);
    }

    #[test]
    fn higher_view_id_beats_any_bitmap() {
        let mut log = ReplicatedLog::new();
        log.append(20, stamp(1, u128::MAX));
        let outcome = log.merge_suffix(0, &[(30, 2, 0b1)]);
        assert_eq!(outcome.adopted, 1);
        assert_eq!(outcome.lost, 1);
        assert_eq!(log.values(), vec![30]);
    }

    #[test]
    fn prefix_consistency_is_checked_on_the_common_prefix() {
        let mut a = ReplicatedLog::new();
        let mut b = ReplicatedLog::new();
        a.append(1, stamp(0, 0b11));
        a.append(2, stamp(0, 0b11));
        b.append(1, stamp(0, 0b11));
        assert!(a.prefix_consistent_with(&b));
        assert!(b.prefix_consistent_with(&a));
        b.append(9, stamp(0, 0b11));
        assert!(!a.prefix_consistent_with(&b));
    }
}
