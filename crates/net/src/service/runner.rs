//! The churn driver for a [`DecisionService`] fleet: the same
//! tick-resumable shape as [`crate::online::OnlineRunner`], one layer
//! up — faults from a [`crate::online::FaultSchedule`], client commands
//! from a typed command queue, decisions out as typed events.

use super::log::Decision;
use super::node::{CompactionPolicy, DecisionService, ServiceOutput};
use crate::clock::{Nanos, Pacer, SkewedClock, VirtualClock};
use crate::estimator::ArrivalEstimator;
use crate::membership::View;
use crate::online::OnlineScenario;
use crate::online::{apply_due_faults, Fault, MembershipChurnReport, MembershipWatcher};
use crate::transport::{ChurnableTransport, Endpoint, InMemoryNetwork, NetworkConfig, Transport};
use rfd_core::{ProcessId, ProcessSet};

/// A service scenario: an [`OnlineScenario`] (fleet size, network,
/// fault schedule, duration) plus the client workload — the typed
/// command queue of `(submit time, receiving node, command value)`
/// entries. Command values must be unique: the value identifies the
/// command across gossip, consensus and the log.
#[derive(Clone, Debug)]
pub struct ServiceScenario {
    /// The fleet/network/fault-schedule parameters.
    pub online: OnlineScenario,
    /// Client submissions, in any order (the runner sorts by time).
    pub commands: Vec<(Nanos, ProcessId, u64)>,
    /// Whether the fleet coalesces per-tick frames into batch datagrams
    /// (see [`DecisionService::with_batching`]). On by default; the
    /// differential tests run both settings and assert identical
    /// decisions.
    pub batching: bool,
    /// Snapshot-based log compaction for the fleet (see
    /// [`DecisionService::with_compaction`]). Off by default — with it
    /// on, rejoiners that fell behind the retained tail catch up via
    /// snapshot transfer instead of a full suffix replay.
    pub compaction: Option<CompactionPolicy>,
}

impl Default for ServiceScenario {
    fn default() -> Self {
        Self {
            online: OnlineScenario::default(),
            commands: Vec::new(),
            batching: true,
            compaction: None,
        }
    }
}

impl ServiceScenario {
    /// Adds one client submission (builder style).
    #[must_use]
    pub fn command(mut self, at: Nanos, node: ProcessId, value: u64) -> Self {
        self.commands.push((at, node, value));
        self
    }

    /// Enables or disables heartbeat coalescing for the fleet (builder
    /// style).
    #[must_use]
    pub fn with_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Enables snapshot-based log compaction for the fleet (builder
    /// style).
    ///
    /// ```
    /// use rfd_net::service::{CompactionPolicy, ServiceScenario};
    ///
    /// let scenario =
    ///     ServiceScenario::default().with_compaction(CompactionPolicy::retain_last(16));
    /// assert_eq!(scenario.compaction, Some(CompactionPolicy::retain_last(16)));
    /// ```
    #[must_use]
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = Some(policy);
        self
    }
}

/// A typed event yielded by [`ServiceRunner::step`].
#[derive(Clone, Debug)]
pub enum ServiceEvent {
    /// A scheduled fault took effect.
    Fault {
        /// Injection time.
        at: Nanos,
        /// The fault.
        fault: Fault,
    },
    /// A client command entered a node's pending pool.
    Submitted {
        /// Submission time.
        at: Nanos,
        /// The node the client talked to.
        node: ProcessId,
        /// The command.
        value: u64,
    },
    /// A node appended a decision to its log (the client-ack moment).
    Decided {
        /// Observation time.
        at: Nanos,
        /// The deciding node.
        node: ProcessId,
        /// The appended decision.
        decision: Decision,
    },
    /// A node installed a membership view.
    ViewInstalled {
        /// Observation time.
        at: Nanos,
        /// The node.
        node: ProcessId,
        /// The view.
        view: View,
    },
    /// A node ran a state-transfer reconciliation.
    Transferred {
        /// Observation time.
        at: Nanos,
        /// The node.
        node: ProcessId,
        /// Entries adopted.
        adopted: u64,
        /// Entries lost (safety alarm; zero in a healthy run).
        lost: u64,
    },
    /// A node served a state-transfer request (responder side).
    SyncServed {
        /// Observation time.
        at: Nanos,
        /// The serving node.
        node: ProcessId,
        /// Encoded bytes of the reply frames.
        bytes: u64,
        /// Whether the reply was a snapshot summary.
        snapshot: bool,
    },
    /// A node fast-rejoined by installing a remote snapshot.
    SnapshotInstalled {
        /// Observation time.
        at: Nanos,
        /// The rejoining node.
        node: ProcessId,
        /// Decisions the summary newly covered.
        covered: u64,
    },
}

/// The post-run report of a [`ServiceRunner`].
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Per node: its final **retained** decision log (under compaction
    /// the prefix below `bases[i]` is summarised by the digest chain;
    /// every `Decision` carries its absolute index).
    pub logs: Vec<Vec<Decision>>,
    /// Per node: the first retained index
    /// ([`crate::service::ReplicatedLog::first_index`]; zero without
    /// compaction).
    pub bases: Vec<u64>,
    /// Per node: whether it ended halted (merge-less exclusion).
    pub halted: Vec<bool>,
    /// Per node: ground-truth up/down at the end of the run.
    pub up: Vec<bool>,
    /// The membership watcher's report, including the state-transfer
    /// metrics (`decisions_transferred` / `decisions_lost`,
    /// `snapshots_sent` / `sync_bytes_sent` / `rejoin_latencies`).
    pub membership: MembershipChurnReport,
    /// Every decision event in observation order.
    pub decisions: Vec<(Nanos, ProcessId, Decision)>,
}

/// Whether two retained logs agree on every index both retain.
/// Decisions carry absolute indices, so the overlap is found by
/// aligning the first entries.
fn retained_overlap_agrees(a: &[Decision], b: &[Decision]) -> bool {
    let (Some(first_a), Some(first_b)) = (a.first(), b.first()) else {
        return true;
    };
    let start = first_a.index.max(first_b.index);
    let skip_a = usize::try_from(start - first_a.index).unwrap_or(usize::MAX);
    let skip_b = usize::try_from(start - first_b.index).unwrap_or(usize::MAX);
    a.iter()
        .skip(skip_a)
        .zip(b.iter().skip(skip_b))
        .all(|(da, db)| da.value == db.value)
}

impl ServiceReport {
    /// Uniform agreement over the final logs: every pair of replicas —
    /// crashed, halted or live — agrees on every index both decided
    /// **and retained** (compacted prefixes are digest-checked at the
    /// log layer; see `ReplicatedLog::prefix_consistent_with`).
    #[must_use]
    pub fn agreement_holds(&self) -> bool {
        self.logs.iter().enumerate().all(|(a, log_a)| {
            self.logs
                .iter()
                .skip(a + 1)
                .all(|log_b| retained_overlap_agrees(log_a, log_b))
        })
    }

    /// Whether every live (up, non-halted) replica ended at the same
    /// absolute log length with agreeing retained entries — the
    /// post-heal convergence E13 gates on.
    #[must_use]
    pub fn live_logs_converged(&self) -> bool {
        let mut live = self
            .logs
            .iter()
            .zip(&self.bases)
            .zip(self.up.iter().zip(&self.halted))
            .filter(|(_, (&up, &halted))| up && !halted)
            .map(|((log, &base), _)| (base + log.len() as u64, log));
        let Some((ref_len, reference)) = live.next() else {
            return true;
        };
        live.all(|(len, log)| len == ref_len && retained_overlap_agrees(log, reference))
    }

    /// The longest final **absolute** log length across replicas
    /// (compacted entries count — they were decided).
    #[must_use]
    pub fn decided_len(&self) -> u64 {
        self.logs
            .iter()
            .zip(&self.bases)
            .map(|(l, &b)| b + l.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// The **retained** decided sequence of the longest final log
    /// (without compaction: the full decided sequence).
    #[must_use]
    pub fn decided_values(&self) -> Vec<u64> {
        self.logs
            .iter()
            .zip(&self.bases)
            .max_by_key(|(l, &b)| b + l.len() as u64)
            .map(|(l, _)| l.iter().map(|d| d.value).collect())
            .unwrap_or_default()
    }

    /// Time of the first decision observed at or after `t` (e.g. the
    /// last heal) — E13's time-to-first-post-heal-decision.
    #[must_use]
    pub fn first_decision_at_or_after(&self, t: Nanos) -> Option<Nanos> {
        self.decisions
            .iter()
            .find(|(at, _, _)| *at >= t)
            .map(|(at, _, _)| *at)
    }
}

/// A resumable service-under-churn scenario: `n` [`DecisionService`]
/// nodes over any substrate, advanced one sample tick at a time —
/// faults and client commands injected on schedule, decisions and view
/// changes yielded as typed [`ServiceEvent`]s, the fleet observed by a
/// [`MembershipWatcher`] (including the state-transfer metrics).
///
/// Generic over the same three substrate traits as
/// [`crate::online::OnlineRunner`]; [`ServiceRunner::new`] builds the
/// simulated stack, [`ServiceRunner::over`] accepts any other (e.g.
/// real UDP sockets under a [`crate::transport::FaultyTransport`]).
///
/// # Examples
///
/// ```
/// use rfd_core::ProcessId;
/// use rfd_net::clock::Nanos;
/// use rfd_net::estimator::ChenEstimator;
/// use rfd_net::online::OnlineScenario;
/// use rfd_net::service::{ServiceRunner, ServiceScenario};
///
/// let ms = Nanos::from_millis;
/// let scenario = ServiceScenario {
///     online: OnlineScenario { n: 3, duration: ms(8_000), ..OnlineScenario::default() },
///     ..ServiceScenario::default()
/// }
/// .command(ms(1_000), ProcessId::new(1), 41)
/// .command(ms(3_000), ProcessId::new(2), 42);
/// let mut runner =
///     ServiceRunner::new(ChenEstimator::new(ms(50), 32, ms(500)), scenario);
/// while runner.step().is_some() {}
/// let report = runner.report();
/// assert_eq!(report.decided_values(), vec![41, 42]);
/// assert!(report.agreement_holds());
/// ```
#[derive(Debug)]
pub struct ServiceRunner<E, T = Endpoint, C = VirtualClock, N = InMemoryNetwork>
where
    E: ArrivalEstimator + Clone,
{
    scenario: ServiceScenario,
    clock: C,
    net: N,
    /// Each node's clock is the driver clock seen through that node's
    /// [`crate::clock::ClockSkew`] (identity unless the scenario skews
    /// it).
    nodes: Vec<DecisionService<E, T, SkewedClock<C>>>,
    watcher: MembershipWatcher,
    up: Vec<bool>,
    next_fault: usize,
    next_command: usize,
    decisions: Vec<(Nanos, ProcessId, Decision)>,
    /// Set when a heal fires: `(heal time, longest absolute log then)`.
    /// Resolved into a rejoin latency once every live node has caught
    /// up to that length.
    heal_pending: Option<(Nanos, u64)>,
    done: bool,
}

impl<E: ArrivalEstimator + Clone> ServiceRunner<E> {
    /// Builds the simulated runner over a fresh seeded in-memory
    /// network (deterministic per seed).
    #[must_use]
    pub fn new(prototype: E, scenario: ServiceScenario) -> Self {
        let n = scenario.online.n;
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(scenario.online.delay.0, scenario.online.delay.1)
            .with_loss(scenario.online.loss)
            .with_seed(scenario.online.seed);
        let net = InMemoryNetwork::new(n, config, clock.clone());
        let endpoints = ProcessSet::full(n)
            .iter()
            .map(|pid| net.endpoint(pid))
            .collect();
        Self::over(prototype, scenario, endpoints, net, clock)
    }
}

impl<E, T, C, N> ServiceRunner<E, T, C, N>
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Pacer + Clone,
    N: ChurnableTransport,
{
    /// Builds the runner over an arbitrary substrate (one [`Transport`]
    /// per node in id order, the fault plane, the pacing clock) — the
    /// scenario's transport-level fields (`loss`, `delay`, `seed`) are
    /// ignored, exactly as in [`crate::online::OnlineRunner::over`].
    ///
    /// # Panics
    ///
    /// Panics if `endpoints.len() != scenario.online.n` or an endpoint
    /// disagrees with its position.
    #[must_use]
    pub fn over(
        prototype: E,
        mut scenario: ServiceScenario,
        endpoints: Vec<T>,
        net: N,
        clock: C,
    ) -> Self {
        let n = scenario.online.n;
        assert_eq!(endpoints.len(), n, "one endpoint per process");
        scenario.commands.sort_by_key(|(at, _, _)| *at);
        let nodes = endpoints
            .into_iter()
            .enumerate()
            .map(|(ix, endpoint)| {
                assert_eq!(endpoint.me().index(), ix, "endpoints out of order");
                let skew = scenario.online.skews.get(ix).copied().unwrap_or_default();
                let node = DecisionService::new(
                    n,
                    prototype.clone(),
                    endpoint,
                    SkewedClock::new(clock.clone(), skew),
                    scenario.online.period,
                )
                .with_batching(scenario.batching);
                let node = if let Some(policy) = scenario.compaction {
                    node.with_compaction(policy)
                } else {
                    node
                };
                if scenario.online.heal_merge {
                    node.with_heal_merge()
                } else {
                    node
                }
            })
            .collect();
        Self {
            watcher: MembershipWatcher::new(n),
            up: vec![true; n],
            nodes,
            net,
            clock,
            next_fault: 0,
            next_command: 0,
            decisions: Vec::new(),
            heal_pending: None,
            done: false,
            scenario,
        }
    }

    /// The current time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Whether the scenario duration has elapsed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Read access to one node (e.g. its live log mid-run). The node's
    /// clock is the driver clock seen through that node's
    /// [`crate::clock::ClockSkew`] (identity unless the scenario skews
    /// it).
    #[must_use]
    pub fn node(&self, ix: usize) -> &DecisionService<E, T, SkewedClock<C>> {
        // rfd-lint: allow(wire-safety, harness accessor with a documented panic contract; ix is caller-chosen and never datagram-derived)
        &self.nodes[ix]
    }

    /// Executes one sample tick: injects due faults and commands, polls
    /// every up node, observes the fleet, and paces the clock. `None`
    /// once the duration has elapsed.
    pub fn step(&mut self) -> Option<Vec<ServiceEvent>> {
        if self.done {
            return None;
        }
        let now = self.clock.now();
        if now >= self.scenario.online.duration {
            self.done = true;
            return None;
        }
        let mut events = Vec::new();
        let watcher = &mut self.watcher;
        apply_due_faults(
            &self.scenario.online.schedule,
            &mut self.next_fault,
            now,
            &self.net,
            &mut self.up,
            |at, fault| {
                match fault {
                    Fault::Crash(p) => watcher.note_crash(*p, at),
                    Fault::Recover(p) => watcher.note_recover(*p),
                    Fault::Heal => watcher.note_heal(at),
                    Fault::Partition(_) => {}
                    Fault::Weather(_) => watcher.note_weather(),
                }
                events.push(ServiceEvent::Fault { at, fault: *fault });
            },
        );
        let healed = events.iter().any(|e| {
            matches!(
                e,
                ServiceEvent::Fault {
                    fault: Fault::Heal,
                    ..
                }
            )
        });
        if healed {
            // Rejoin latency: time from this heal until every live node
            // has at least the longest absolute log observed right now.
            let target = self
                .nodes
                .iter()
                .map(|node| node.log().len())
                .max()
                .unwrap_or(0);
            self.heal_pending = Some((now, target));
        }
        while let Some(&(at, node, value)) = self.scenario.commands.get(self.next_command) {
            if at > now {
                break;
            }
            self.next_command += 1;
            let up = self.up.get(node.index()).copied().unwrap_or(false);
            if up
                && self
                    .nodes
                    .get_mut(node.index())
                    .is_some_and(|target| target.propose(value))
            {
                events.push(ServiceEvent::Submitted { at, node, value });
            }
        }
        for (node, &up) in self.nodes.iter_mut().zip(&self.up) {
            if !up {
                continue;
            }
            let me = node.me();
            for output in node.poll() {
                match output {
                    ServiceOutput::Decided(decision) => {
                        self.decisions.push((now, me, decision));
                        events.push(ServiceEvent::Decided {
                            at: now,
                            node: me,
                            decision,
                        });
                    }
                    ServiceOutput::ViewInstalled(view) => {
                        events.push(ServiceEvent::ViewInstalled {
                            at: now,
                            node: me,
                            view,
                        });
                    }
                    ServiceOutput::Transferred { adopted, lost } => {
                        self.watcher.note_state_transfer(adopted, lost);
                        events.push(ServiceEvent::Transferred {
                            at: now,
                            node: me,
                            adopted,
                            lost,
                        });
                    }
                    ServiceOutput::SyncServed { bytes, snapshot } => {
                        self.watcher.note_sync_served(bytes, snapshot);
                        events.push(ServiceEvent::SyncServed {
                            at: now,
                            node: me,
                            bytes,
                            snapshot,
                        });
                    }
                    ServiceOutput::SnapshotInstalled { covered } => {
                        self.watcher.note_state_transfer(covered, 0);
                        events.push(ServiceEvent::SnapshotInstalled {
                            at: now,
                            node: me,
                            covered,
                        });
                    }
                }
            }
        }
        if let Some((healed_at, target)) = self.heal_pending {
            let caught_up = self
                .nodes
                .iter()
                .zip(&self.up)
                .filter(|(node, &up)| up && !node.is_halted())
                .all(|(node, _)| node.log().len() >= target);
            if caught_up {
                self.watcher.note_rejoin(Nanos::from_nanos(
                    now.as_nanos().saturating_sub(healed_at.as_nanos()),
                ));
                self.heal_pending = None;
            }
        }
        self.watcher.observe(
            now,
            self.nodes
                .iter()
                .zip(&self.up)
                .filter(|(node, &up)| up && !node.is_halted())
                .map(|(node, _)| {
                    let v = node.view();
                    (node.me(), v.id, v.members)
                }),
        );
        self.clock
            .pace_to(now.saturating_add(self.scenario.online.sample_every));
        Some(events)
    }

    /// Runs the remaining ticks, returning every event produced.
    pub fn run_to_end(&mut self) -> Vec<ServiceEvent> {
        let mut all = Vec::new();
        while let Some(mut events) = self.step() {
            all.append(&mut events);
        }
        all
    }

    /// The report as of now (complete once [`ServiceRunner::is_done`]).
    #[must_use]
    pub fn report(&self) -> ServiceReport {
        let mut membership = self.watcher.report();
        // The retransmission-plane counters live on the nodes, not the
        // watcher: sum them into the fleet report here.
        membership.retransmits_sent = self
            .nodes
            .iter()
            .map(DecisionService::retransmits_sent)
            .sum();
        membership.duplicate_frames_dropped = self
            .nodes
            .iter()
            .map(DecisionService::duplicate_frames_dropped)
            .sum();
        ServiceReport {
            logs: self
                .nodes
                .iter()
                .map(|node| node.log().entries().to_vec())
                .collect(),
            bases: self
                .nodes
                .iter()
                .map(|node| node.log().first_index())
                .collect(),
            halted: self.nodes.iter().map(DecisionService::is_halted).collect(),
            up: self.up.clone(),
            membership,
            decisions: self.decisions.clone(),
        }
    }
}

/// Convenience: drives a full simulated service scenario to completion
/// and returns the report — deterministic per `scenario.online.seed`.
#[must_use]
pub fn run_service<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: &ServiceScenario,
) -> ServiceReport {
    let mut runner = ServiceRunner::new(prototype, scenario.clone());
    runner.run_to_end();
    runner.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::ChenEstimator;
    use crate::online::{Fault, FaultSchedule};
    use rfd_core::ProcessSet;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn chen() -> ChenEstimator {
        ChenEstimator::new(ms(150), 16, ms(600))
    }

    /// `k` spaced commands with increasing values, round-robin clients.
    fn spaced_commands(
        scenario: ServiceScenario,
        k: u64,
        from: Nanos,
        gap: Nanos,
    ) -> ServiceScenario {
        (0..k).fold(scenario, |s, i| {
            let n = s.online.n;
            s.command(
                Nanos::from_nanos(from.as_nanos() + i * gap.as_nanos()),
                p((i as usize) % n),
                100 + i,
            )
        })
    }

    #[test]
    fn stable_fleet_decides_every_submission_in_order() {
        let scenario = spaced_commands(
            ServiceScenario {
                online: OnlineScenario {
                    n: 4,
                    duration: ms(20_000),
                    ..OnlineScenario::default()
                },
                ..ServiceScenario::default()
            },
            5,
            ms(1_000),
            ms(2_000),
        );
        let report = run_service(chen(), &scenario);
        assert_eq!(report.decided_values(), vec![100, 101, 102, 103, 104]);
        assert!(report.agreement_holds());
        assert!(report.live_logs_converged());
        assert_eq!(report.membership.decisions_transferred, 0);
        assert_eq!(report.membership.decisions_lost, 0);
        // Every decision recorded the stable full view.
        for log in &report.logs {
            for d in log {
                assert_eq!(d.view.member_set(4), ProcessSet::full(4), "{d:?}");
            }
        }
    }

    #[test]
    fn coordinator_crash_excludes_then_the_log_resumes() {
        // p0 coordinates both the membership and consensus round 0; its
        // crash must stall decisions only until the membership excludes
        // it (emulating P), after which rounds rotate past it.
        let scenario = spaced_commands(
            ServiceScenario {
                online: OnlineScenario {
                    n: 4,
                    duration: ms(30_000),
                    schedule: FaultSchedule::new().at(ms(6_500), Fault::Crash(p(0))),
                    ..OnlineScenario::default()
                },
                ..ServiceScenario::default()
            },
            6,
            ms(1_000),
            ms(3_500),
        );
        let report = run_service(chen(), &scenario);
        // Commands submitted to the crashed p0 after its crash are not
        // accepted; every other one decides.
        let decided = report.decided_values();
        assert!(decided.len() >= 4, "{decided:?}");
        assert!(report.agreement_holds());
        assert!(report.live_logs_converged());
        // The post-crash view excluded p0, and decisions after the
        // exclusion record a view without it.
        let last = report.logs[1].last().expect("survivor decided");
        assert!(!last.view.member_set(4).contains(p(0)), "{last:?}");
    }

    #[test]
    fn healed_partition_transfers_the_missed_decisions() {
        // p3 is cut off while the majority keeps deciding; after the
        // heal the merged view triggers state transfer and p3 ends with
        // the full log without ever having been in the deciding quorum.
        let scenario = spaced_commands(
            ServiceScenario {
                online: OnlineScenario {
                    n: 4,
                    duration: ms(30_000),
                    heal_merge: true,
                    schedule: FaultSchedule::new()
                        .at(ms(4_000), Fault::Partition(ProcessSet::singleton(p(3))))
                        .at(ms(16_000), Fault::Heal),
                    ..OnlineScenario::default()
                },
                ..ServiceScenario::default()
            },
            5,
            ms(5_000),
            ms(2_200),
        );
        let report = run_service(chen(), &scenario);
        assert!(report.agreement_holds());
        assert!(report.live_logs_converged(), "{:?}", report.logs);
        assert_eq!(report.decided_values().len(), 5);
        assert!(
            report.membership.decisions_transferred > 0,
            "p3 must catch up via state transfer: {:?}",
            report.membership
        );
        assert_eq!(
            report.membership.decisions_lost, 0,
            "no acked decision lost"
        );
        assert_eq!(report.logs[3].len(), 5, "p3 holds the full log");
    }

    #[test]
    fn merge_less_exclusion_freezes_but_never_forks_the_log() {
        // Default §1.3 policy: the partitioned p3 is excluded forever
        // (and halts once it learns); its frozen log must still be a
        // prefix of the survivors' — uniform agreement by fiat.
        let scenario = spaced_commands(
            ServiceScenario {
                online: OnlineScenario {
                    n: 4,
                    duration: ms(30_000),
                    schedule: FaultSchedule::new()
                        .at(ms(6_000), Fault::Partition(ProcessSet::singleton(p(3))))
                        .at(ms(18_000), Fault::Heal),
                    ..OnlineScenario::default()
                },
                ..ServiceScenario::default()
            },
            5,
            ms(1_000),
            ms(2_500),
        );
        let report = run_service(chen(), &scenario);
        assert!(report.agreement_holds());
        assert_eq!(report.decided_values().len(), 5);
        assert!(
            report.logs[3].len() <= report.logs[0].len(),
            "the excluded node can only be behind"
        );
    }

    #[test]
    fn service_runs_are_deterministic_per_seed() {
        let scenario = spaced_commands(
            ServiceScenario {
                online: OnlineScenario {
                    n: 4,
                    duration: ms(24_000),
                    seed: 9,
                    heal_merge: true,
                    schedule: FaultSchedule::new()
                        .at(ms(5_000), Fault::Partition(ProcessSet::singleton(p(2))))
                        .at(ms(12_000), Fault::Heal),
                    ..OnlineScenario::default()
                },
                ..ServiceScenario::default()
            },
            4,
            ms(1_500),
            ms(2_500),
        );
        let a = run_service(chen(), &scenario);
        let b = run_service(chen(), &scenario);
        assert_eq!(a.logs, b.logs);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(
            a.membership.decisions_transferred,
            b.membership.decisions_transferred
        );
        assert_eq!(a.membership.view_changes, b.membership.view_changes);
    }

    #[test]
    fn compaction_rejoin_goes_through_a_snapshot_and_still_converges() {
        // p3 misses a long stretch of decisions while partitioned; with
        // a short retained tail the majority compacts past p3's log, so
        // the post-heal catch-up must negotiate a snapshot transfer —
        // and the fleet must still converge, deterministically per seed.
        let scenario = spaced_commands(
            ServiceScenario {
                online: OnlineScenario {
                    n: 4,
                    duration: ms(60_000),
                    heal_merge: true,
                    schedule: FaultSchedule::new()
                        .at(ms(3_000), Fault::Partition(ProcessSet::singleton(p(3))))
                        .at(ms(40_000), Fault::Heal),
                    ..OnlineScenario::default()
                },
                ..ServiceScenario::default()
            }
            .with_compaction(CompactionPolicy::retain_last(4)),
            24,
            ms(1_000),
            ms(1_400),
        );
        let report = run_service(chen(), &scenario);
        assert!(report.agreement_holds());
        assert!(report.live_logs_converged(), "{:?}", report.bases);
        assert!(report.decided_len() >= 20, "{}", report.decided_len());
        assert!(
            report.membership.snapshots_sent > 0,
            "p3 fell behind the retained tail and must rejoin via snapshot: {:?}",
            report.membership
        );
        assert_eq!(report.membership.decisions_lost, 0);
        assert!(
            report.bases.iter().any(|&b| b > 0),
            "the majority must have compacted: {:?}",
            report.bases
        );
        assert!(
            !report.membership.rejoin_latencies.is_empty(),
            "the heal must resolve into a measured rejoin latency"
        );
        let again = run_service(chen(), &scenario);
        assert_eq!(report.logs, again.logs);
        assert_eq!(report.bases, again.bases);
        assert_eq!(
            report.membership.snapshots_sent,
            again.membership.snapshots_sent
        );
        assert_eq!(
            report.membership.sync_bytes_sent,
            again.membership.sync_bytes_sent
        );
    }
}
