//! The live replicated-decision service: the paper's algorithms running
//! **on top of** the online membership runtime.
//!
//! §1.3's practitioners build replicated services on a group membership
//! that emulates `P` by exclusion — this module closes that loop
//! executably. A [`DecisionService`] node stacks, over one transport:
//!
//! * the membership service ([`crate::membership::MembershipNode`]),
//!   whose view is the emulated Perfect detector;
//! * one rotating-coordinator consensus instance per log slot
//!   ([`rfd_algo::consensus::RotatingConsensus`] driven by
//!   [`rfd_algo::driver::SlotDriver`]), fed the emulated `P` as its
//!   suspect source and quorum-sized over all `n` processes, so a
//!   partitioned minority stalls instead of forking the log;
//! * TRB-style decision relaying and — under heal-merge membership —
//!   post-heal **state transfer**: re-merged members exchange log
//!   suffixes and reconcile them prefix-consistently, conflicts (a
//!   safety alarm, impossible while the quorum intersection holds)
//!   resolved by the total view order ([`ViewStamp`]).
//!
//! Client commands enter through a typed queue
//! ([`DecisionService::propose`] / [`ServiceScenario::command`]); what
//! comes out is a [`ReplicatedLog`] of totally ordered [`Decision`]s,
//! each recording the membership view it was decided in.
//! [`ServiceRunner`] drives a whole fleet through a fault schedule,
//! tick-resumable like [`crate::online::OnlineRunner`]; experiment E13
//! tabulates decided throughput and post-heal recovery latency per
//! estimator, and `examples/live_service.rs` is the live dashboard.
//!
//! Under a [`CompactionPolicy`] the log additionally **compacts**:
//! prefixes every current member has acknowledged are folded into a
//! chained digest ([`ReplicatedLog::truncate_prefix`]), and a rejoiner
//! that fell behind the retained tail fast-rejoins by installing a
//! view-stamped [`Snapshot`] instead of replaying history — rejoin
//! cost tracks the retained tail, not the log length (experiment E14).
//! The snapshot/compaction state machine and the transfer-negotiation
//! decision tree are documented in ARCHITECTURE.md ("Decision
//! lifecycle"); the wire frames in `docs/WIRE.md`.

mod log;
mod node;
mod runner;

pub use log::{Decision, MergeOutcome, ReplicatedLog, Snapshot, ViewStamp};
pub use node::{CompactionPolicy, DecisionService, ServiceOutput};
pub use runner::{run_service, ServiceEvent, ServiceReport, ServiceRunner, ServiceScenario};
