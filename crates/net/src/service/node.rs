//! One node of the live replicated-decision service.

use super::log::{Decision, ReplicatedLog, Snapshot, ViewStamp};
use crate::clock::{Clock, Nanos};
use crate::codec::{
    decode_borrowed, encode, set_to_members, Command, ConsensusFrame, DecidedMsg, SnapshotReply,
    SnapshotRequest, SyncReply, SyncRequest, WireMsg, WireView, MAX_SYNC_ENTRIES,
};
use crate::estimator::ArrivalEstimator;
use crate::membership::{MembershipNode, View};
use crate::transport::{Datagram, Transport};
use bytes::Bytes;
use rfd_algo::consensus::{RotatingConsensus, RotatingMsg};
use rfd_algo::driver::{SlotDriver, SlotSend};
use rfd_core::{ProcessId, ProcessSet};
use std::collections::{BTreeMap, BTreeSet};

/// How many pending commands one node re-gossips per heartbeat period —
/// the anti-entropy that lets a command submitted on a once-partitioned
/// side reach the rest of the group after the heal.
const GOSSIP_BATCH: usize = 8;

/// How far ahead of the local log tail a buffered decision relay may
/// sit. Anything further is dropped (the sync path re-fetches real
/// entries anyway), so a flood of forged far-future `Decided` frames
/// cannot grow the buffer without bound — the node-level counterpart of
/// the codec's allocation caps.
const FUTURE_WINDOW: u64 = 1024;

/// How far above the local log tail an incoming consensus frame's slot
/// may point. The `SlotDriver` arena is a dense per-slot `Vec`, so
/// without this gate a single forged `Consensus` frame with a huge slot
/// forces an allocation of that size (a remotely triggered abort, found
/// by the `wire_fuzz` battery). Correct peers run consensus at most a
/// few slots ahead of any live log; partitioned stragglers catch up via
/// state transfer, not by joining far-future rounds.
const SLOT_HORIZON: u64 = 1024;

/// Retransmission-timeout floor, in heartbeat periods. Calm-network
/// decisions complete within a couple of one-way delays — far under two
/// periods — so no retransmission timer ever fires on a calm run.
const RETX_FLOOR_PERIODS: u64 = 2;

/// Retransmission-timeout ceiling, in heartbeat periods, clamping the
/// estimator-derived timeout.
const RETX_CAP_PERIODS: u64 = 8;

/// Backoff ceiling, in heartbeat periods: the retransmission interval
/// doubles per silent firing but never exceeds this, so a slot stalled
/// on a long partition keeps probing at a bounded, non-zero rate
/// (bounded *interval*, unbounded *attempts* — liveness under any loss
/// rate needs retries to never give up).
const RETX_BACKOFF_CAP_PERIODS: u64 = 16;

/// One exponential-backoff retry timer of the retransmission plane.
#[derive(Clone, Copy, Debug)]
struct RetryTimer {
    /// Next firing instant.
    next: Nanos,
    /// Current backoff interval (doubles per firing, capped).
    interval: Nanos,
    /// Firings so far — rotates probe targets across the view.
    attempts: u32,
}

/// A typed event produced by one [`DecisionService::poll`].
#[derive(Clone, Debug)]
pub enum ServiceOutput {
    /// A decision was appended to this node's log — the moment a real
    /// service would acknowledge the command's client.
    Decided(Decision),
    /// The node installed a new membership view.
    ViewInstalled(View),
    /// A state-transfer reconciliation ran against this node's log.
    Transferred {
        /// Entries adopted from the peer.
        adopted: u64,
        /// Local entries discarded to the total view order (zero while
        /// consensus safety holds).
        lost: u64,
    },
    /// This node served a state-transfer request (responder side):
    /// `bytes` of encoded reply frames went out, as a snapshot summary
    /// or as plain suffix chunks.
    SyncServed {
        /// Total encoded bytes of the reply frames.
        bytes: u64,
        /// Whether the reply was a compacted-prefix snapshot (`true`)
        /// or the ordinary suffix exchange (`false`).
        snapshot: bool,
    },
    /// This node fast-rejoined by installing a remote snapshot,
    /// covering `covered` decisions it was missing in O(1).
    SnapshotInstalled {
        /// Decisions newly covered by the installed summary.
        covered: u64,
    },
}

/// Snapshot-based log-compaction policy: how much decided history a
/// node keeps *behind the all-replica stable index* (the lowest log
/// length any current member has acknowledged). Everything older is
/// folded into the digest chain; a rejoiner that fell behind the
/// retained tail catches up via snapshot transfer instead of replaying
/// history.
///
/// Compaction is opt-in ([`DecisionService::with_compaction`]): without
/// a policy the log grows unboundedly and every sync is the full PR-5
/// suffix exchange.
///
/// ```
/// use rfd_net::service::CompactionPolicy;
///
/// let policy = CompactionPolicy::retain_last(16);
/// assert_eq!(policy.retain, 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Decisions to keep below the stable index (the retained tail a
    /// slightly-behind peer can still sync from without a snapshot).
    pub retain: u64,
}

impl CompactionPolicy {
    /// A retain-last-`k` policy.
    #[must_use]
    pub fn retain_last(retain: u64) -> Self {
        Self { retain }
    }
}

/// A long-lived replicated-decision service node: the paper's §1.3
/// stack, live.
///
/// Each node layers three protocols over **one** transport:
///
/// 1. the group membership ([`MembershipNode`]), whose view emulates a
///    Perfect detector by exclusion — `output(P)` = everyone outside
///    the view;
/// 2. a rotating-coordinator consensus instance per log slot
///    ([`rfd_algo::consensus::RotatingConsensus`] under a
///    [`SlotDriver`]), fed that emulated `P` as its suspect source, and
///    quorum-sized over **all** `n` processes so a partitioned minority
///    can stall but never split the log;
/// 3. a TRB-style decision relay plus post-heal **state transfer**:
///    after a view change re-admits members, nodes exchange log
///    suffixes and reconcile them prefix-consistently
///    ([`ReplicatedLog::merge_suffix`]). Under a [`CompactionPolicy`]
///    the suffix exchange is two-tier: a peer within the retained tail
///    gets plain chunks, one that fell behind the compacted base
///    negotiates a snapshot ([`Snapshot`]) and fast-rejoins in O(tail)
///    instead of O(history).
///
/// Commands enter through [`DecisionService::propose`] (a typed command
/// queue: the pending pool), are gossiped to the group, and leave as
/// totally ordered [`Decision`]s that record the membership view they
/// were decided in. Drive the node by calling
/// [`DecisionService::poll`] once per tick —
/// [`crate::service::ServiceRunner`] does exactly that under a fault
/// schedule.
///
/// The receive path is zero-copy: datagrams drain in one batch into a
/// reusable buffer and route through the borrowed-view codec, so the
/// steady-state tick of an idle or heartbeat-only fleet allocates
/// nothing. [`Batch`](WireMsg::Batch) frames (e.g. a coordinator's
/// coalesced heartbeat + view announcement) are unpacked inline and each
/// sub-frame routed as if it had arrived alone.
#[derive(Debug)]
pub struct DecisionService<E, T, C> {
    n: usize,
    membership: MembershipNode<E, T, C>,
    clock: C,
    period: Nanos,
    driver: SlotDriver<RotatingConsensus<u64>>,
    log: ReplicatedLog,
    /// Known, not yet decided commands (ordered: proposals pick the
    /// minimum, so identical pools propose identically).
    pool: BTreeSet<u64>,
    /// Commands seen decided (dedup for late gossip).
    decided_values: BTreeSet<u64>,
    /// Decision relays that arrived ahead of the log tail (bounded to
    /// [`FUTURE_WINDOW`] entries past the tail).
    future: BTreeMap<u64, (u64, ViewStamp)>,
    /// The log length at which the last gap-triggered [`SyncRequest`]
    /// went out: while the tail hasn't moved, further ahead-of-tail
    /// relays don't re-request (each peer would otherwise stream the
    /// whole missing suffix once per relayed decision).
    gap_synced_at: Option<u64>,
    /// Compaction policy, if enabled.
    compaction: Option<CompactionPolicy>,
    /// Highest log length each peer is known to hold, learned from the
    /// indices piggybacked on existing traffic (`Decided` relays, sync
    /// and snapshot requests). The minimum over current view members is
    /// the stable index compaction trims behind.
    peer_acked: Vec<u64>,
    /// The log length at which the last [`SnapshotRequest`] went out —
    /// the same once-per-tail-position throttle as `gap_synced_at`,
    /// for snapshot negotiation.
    snapshot_requested_at: Option<u64>,
    /// Whether this node has an outstanding snapshot request. An
    /// unsolicited [`SnapshotReply`] (nothing outstanding) is dropped
    /// without touching any state — a forged summary cannot overwrite
    /// a healthy log.
    awaiting_snapshot: bool,
    /// Snapshot summaries this node served to rejoiners.
    snapshots_served: u64,
    /// Per-open-slot consensus retransmission timers: armed when a slot
    /// emits to peers, reset by fresh emission (progress), dropped with
    /// the slot on decision. See the "Retransmission plane" section of
    /// ARCHITECTURE.md for the timer derivation.
    retx: BTreeMap<u64, RetryTimer>,
    /// Reusable scratch: slots whose timers fired this poll.
    retx_due: Vec<u64>,
    /// Reusable scratch: slots that emitted fresh peer traffic this
    /// poll (their timers reset instead of firing).
    retx_touched: Vec<u64>,
    /// Per-peer earliest next laggard-push instant — continuously
    /// pushed back while the peer's acked length keeps up with ours
    /// **or keeps growing**, so a push fires only after a peer stays
    /// behind and stalled for a full timeout (the pull paths — sync
    /// fanout, tail probes, snapshot negotiation — get to finish the
    /// job on their own first; the push is the fallback of last
    /// resort, not a parallel transfer).
    push_at: Vec<Nanos>,
    /// Per-peer laggard-push backoff interval.
    push_interval: Vec<Nanos>,
    /// Per-peer acked length observed when the push fuse was last
    /// (re)armed — growth past it counts as progress.
    push_acked: Vec<u64>,
    /// Retry timer for an outstanding snapshot negotiation (armed by
    /// [`DecisionService::maybe_request_snapshot`], cleared when the
    /// rejoin completes through any channel).
    snapshot_retry: Option<RetryTimer>,
    /// Frames re-sent by the retransmission plane: consensus re-sends,
    /// tail probes, laggard pushes and snapshot re-requests.
    retransmits_sent: u64,
    /// Received frames dropped as duplicates: consensus frames for
    /// already-decided slots, re-relayed decisions, re-gossiped
    /// already-decided commands. Nonzero under retransmission (or plain
    /// in-flight races) — receipt is idempotent, so these change no
    /// protocol state.
    duplicate_frames_dropped: u64,
    last_view: View,
    next_gossip: Nanos,
    /// Reusable receive buffer for [`Transport::recv_batch`].
    rx_buf: Vec<Datagram>,
    /// Reusable consensus-frame inbox, refilled each poll.
    consensus_in: Vec<(u64, ProcessId, RotatingMsg<u64>)>,
    /// Reusable entry list for copying a borrowed sync-reply view out of
    /// its datagram before the merge (which needs a contiguous slice).
    sync_scratch: Vec<(u64, u64, u128)>,
    /// Datagrams dropped because they failed to decode. Undecodable
    /// bytes never touch any protocol layer — the service's graceful
    /// drop-and-count posture toward arbitrary wire input.
    malformed_frames: u64,
}

impl<E, T, C> DecisionService<E, T, C>
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Clock + Clone,
{
    /// Creates a service node (initial full view, empty log) whose
    /// membership heartbeats every `period`.
    #[must_use]
    pub fn new(n: usize, prototype: E, transport: T, clock: C, period: Nanos) -> Self {
        let membership = MembershipNode::new(n, prototype, transport, clock.clone(), period);
        let me = membership.transport().me();
        Self {
            n,
            last_view: membership.view(),
            membership,
            clock,
            period,
            driver: SlotDriver::new(me, n),
            log: ReplicatedLog::new(),
            pool: BTreeSet::new(),
            decided_values: BTreeSet::new(),
            future: BTreeMap::new(),
            gap_synced_at: None,
            compaction: None,
            peer_acked: vec![0; n],
            snapshot_requested_at: None,
            awaiting_snapshot: false,
            snapshots_served: 0,
            retx: BTreeMap::new(),
            retx_due: Vec::new(),
            retx_touched: Vec::new(),
            push_at: vec![Nanos::ZERO; n],
            push_interval: vec![Nanos::ZERO; n],
            push_acked: vec![0; n],
            snapshot_retry: None,
            retransmits_sent: 0,
            duplicate_frames_dropped: 0,
            next_gossip: Nanos::ZERO,
            rx_buf: Vec::new(),
            consensus_in: Vec::new(),
            sync_scratch: Vec::new(),
            malformed_frames: 0,
        }
    }

    /// Enables partition-heal view reconciliation on the underlying
    /// membership (builder style) — required for post-heal state
    /// transfer to have surviving nodes to transfer *to*; see
    /// [`MembershipNode::with_heal_merge`].
    #[must_use]
    pub fn with_heal_merge(mut self) -> Self {
        self.membership = self.membership.with_heal_merge();
        self
    }

    /// Sets heartbeat/view-change coalescing on the underlying
    /// membership (builder style; default on) — see
    /// [`MembershipNode::with_batching`].
    #[must_use]
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.membership = self.membership.with_batching(batching);
        self
    }

    /// Enables snapshot-based log compaction under `policy` (builder
    /// style; default off). The node trims its log behind the
    /// all-replica stable index every gossip period and answers
    /// below-base sync requests with a snapshot instead of a replay.
    #[must_use]
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = Some(policy);
        self
    }

    /// Snapshot summaries this node served to rejoiners.
    #[must_use]
    pub fn snapshots_served(&self) -> u64 {
        self.snapshots_served
    }

    /// Frames re-sent by the retransmission plane: stalled-slot
    /// consensus re-sends, tail probes, laggard pushes and snapshot
    /// re-requests. Stays **zero on a calm network** — every timer's
    /// floor exceeds calm decision latency, so the plane is pure
    /// insurance against loss.
    #[must_use]
    pub fn retransmits_sent(&self) -> u64 {
        self.retransmits_sent
    }

    /// Received frames dropped as duplicates (idempotent receipt):
    /// consensus frames for already-decided slots, re-relayed
    /// decisions, re-gossiped already-decided commands.
    #[must_use]
    pub fn duplicate_frames_dropped(&self) -> u64 {
        self.duplicate_frames_dropped
    }

    /// This node's identity.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.membership.transport().me()
    }

    /// The current membership view.
    #[must_use]
    pub fn view(&self) -> View {
        self.membership.view()
    }

    /// Whether the node halted after a (merge-less) exclusion.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.membership.is_halted()
    }

    /// The node's decision log.
    #[must_use]
    pub fn log(&self) -> &ReplicatedLog {
        &self.log
    }

    /// Commands known but not yet decided.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pool.len()
    }

    /// Datagrams this node dropped as undecodable, plus malformed
    /// frames its membership layer dropped (out-of-range heartbeat
    /// senders). Rejected input changes no protocol state.
    #[must_use]
    pub fn malformed_frames(&self) -> u64 {
        self.malformed_frames + self.membership.malformed_frames()
    }

    /// The membership-emulated Perfect-detector output this node feeds
    /// its consensus instances.
    #[must_use]
    pub fn emulated_suspects(&self) -> ProcessSet {
        self.membership.emulated_suspects()
    }

    /// Submits a client command: enqueues it in the pending pool and
    /// gossips it to the group. Returns `false` (and does nothing) if
    /// the node has halted or the command was already decided — command
    /// values identify commands, so they must be unique per run.
    pub fn propose(&mut self, value: u64) -> bool {
        if self.is_halted() || self.decided_values.contains(&value) {
            return false;
        }
        if self.pool.insert(value) {
            self.broadcast(&WireMsg::Command(Command { value }));
        }
        true
    }

    /// Routes one decoded frame. Returns `true` if the node halted while
    /// processing it (the caller stops draining).
    fn route_frame(
        &mut self,
        from: ProcessId,
        delivered_at: Nanos,
        frame: &WireView<'_>,
        consensus_in: &mut Vec<(u64, ProcessId, RotatingMsg<u64>)>,
        events: &mut Vec<ServiceOutput>,
    ) -> bool {
        match frame {
            WireView::Heartbeat(_) | WireView::ViewChange(_) => {
                self.membership.on_wire_view(frame, delivered_at);
                if self.membership.is_halted() {
                    return true;
                }
            }
            WireView::Command(c) => self.learn_command(c.value),
            WireView::Consensus(cf) => {
                // Gate the slot before it reaches the driver's arena:
                // `SlotDriver` stores slots in a dense `Vec`, so an
                // attacker-chosen far-future slot would force an
                // allocation of that size (found by `wire_fuzz`). A
                // correct peer only runs consensus within a bounded
                // window above its log; anything further is dropped and
                // counted like an undecodable frame.
                if from.index() < self.n && cf.slot < self.log.len().saturating_add(SLOT_HORIZON) {
                    if cf.slot < self.log.len() || self.driver.decision(cf.slot).is_some() {
                        // The slot is already decided here: a stale or
                        // retransmitted frame. The driver drops it; the
                        // counter records the (harmless) duplicate.
                        self.duplicate_frames_dropped += 1;
                    }
                    consensus_in.push((cf.slot, from, cf.msg.clone()));
                } else if from.index() < self.n {
                    self.malformed_frames += 1;
                }
            }
            WireView::Decided(d) => self.on_decided(from, d, events),
            WireView::SyncRequest(s) => self.on_sync_request(from, s.from_index, events),
            WireView::SyncReply(view) => {
                // The merge needs a contiguous slice; copy the borrowed
                // entries into the reusable scratch instead of a fresh
                // Vec per chunk.
                let mut entries = std::mem::take(&mut self.sync_scratch);
                entries.clear();
                entries.extend(view.iter());
                self.on_sync_reply(from, view.start, &entries, events);
                self.sync_scratch = entries;
            }
            WireView::SnapshotRequest(s) => self.on_snapshot_request(from, s.from_index, events),
            WireView::SnapshotReply(view) => {
                let snapshot = Snapshot {
                    upto: view.upto,
                    digest: view.digest,
                    view: ViewStamp {
                        id: view.view_id,
                        members: view.view_members,
                    },
                };
                let mut entries = std::mem::take(&mut self.sync_scratch);
                entries.clear();
                entries.extend(view.iter());
                self.on_snapshot_reply(from, &snapshot, &entries, events);
                self.sync_scratch = entries;
            }
            WireView::Batch(batch) => {
                for sub in batch.iter() {
                    if self.route_frame(from, delivered_at, &sub, consensus_in, events) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// One service tick: drain and route the transport (membership,
    /// commands, consensus, relays, state transfer), run the membership
    /// duties, react to view changes, advance the per-slot consensus,
    /// and re-gossip pending commands. Returns the tick's events.
    pub fn poll(&mut self) -> Vec<ServiceOutput> {
        let mut events = Vec::new();
        if self.is_halted() {
            return events;
        }
        let now = self.clock.now();
        let mut consensus_in = std::mem::take(&mut self.consensus_in);
        consensus_in.clear();
        let mut rx = std::mem::take(&mut self.rx_buf);
        self.membership.transport().recv_batch(&mut rx);
        let mut halted = false;
        for dg in rx.drain(..) {
            if halted {
                // A halted node never polls again; dropping the rest of
                // the drain matches the old leave-it-queued behavior.
                break;
            }
            let Ok(frame) = decode_borrowed(&dg.payload) else {
                self.malformed_frames += 1;
                continue;
            };
            halted = self.route_frame(
                dg.from,
                dg.delivered_at,
                &frame,
                &mut consensus_in,
                &mut events,
            );
        }
        self.rx_buf = rx;
        if halted {
            self.consensus_in = consensus_in;
            return events;
        }
        self.membership.tick();
        if self.membership.is_halted() {
            self.consensus_in = consensus_in;
            return events;
        }
        let view = self.membership.view();
        if view != self.last_view {
            let members_changed = view.members != self.last_view.members;
            self.last_view = view;
            events.push(ServiceOutput::ViewInstalled(view));
            if members_changed {
                // State transfer: a changed member set means someone may
                // hold decisions we missed (and vice versa — they will
                // ask us symmetrically). Ask every other member for our
                // missing suffix, and allow a fresh snapshot negotiation
                // for this view.
                self.snapshot_requested_at = None;
                let req = encode(&WireMsg::SyncRequest(SyncRequest {
                    from_index: self.log.len(),
                }));
                for to in view.members {
                    if to != self.me() {
                        self.send_raw(to, req.clone());
                    }
                }
            }
        }
        // Consensus over the membership-emulated P.
        let suspects = self.membership.emulated_suspects();
        let mut sends: Vec<SlotSend<RotatingMsg<u64>>> = Vec::new();
        let mut decided: Vec<(u64, u64)> = Vec::new();
        for (slot, from, msg) in consensus_in.drain(..) {
            let (s, d) = self.driver.on_message(slot, from, &msg, suspects);
            sends.extend(s);
            decided.extend(d.map(|v| (slot, v)));
        }
        self.consensus_in = consensus_in;
        let next = self.log.len();
        if !self.driver.is_open(next) && self.driver.decision(next).is_none() {
            if let Some(&cmd) = self.pool.iter().next() {
                let (s, d) = self.driver.open(next, cmd, suspects);
                sends.extend(s);
                decided.extend(d.map(|v| (next, v)));
            }
        }
        let (s, ds) = self.driver.tick(suspects);
        sends.extend(s);
        decided.extend(ds);
        self.flush_consensus(sends, suspects, &mut decided);
        for (slot, value) in decided {
            self.commit(slot, value, &mut events);
        }
        self.run_retransmission(now);
        if now >= self.next_gossip {
            self.next_gossip = now.saturating_add(self.period);
            // GOSSIP_BATCH is small and fixed: snapshot the commands
            // into a stack array (broadcasting mutates nothing, but the
            // borrow checker cannot see that through `&mut self`).
            let mut batch = [None; GOSSIP_BATCH];
            for (slot, &value) in batch.iter_mut().zip(self.pool.iter()) {
                *slot = Some(value);
            }
            for value in batch.into_iter().flatten() {
                self.broadcast(&WireMsg::Command(Command { value }));
            }
            self.push_to_laggards(now, &mut events);
            self.maybe_compact();
        }
        events
    }

    /// The estimator-derived retransmission timeout (RTO): one
    /// heartbeat period past the membership's trust horizon, clamped to
    /// `[RETX_FLOOR_PERIODS, RETX_CAP_PERIODS]` periods.
    ///
    /// Waiting past the trust horizon guarantees a slot stalled on a
    /// *crashed* peer is (typically) resolved first by exclusion-driven
    /// round advancement — retransmission targets message *loss*, the
    /// one failure the emulated-`P` membership cannot see.
    fn retransmit_after(&self, now: Nanos) -> Nanos {
        let period = self.period.as_nanos();
        let floor = Nanos::from_nanos(period.saturating_mul(RETX_FLOOR_PERIODS));
        let cap = Nanos::from_nanos(period.saturating_mul(RETX_CAP_PERIODS));
        let derived = self
            .membership
            .trust_horizon()
            .map_or(floor, |h| h.saturating_sub(now).saturating_add(self.period));
        derived.clamp(floor, cap)
    }

    /// The backoff ceiling for every retry timer.
    fn backoff_cap(&self) -> Nanos {
        Nanos::from_nanos(
            self.period
                .as_nanos()
                .saturating_mul(RETX_BACKOFF_CAP_PERIODS),
        )
    }

    /// The `attempts`-th current-view member other than this node
    /// (ascending order, wrapping) — rotates probe targets so one
    /// unlucky peer cannot absorb every retry.
    fn rotated_member(&self, attempts: u32) -> Option<ProcessId> {
        let me = self.me();
        let members = self.membership.view().members;
        let count = members.len() - usize::from(members.contains(me));
        if count == 0 {
            return None;
        }
        members
            .iter()
            .filter(|p| *p != me)
            .nth(attempts as usize % count)
    }

    /// The consensus half of the retransmission plane, run once per
    /// poll. Slots that emitted fresh peer traffic this poll reset
    /// their timers (progress needs no retry); slots silent past their
    /// deadline re-send their stalled conversations, re-derived from
    /// core state ([`rfd_algo::driver::SlotDriver::retransmit`]: an
    /// estimate for every visited round plus every unresolved
    /// coordinated proposal) — idempotent on receipt — plus, for the
    /// tail slot, a
    /// [`SyncRequest`] probe to one rotated member, covering the case
    /// where every peer already decided and retired the slot (plain
    /// re-sends would be dropped).
    /// Intervals back off exponentially up to the cap; attempts never
    /// stop — liveness under arbitrary loss needs unbounded retries.
    ///
    /// The no-retry fast path (no open slots, or all making progress)
    /// touches only the reusable scratch vectors: zero allocations.
    fn run_retransmission(&mut self, now: Nanos) {
        // Drop timers of retired slots.
        let driver = &self.driver;
        self.retx.retain(|slot, _| driver.is_open(*slot));
        let rto = self.retransmit_after(now);
        let cap = self.backoff_cap();
        // Arm timers for newly opened slots.
        for &slot in self.driver.open_slots() {
            self.retx.entry(slot).or_insert(RetryTimer {
                next: now.saturating_add(rto),
                interval: rto,
                attempts: 0,
            });
        }
        // Fresh emission this poll = progress: reset timer and backoff.
        let mut touched = std::mem::take(&mut self.retx_touched);
        for slot in touched.drain(..) {
            if self.driver.is_open(slot) {
                self.retx.insert(
                    slot,
                    RetryTimer {
                        next: now.saturating_add(rto),
                        interval: rto,
                        attempts: 0,
                    },
                );
            }
        }
        self.retx_touched = touched;
        // Fire due timers.
        let mut due = std::mem::take(&mut self.retx_due);
        due.clear();
        due.extend(
            self.retx
                .iter()
                .filter(|(_, t)| now >= t.next)
                .map(|(slot, _)| *slot),
        );
        for &slot in &due {
            let mut resent = 0u64;
            for (to, slot, msg) in self.driver.retransmit(slot) {
                self.send_raw(
                    to,
                    encode(&WireMsg::Consensus(ConsensusFrame { slot, msg })),
                );
                resent += 1;
            }
            let attempts = self.retx.get(&slot).map_or(0, |t| t.attempts);
            if slot == self.log.len() {
                // Tail probe: if the group decided this slot without us
                // hearing, one peer's suffix reply revives us.
                if let Some(target) = self.rotated_member(attempts) {
                    self.send_raw(
                        target,
                        encode(&WireMsg::SyncRequest(SyncRequest {
                            from_index: self.log.len(),
                        })),
                    );
                    resent += 1;
                }
            }
            self.retransmits_sent += resent;
            if let Some(t) = self.retx.get_mut(&slot) {
                t.interval = Nanos::from_nanos(t.interval.as_nanos().saturating_mul(2)).min(cap);
                t.next = now.saturating_add(t.interval);
                t.attempts = t.attempts.saturating_add(1);
            }
        }
        self.retx_due = due;
        self.retry_snapshot(now, rto, cap);
    }

    /// The sender-side half of acknowledged delivery: every gossip
    /// period, serve the missing suffix to any view member whose acked
    /// length has stayed behind ours — **and stopped growing** — for a
    /// full RTO. A node that missed the final `Decided` relay of a
    /// burst has no pull signal of its own — the push is what keeps its
    /// lag (and hence the compaction stable index) from freezing. A
    /// peer that is behind but visibly catching up (a rejoiner mid
    /// state-transfer) is left to the pull paths: pushing in parallel
    /// would only duplicate the suffix on the wire. Per-peer
    /// exponential backoff while the peer stays stalled; the fuse
    /// re-arms on any progress.
    fn push_to_laggards(&mut self, now: Nanos, events: &mut Vec<ServiceOutput>) {
        let rto = self.retransmit_after(now);
        let cap = self.backoff_cap();
        let me = self.me();
        let members = self.membership.view().members;
        for member in members {
            let ix = member.index();
            if member == me || ix >= self.n {
                continue;
            }
            let acked = self.peer_acked.get(ix).copied().unwrap_or(0);
            let fuse_acked = self.push_acked.get(ix).copied().unwrap_or(0);
            let due = self.push_at.get(ix).is_some_and(|&at| now >= at);
            if acked >= self.log.len() || acked > fuse_acked {
                // Caught up, or moving on its own: re-arm the fuse.
                if let Some(at) = self.push_at.get_mut(ix) {
                    *at = now.saturating_add(rto);
                }
                if let Some(interval) = self.push_interval.get_mut(ix) {
                    *interval = rto;
                }
                if let Some(watermark) = self.push_acked.get_mut(ix) {
                    *watermark = acked;
                }
            } else if due {
                self.retransmits_sent += 1;
                self.on_sync_request(member, acked, events);
                let interval = self.push_interval.get(ix).copied().unwrap_or(rto);
                let doubled = Nanos::from_nanos(interval.as_nanos().saturating_mul(2))
                    .min(cap)
                    .max(rto);
                if let Some(interval) = self.push_interval.get_mut(ix) {
                    *interval = doubled;
                }
                if let Some(at) = self.push_at.get_mut(ix) {
                    *at = now.saturating_add(doubled);
                }
            }
        }
    }

    /// Retry of an unanswered snapshot negotiation: while a snapshot
    /// request is outstanding and peers' acked lengths show we are
    /// genuinely behind, re-send the request to a rotated member — a
    /// single lost `SnapshotRequest`/`SnapshotReply` can no longer
    /// strand a rejoiner behind the once-per-tail-position throttle.
    fn retry_snapshot(&mut self, now: Nanos, rto: Nanos, cap: Nanos) {
        if !self.awaiting_snapshot {
            self.snapshot_retry = None;
            return;
        }
        let Some(timer) = self.snapshot_retry else {
            // Legacy arm (outstanding request from before the timer
            // existed): start the clock now.
            self.snapshot_retry = Some(RetryTimer {
                next: now.saturating_add(rto),
                interval: rto,
                attempts: 0,
            });
            return;
        };
        if now < timer.next {
            return;
        }
        let me = self.me();
        let behind = self.membership.view().members.iter().any(|p| {
            p != me && self.peer_acked.get(p.index()).copied().unwrap_or(0) > self.log.len()
        });
        if !behind {
            // Caught up through other channels — stand down.
            self.awaiting_snapshot = false;
            self.snapshot_retry = None;
            return;
        }
        if let Some(target) = self.rotated_member(timer.attempts) {
            self.snapshot_requested_at = Some(self.log.len());
            self.send_raw(
                target,
                encode(&WireMsg::SnapshotRequest(SnapshotRequest {
                    from_index: self.log.len(),
                })),
            );
            self.retransmits_sent += 1;
        }
        let interval = Nanos::from_nanos(timer.interval.as_nanos().saturating_mul(2)).min(cap);
        self.snapshot_retry = Some(RetryTimer {
            next: now.saturating_add(interval),
            interval,
            attempts: timer.attempts.saturating_add(1),
        });
    }

    /// Trims the log behind the all-replica stable index, keeping the
    /// policy's retained tail. The stable index is the lowest log
    /// length acknowledged by any *current view member* (piggybacked
    /// acks), capped by our own length — so an excluded straggler never
    /// freezes compaction (it will fast-rejoin via snapshot), while a
    /// re-admitted one holds the base until it catches up.
    fn maybe_compact(&mut self) {
        let Some(policy) = self.compaction else {
            return;
        };
        let me = self.me();
        let mut stable = self.log.len();
        for member in self.last_view.members {
            if member == me {
                continue;
            }
            let acked = self.peer_acked.get(member.index()).copied().unwrap_or(0);
            stable = stable.min(acked);
        }
        let target = stable.saturating_sub(policy.retain);
        if self.log.truncate_prefix(target) > 0 {
            self.driver.advance_base(self.log.first_index());
        }
    }

    /// Routes consensus sends: peers get encoded frames, self-addressed
    /// messages loop straight back into the driver (cores rely on
    /// self-delivery; looping locally keeps that deterministic on any
    /// transport). Slots that emit to a peer are marked *touched*: fresh
    /// emission is progress, so their retransmission timers reset
    /// instead of firing.
    fn flush_consensus(
        &mut self,
        mut sends: Vec<SlotSend<RotatingMsg<u64>>>,
        suspects: ProcessSet,
        decided: &mut Vec<(u64, u64)>,
    ) {
        let me = self.me();
        let mut touched = std::mem::take(&mut self.retx_touched);
        touched.clear();
        while let Some((to, slot, msg)) = sends.pop() {
            if to == me {
                let (more, d) = self.driver.on_message(slot, me, &msg, suspects);
                sends.extend(more);
                decided.extend(d.map(|v| (slot, v)));
            } else {
                if !touched.contains(&slot) {
                    touched.push(slot);
                }
                self.send_raw(
                    to,
                    encode(&WireMsg::Consensus(ConsensusFrame { slot, msg })),
                );
            }
        }
        self.retx_touched = touched;
    }

    /// Applies a consensus decision for `slot`.
    fn commit(&mut self, slot: u64, value: u64, events: &mut Vec<ServiceOutput>) {
        match slot.cmp(&self.log.len()) {
            std::cmp::Ordering::Less => {
                // Already in the log (a relay or transfer beat the local
                // instance); uniform agreement makes them equal. A
                // compacted slot reads as `None` — its value lives in
                // the digest chain now.
                debug_assert!(self.log.get(slot).map_or(true, |d| d.value == value));
            }
            std::cmp::Ordering::Equal => {
                self.apply_at_tail(value, self.stamp(), events);
                self.commit_ready(events);
            }
            std::cmp::Ordering::Greater => {
                // Defensive: instances are opened at the tail, so a
                // decision can't normally outrun the log.
                self.buffer_future(slot, value, self.stamp());
            }
        }
    }

    /// Buffers an ahead-of-tail decision, inside the bounded window.
    fn buffer_future(&mut self, index: u64, value: u64, stamp: ViewStamp) {
        if index.saturating_sub(self.log.len()) <= FUTURE_WINDOW {
            self.future.insert(index, (value, stamp));
        }
    }

    /// A decision relay from `from`.
    fn on_decided(&mut self, from: ProcessId, d: &DecidedMsg, events: &mut Vec<ServiceOutput>) {
        // Relaying index i means the sender appended it: its log holds
        // at least i+1 entries — the ack compaction piggybacks on.
        self.note_acked(from, d.index.saturating_add(1));
        let stamp = ViewStamp {
            id: d.view_id,
            members: d.view_members,
        };
        match d.index.cmp(&self.log.len()) {
            std::cmp::Ordering::Less => {
                // Already appended: a re-relayed (or retransmitted)
                // decision — idempotent, counted.
                self.duplicate_frames_dropped += 1;
            }
            std::cmp::Ordering::Equal => {
                self.apply_at_tail(d.value, stamp, events);
                self.commit_ready(events);
            }
            std::cmp::Ordering::Greater => {
                self.buffer_future(d.index, d.value, stamp);
                // We are missing a prefix — ask the relay's sender, but
                // only once per tail position: every peer relays every
                // decision, and one full-suffix reply per stall is
                // enough.
                if self.gap_synced_at != Some(self.log.len())
                    && from != self.me()
                    && from.index() < self.n
                {
                    self.gap_synced_at = Some(self.log.len());
                    self.send_raw(
                        from,
                        encode(&WireMsg::SyncRequest(SyncRequest {
                            from_index: self.log.len(),
                        })),
                    );
                }
            }
        }
    }

    /// Appends at the log tail, retires the command, and relays the
    /// decision TRB-style (each node relays each index at most once —
    /// it can only be appended once).
    fn apply_at_tail(&mut self, value: u64, stamp: ViewStamp, events: &mut Vec<ServiceOutput>) {
        let index = self.log.append(value, stamp);
        self.note_committed(index, value);
        events.push(ServiceOutput::Decided(Decision {
            index,
            value,
            view: stamp,
        }));
        self.broadcast(&WireMsg::Decided(DecidedMsg {
            index,
            view_id: stamp.id,
            view_members: stamp.members,
            value,
        }));
    }

    /// Drains buffered future decisions that now touch the tail.
    fn commit_ready(&mut self, events: &mut Vec<ServiceOutput>) {
        while let Some((value, stamp)) = self.future.remove(&self.log.len()) {
            self.apply_at_tail(value, stamp, events);
        }
    }

    /// A state-transfer request: stream the suffix back in chunks — or,
    /// if the requester's tail fell below our compacted base, signal
    /// the gap with an **empty** reply starting at the base. The
    /// requester reads that as "prefix is compacted away" and
    /// negotiates a [`SnapshotRequest`] instead.
    fn on_sync_request(
        &mut self,
        from: ProcessId,
        from_index: u64,
        events: &mut Vec<ServiceOutput>,
    ) {
        if from == self.me() || from.index() >= self.n {
            return;
        }
        self.note_acked(from, from_index);
        if from_index < self.log.first_index() {
            self.send_raw(
                from,
                encode(&WireMsg::SyncReply(SyncReply {
                    start: self.log.first_index(),
                    entries: Vec::new(),
                })),
            );
            return;
        }
        let mut bytes = 0u64;
        let mut start = from_index;
        while start < self.log.len() {
            let entries: Vec<(u64, u64, u128)> = self
                .log
                .suffix(start)
                .iter()
                .take(MAX_SYNC_ENTRIES)
                .map(|d| (d.value, d.view.id, d.view.members))
                .collect();
            let sent = entries.len() as u64;
            let frame = encode(&WireMsg::SyncReply(SyncReply { start, entries }));
            bytes += frame.len() as u64;
            self.send_raw(from, frame);
            start += sent;
        }
        if bytes > 0 {
            events.push(ServiceOutput::SyncServed {
                bytes,
                snapshot: false,
            });
        }
    }

    /// A state-transfer chunk (already copied out of its datagram):
    /// reconcile it into the log. An empty chunk starting above our
    /// tail is a responder's compaction gap-signal — negotiate a
    /// snapshot with that responder instead of merging.
    fn on_sync_reply(
        &mut self,
        from: ProcessId,
        start: u64,
        entries: &[(u64, u64, u128)],
        events: &mut Vec<ServiceOutput>,
    ) {
        if entries.is_empty() && start > self.log.len() {
            self.maybe_request_snapshot(from);
            return;
        }
        let before = self.log.len();
        let outcome = self.log.merge_suffix(start, entries);
        if outcome.adopted == 0 && outcome.lost == 0 {
            // A reordered chunk that starts above our tail would merge
            // nothing; buffer its entries individually (inside the
            // bounded future window) so the stream survives arbitrary
            // chunk interleavings — they apply once the gap fills.
            if start > self.log.len() {
                for (offset, &(value, view_id, view_members)) in entries.iter().enumerate() {
                    self.buffer_future(
                        start + offset as u64,
                        value,
                        ViewStamp {
                            id: view_id,
                            members: view_members,
                        },
                    );
                }
                self.commit_ready(events);
            } else {
                // A suffix we already hold — a pusher whose acked
                // watermark for us is stale. Count the duplicate and
                // correct the watermark: the reply-from-our-tail
                // request serves nothing when the pusher is no longer
                // ahead, so it acts as a pure ack that stands the
                // pusher's fuse down.
                self.duplicate_frames_dropped += 1;
                self.send_raw(
                    from,
                    encode(&WireMsg::SyncRequest(SyncRequest {
                        from_index: self.log.len(),
                    })),
                );
            }
            return;
        }
        // Rewritten tail: retire its commands and resolve its slots. On
        // the (safety-alarm) lost path the rewrite reaches back to the
        // chunk start; otherwise only fresh entries were appended.
        let rewritten_from = if outcome.lost > 0 { start } else { before };
        for d in self.log.suffix(rewritten_from).to_vec() {
            self.note_committed(d.index, d.value);
        }
        if outcome.adopted > 0 && self.awaiting_snapshot {
            // Entries are flowing through the plain sync path after
            // all: the outstanding snapshot negotiation is moot (a late
            // reply that no longer extends the log would be rejected
            // anyway). Stand the retry down.
            self.awaiting_snapshot = false;
            self.snapshot_retry = None;
        }
        events.push(ServiceOutput::Transferred {
            adopted: outcome.adopted,
            lost: outcome.lost,
        });
        self.commit_ready(events);
        // Acknowledged delivery, receiver half: a short chunk is the
        // tail of the responder's stream, so confirm our new length
        // with a reply-from-our-tail request. If we are caught up it
        // serves nothing — a pure ack that keeps the responder's
        // watermark fresh and its laggard-push fuse armed-but-quiet; if
        // a middle chunk was lost it re-pulls the remainder. Full-width
        // chunks skip the confirm (more of the stream is in flight).
        if entries.len() < MAX_SYNC_ENTRIES {
            self.send_raw(
                from,
                encode(&WireMsg::SyncRequest(SyncRequest {
                    from_index: self.log.len(),
                })),
            );
        }
    }

    /// Sends one [`SnapshotRequest`] to `from`, at most once per tail
    /// position — every compacted responder gap-signals, and one
    /// snapshot per stall is enough.
    fn maybe_request_snapshot(&mut self, from: ProcessId) {
        if from == self.me() || from.index() >= self.n {
            return;
        }
        if self.snapshot_requested_at == Some(self.log.len()) {
            return;
        }
        self.snapshot_requested_at = Some(self.log.len());
        self.awaiting_snapshot = true;
        // Arm the retry timer: a lost request (or lost reply) re-fires
        // toward a rotated member instead of stranding the rejoin.
        let now = self.clock.now();
        let rto = self.retransmit_after(now);
        self.snapshot_retry = Some(RetryTimer {
            next: now.saturating_add(rto),
            interval: rto,
            attempts: 0,
        });
        self.send_raw(
            from,
            encode(&WireMsg::SnapshotRequest(SnapshotRequest {
                from_index: self.log.len(),
            })),
        );
    }

    /// A fast-rejoin request: serve a summary of our compacted prefix
    /// plus the first chunk of the retained tail. Falls back to the
    /// ordinary suffix exchange when the requester is within the
    /// retained tail (no snapshot needed).
    fn on_snapshot_request(
        &mut self,
        from: ProcessId,
        from_index: u64,
        events: &mut Vec<ServiceOutput>,
    ) {
        if from == self.me() || from.index() >= self.n {
            return;
        }
        self.note_acked(from, from_index);
        let base = self.log.first_index();
        if from_index >= base {
            self.on_sync_request(from, from_index, events);
            return;
        }
        let Some(snap) = self.log.snapshot(base) else {
            return;
        };
        let entries: Vec<(u64, u64, u128)> = self
            .log
            .suffix(base)
            .iter()
            .take(MAX_SYNC_ENTRIES)
            .map(|d| (d.value, d.view.id, d.view.members))
            .collect();
        let frame = encode(&WireMsg::SnapshotReply(SnapshotReply {
            upto: snap.upto,
            digest: snap.digest,
            view_id: snap.view.id,
            view_members: snap.view.members,
            entries,
        }));
        self.snapshots_served += 1;
        events.push(ServiceOutput::SyncServed {
            bytes: frame.len() as u64,
            snapshot: true,
        });
        self.send_raw(from, frame);
    }

    /// A fast-rejoin reply: install the summary (only if we asked for
    /// one and it extends our log — rejects change nothing), merge the
    /// included tail chunk, and pull whatever tail remains with an
    /// ordinary [`SyncRequest`]. Installing is O(1) in the covered
    /// history: the prefix arrives as a digest, not as entries.
    fn on_snapshot_reply(
        &mut self,
        from: ProcessId,
        snapshot: &Snapshot,
        entries: &[(u64, u64, u128)],
        events: &mut Vec<ServiceOutput>,
    ) {
        if from == self.me() || from.index() >= self.n {
            return;
        }
        if !self.awaiting_snapshot {
            return;
        }
        let Some(covered) = self.log.install_snapshot(snapshot) else {
            return;
        };
        self.awaiting_snapshot = false;
        self.snapshot_retry = None;
        self.snapshot_requested_at = None;
        self.gap_synced_at = None;
        // The log jumped past every local in-flight slot: retire the
        // consensus arena below the new base in O(live window)…
        self.driver.advance_base(self.log.first_index());
        // …drop buffered relays the summary already covers…
        self.future = self.future.split_off(&self.log.len());
        // …and clear the pending pool: a pooled command may have been
        // decided inside the compacted prefix, and re-proposing it
        // would decide it twice. Live peers re-gossip anything still
        // genuinely pending.
        self.pool.clear();
        events.push(ServiceOutput::SnapshotInstalled { covered });
        if !entries.is_empty() {
            self.on_sync_reply(from, snapshot.upto, entries, events);
        }
        // The responder may retain more tail than one chunk carries.
        self.send_raw(
            from,
            encode(&WireMsg::SyncRequest(SyncRequest {
                from_index: self.log.len(),
            })),
        );
    }

    /// Records that `from`'s log is at least `upto` long.
    fn note_acked(&mut self, from: ProcessId, upto: u64) {
        if let Some(acked) = self.peer_acked.get_mut(from.index()) {
            *acked = (*acked).max(upto);
        }
    }

    fn learn_command(&mut self, value: u64) {
        if self.decided_values.contains(&value) {
            // Request-id dedup: a re-gossiped command that already
            // decided must never re-enter the pool — a retry can never
            // double-decide a command.
            self.duplicate_frames_dropped += 1;
        } else {
            self.pool.insert(value);
        }
    }

    /// Bookkeeping shared by every way an entry enters the log.
    fn note_committed(&mut self, index: u64, value: u64) {
        self.pool.remove(&value);
        self.decided_values.insert(value);
        self.driver.resolve(index, value);
    }

    /// The current view as a [`ViewStamp`].
    fn stamp(&self) -> ViewStamp {
        let view = self.membership.view();
        ViewStamp {
            id: view.id,
            members: set_to_members(view.members),
        }
    }

    fn send_raw(&self, to: ProcessId, payload: Bytes) {
        self.membership.transport().send(to, payload);
    }

    fn broadcast(&self, msg: &WireMsg) {
        let payload = encode(msg);
        for to in ProcessSet::full(self.n) {
            if to != self.me() {
                self.send_raw(to, payload.clone());
            }
        }
    }
}
