//! The heartbeat failure-detection service: one estimator per monitored
//! peer, a suspect-set view, and a transport-driven node loop.

use crate::clock::{Clock, Nanos};
use crate::codec::{decode_borrowed, encode_into, Heartbeat, WireMsg, WireView};
use crate::estimator::ArrivalEstimator;
use crate::transport::{Datagram, Transport};
use bytes::Bytes;
use rfd_core::{ProcessId, ProcessSet};

/// Per-node heartbeat detector: monitors every peer with its own clone
/// of an estimator prototype.
///
/// # Examples
///
/// ```
/// use rfd_core::{ProcessId, ProcessSet};
/// use rfd_net::clock::Nanos;
/// use rfd_net::detector::HeartbeatDetector;
/// use rfd_net::estimator::FixedTimeout;
///
/// let mut d = HeartbeatDetector::new(
///     ProcessId::new(0),
///     3,
///     FixedTimeout::new(Nanos::from_millis(100)),
/// );
/// d.on_heartbeat(ProcessId::new(1), Nanos::from_millis(0));
/// d.on_heartbeat(ProcessId::new(2), Nanos::from_millis(0));
/// let s = d.suspects(Nanos::from_millis(150));
/// assert_eq!(s.len(), 2, "both peers timed out");
/// ```
#[derive(Debug)]
pub struct HeartbeatDetector<E> {
    me: ProcessId,
    monitors: Vec<Option<E>>,
}

impl<E: ArrivalEstimator + Clone> HeartbeatDetector<E> {
    /// Creates a detector at `me` over `n` processes, cloning
    /// `prototype` for each monitored peer.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, prototype: E) -> Self {
        let monitors = (0..n)
            .map(|ix| (ix != me.index()).then(|| prototype.clone()))
            .collect();
        Self { me, monitors }
    }

    /// This node's identity.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Records a heartbeat from `from` at `now`.
    pub fn on_heartbeat(&mut self, from: ProcessId, now: Nanos) {
        if let Some(Some(est)) = self.monitors.get_mut(from.index()) {
            est.observe(now);
        }
    }

    /// The suspected set at `now`. Peers that never sent a heartbeat are
    /// *not* suspected (no evidence either way yet — detectors begin
    /// trusting, matching the paper's accuracy-first reading).
    #[must_use]
    pub fn suspects(&self, now: Nanos) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for (ix, est) in self.monitors.iter().enumerate() {
            if let (Some(est), Some(pid)) = (est, ProcessId::try_new(ix, self.monitors.len())) {
                if est.is_suspect(now) {
                    s.insert(pid);
                }
            }
        }
        s
    }

    /// The suspicion level of one peer at `now` (0 for self/unknown).
    #[must_use]
    pub fn suspicion_level(&self, peer: ProcessId, now: Nanos) -> f64 {
        self.monitors
            .get(peer.index())
            .and_then(Option::as_ref)
            .map_or(0.0, |e| e.suspicion_level(now))
    }

    /// Access one peer's estimator (e.g. for its deadline).
    #[must_use]
    pub fn monitor(&self, peer: ProcessId) -> Option<&E> {
        self.monitors.get(peer.index()).and_then(Option::as_ref)
    }
}

/// A complete failure-detector node: emits heartbeats on a period and
/// folds received heartbeats into a [`HeartbeatDetector`].
///
/// The node loop is allocation-free in steady state: datagrams drain
/// through a reusable receive buffer, frames decode through the
/// borrowed-view codec, and the heartbeat payload recycles one buffer
/// through the `freeze`/`try_into_mut` cycle. A detector-only node owes
/// each peer exactly one frame per period, so there is nothing to
/// coalesce on the send side; [`Batch`](WireMsg::Batch) frames from
/// richer peers (e.g. the membership layer) are always understood on
/// the receive side.
#[derive(Debug)]
pub struct DetectorNode<E, T, C> {
    detector: HeartbeatDetector<E>,
    transport: T,
    clock: C,
    period: Nanos,
    next_beat: Nanos,
    seq: u64,
    n: usize,
    /// Reusable receive buffer for [`Transport::recv_batch`].
    rx_buf: Vec<Datagram>,
    /// The heartbeat payload of the previous period, reclaimed and
    /// refilled each period once the network has dropped its clones.
    scratch: Option<Bytes>,
    /// Datagrams dropped because they failed to decode or carried an
    /// out-of-range sender index.
    malformed_frames: u64,
}

impl<E, T, C> DetectorNode<E, T, C>
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Clock,
{
    /// Creates a node that heartbeats every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(n: usize, prototype: E, transport: T, clock: C, period: Nanos) -> Self {
        assert!(period > Nanos::ZERO, "heartbeat period must be positive");
        let me = transport.me();
        Self {
            detector: HeartbeatDetector::new(me, n, prototype),
            transport,
            clock,
            period,
            next_beat: Nanos::ZERO,
            seq: 0,
            n,
            rx_buf: Vec::new(),
            scratch: None,
            malformed_frames: 0,
        }
    }

    /// Datagrams dropped as malformed: undecodable bytes, or a frame
    /// whose claimed sender index falls outside the fleet. Well-formed
    /// frames of other protocol layers are *not* counted — ignoring
    /// them is routine multiplexing, not damage.
    #[must_use]
    pub fn malformed_frames(&self) -> u64 {
        self.malformed_frames
    }

    /// Folds one decoded heartbeat into the detector. A corrupt or
    /// foreign datagram can claim any sender index, so the id is built
    /// with the checked constructor; out-of-range frames are dropped
    /// and counted.
    fn note_heartbeat(&mut self, hb: &Heartbeat, delivered_at: Nanos) {
        match ProcessId::try_new(usize::from(hb.sender), self.n) {
            Some(from) => self.detector.on_heartbeat(from, delivered_at),
            None => self.malformed_frames += 1,
        }
    }

    /// One iteration of the node loop: drain received datagrams, then
    /// emit a heartbeat if the period elapsed. Returns the current
    /// suspect set.
    pub fn poll(&mut self) -> ProcessSet {
        let now = self.clock.now();
        let mut rx = std::mem::take(&mut self.rx_buf);
        self.transport.recv_batch(&mut rx);
        for dg in rx.drain(..) {
            match decode_borrowed(&dg.payload) {
                Ok(WireView::Heartbeat(hb)) => self.note_heartbeat(&hb, dg.delivered_at),
                Ok(WireView::Batch(batch)) => {
                    for sub in batch.iter() {
                        if let WireView::Heartbeat(hb) = sub {
                            self.note_heartbeat(&hb, dg.delivered_at);
                        }
                    }
                }
                Ok(_) => {}
                Err(_) => self.malformed_frames += 1,
            }
        }
        self.rx_buf = rx;
        if now >= self.next_beat {
            let hb = WireMsg::Heartbeat(Heartbeat {
                #[allow(clippy::cast_possible_truncation)]
                sender: self.transport.me().index() as u16,
                seq: self.seq,
                sent_at: now,
            });
            self.seq += 1;
            // Reclaim last period's buffer if the network has let go of
            // every clone; fall back to a fresh one otherwise.
            let mut buf = self
                .scratch
                .take()
                .and_then(|b| b.try_into_mut().ok())
                .unwrap_or_default();
            encode_into(&hb, &mut buf);
            let payload = buf.freeze();
            for to in ProcessSet::full(self.n) {
                if to != self.transport.me() {
                    self.transport.send(to, payload.clone());
                }
            }
            self.scratch = Some(payload);
            self.next_beat = now.saturating_add(self.period);
        }
        self.detector.suspects(now)
    }

    /// The inner detector.
    #[must_use]
    pub fn detector(&self) -> &HeartbeatDetector<E> {
        &self.detector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::codec::encode;
    use crate::estimator::FixedTimeout;
    use crate::transport::{InMemoryNetwork, NetworkConfig};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn self_is_never_monitored() {
        let mut d = HeartbeatDetector::new(p(1), 3, FixedTimeout::new(Nanos::from_millis(10)));
        d.on_heartbeat(p(1), Nanos::from_millis(0));
        assert!(!d.suspects(Nanos::from_millis(1_000)).contains(p(1)));
        assert!(d.monitor(p(1)).is_none());
    }

    #[test]
    fn silent_peers_become_suspects_and_recover() {
        let mut d = HeartbeatDetector::new(p(0), 2, FixedTimeout::new(Nanos::from_millis(50)));
        d.on_heartbeat(p(1), Nanos::from_millis(0));
        assert!(d.suspects(Nanos::from_millis(60)).contains(p(1)));
        d.on_heartbeat(p(1), Nanos::from_millis(60));
        assert!(d.suspects(Nanos::from_millis(100)).is_empty());
    }

    #[test]
    fn two_nodes_monitor_each_other_over_the_virtual_network() {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(2, NetworkConfig::default(), clock.clone());
        let proto = FixedTimeout::new(Nanos::from_millis(50));
        let mut a = DetectorNode::new(
            2,
            proto.clone(),
            net.endpoint(p(0)),
            clock.clone(),
            Nanos::from_millis(10),
        );
        let mut b = DetectorNode::new(
            2,
            proto,
            net.endpoint(p(1)),
            clock.clone(),
            Nanos::from_millis(10),
        );
        // Run 200 ms: nobody suspected.
        for _ in 0..20 {
            a.poll();
            b.poll();
            clock.advance(Nanos::from_millis(10));
        }
        assert!(a.poll().is_empty());
        assert!(b.poll().is_empty());
        // Take b down: a suspects it within the timeout.
        net.take_down(p(1));
        for _ in 0..20 {
            a.poll();
            clock.advance(Nanos::from_millis(10));
        }
        assert!(a.poll().contains(p(1)));
    }

    #[test]
    fn heartbeats_inside_a_batch_frame_are_observed() {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(3, NetworkConfig::default(), clock.clone());
        let mut a = DetectorNode::new(
            3,
            FixedTimeout::new(Nanos::from_millis(50)),
            net.endpoint(p(0)),
            clock.clone(),
            Nanos::from_millis(10),
        );
        let sender = net.endpoint(p(1));
        let batch = WireMsg::Batch(vec![WireMsg::Heartbeat(Heartbeat {
            sender: 1,
            seq: 0,
            sent_at: clock.now(),
        })]);
        sender.send(p(0), encode(&batch));
        clock.advance(Nanos::from_millis(1));
        a.poll();
        // p1 beat via the batch; p2 never did. Only never-heard p2 stays
        // unsuspected after the timeout window by the trusting-start
        // rule, and p1's batched beat must have registered.
        clock.advance(Nanos::from_millis(60));
        let suspects = a.poll();
        assert!(
            suspects.contains(p(1)),
            "batched beat was observed, then timed out"
        );
        assert!(!suspects.contains(p(2)), "never-heard peers start trusted");
    }
}
