//! The heartbeat failure-detection service: one estimator per monitored
//! peer, a suspect-set view, and a transport-driven node loop.

use crate::clock::{Clock, Nanos};
use crate::codec::{decode, encode, Heartbeat, WireMsg};
use crate::estimator::ArrivalEstimator;
use crate::transport::Transport;
use rfd_core::{ProcessId, ProcessSet};

/// Per-node heartbeat detector: monitors every peer with its own clone
/// of an estimator prototype.
///
/// # Examples
///
/// ```
/// use rfd_core::{ProcessId, ProcessSet};
/// use rfd_net::clock::Nanos;
/// use rfd_net::detector::HeartbeatDetector;
/// use rfd_net::estimator::FixedTimeout;
///
/// let mut d = HeartbeatDetector::new(
///     ProcessId::new(0),
///     3,
///     FixedTimeout::new(Nanos::from_millis(100)),
/// );
/// d.on_heartbeat(ProcessId::new(1), Nanos::from_millis(0));
/// d.on_heartbeat(ProcessId::new(2), Nanos::from_millis(0));
/// let s = d.suspects(Nanos::from_millis(150));
/// assert_eq!(s.len(), 2, "both peers timed out");
/// ```
#[derive(Debug)]
pub struct HeartbeatDetector<E> {
    me: ProcessId,
    monitors: Vec<Option<E>>,
}

impl<E: ArrivalEstimator + Clone> HeartbeatDetector<E> {
    /// Creates a detector at `me` over `n` processes, cloning
    /// `prototype` for each monitored peer.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, prototype: E) -> Self {
        let monitors = (0..n)
            .map(|ix| (ix != me.index()).then(|| prototype.clone()))
            .collect();
        Self { me, monitors }
    }

    /// This node's identity.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Records a heartbeat from `from` at `now`.
    pub fn on_heartbeat(&mut self, from: ProcessId, now: Nanos) {
        if let Some(Some(est)) = self.monitors.get_mut(from.index()) {
            est.observe(now);
        }
    }

    /// The suspected set at `now`. Peers that never sent a heartbeat are
    /// *not* suspected (no evidence either way yet — detectors begin
    /// trusting, matching the paper's accuracy-first reading).
    #[must_use]
    pub fn suspects(&self, now: Nanos) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for (ix, est) in self.monitors.iter().enumerate() {
            if let Some(est) = est {
                if est.is_suspect(now) {
                    s.insert(ProcessId::new(ix));
                }
            }
        }
        s
    }

    /// The suspicion level of one peer at `now` (0 for self/unknown).
    #[must_use]
    pub fn suspicion_level(&self, peer: ProcessId, now: Nanos) -> f64 {
        self.monitors
            .get(peer.index())
            .and_then(Option::as_ref)
            .map_or(0.0, |e| e.suspicion_level(now))
    }

    /// Access one peer's estimator (e.g. for its deadline).
    #[must_use]
    pub fn monitor(&self, peer: ProcessId) -> Option<&E> {
        self.monitors.get(peer.index()).and_then(Option::as_ref)
    }
}

/// A complete failure-detector node: emits heartbeats on a period and
/// folds received heartbeats into a [`HeartbeatDetector`].
#[derive(Debug)]
pub struct DetectorNode<E, T, C> {
    detector: HeartbeatDetector<E>,
    transport: T,
    clock: C,
    period: Nanos,
    next_beat: Nanos,
    seq: u64,
    n: usize,
}

impl<E, T, C> DetectorNode<E, T, C>
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Clock,
{
    /// Creates a node that heartbeats every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(n: usize, prototype: E, transport: T, clock: C, period: Nanos) -> Self {
        assert!(period > Nanos::ZERO, "heartbeat period must be positive");
        let me = transport.me();
        Self {
            detector: HeartbeatDetector::new(me, n, prototype),
            transport,
            clock,
            period,
            next_beat: Nanos::ZERO,
            seq: 0,
            n,
        }
    }

    /// One iteration of the node loop: drain received datagrams, then
    /// emit a heartbeat if the period elapsed. Returns the current
    /// suspect set.
    pub fn poll(&mut self) -> ProcessSet {
        let now = self.clock.now();
        while let Some(dg) = self.transport.recv() {
            if let Ok(WireMsg::Heartbeat(hb)) = decode(&dg.payload) {
                // Out-of-range guard: `ProcessId::new` panics at 128, and
                // a corrupt or foreign datagram can claim any sender.
                if usize::from(hb.sender) < self.n {
                    self.detector
                        .on_heartbeat(ProcessId::new(usize::from(hb.sender)), dg.delivered_at);
                }
            }
        }
        if now >= self.next_beat {
            let hb = WireMsg::Heartbeat(Heartbeat {
                sender: self.transport.me().index() as u16,
                seq: self.seq,
                sent_at: now,
            });
            self.seq += 1;
            let payload = encode(&hb);
            for ix in 0..self.n {
                let to = ProcessId::new(ix);
                if to != self.transport.me() {
                    self.transport.send(to, payload.clone());
                }
            }
            self.next_beat = now.saturating_add(self.period);
        }
        self.detector.suspects(now)
    }

    /// The inner detector.
    #[must_use]
    pub fn detector(&self) -> &HeartbeatDetector<E> {
        &self.detector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::estimator::FixedTimeout;
    use crate::transport::{InMemoryNetwork, NetworkConfig};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn self_is_never_monitored() {
        let mut d = HeartbeatDetector::new(p(1), 3, FixedTimeout::new(Nanos::from_millis(10)));
        d.on_heartbeat(p(1), Nanos::from_millis(0));
        assert!(!d.suspects(Nanos::from_millis(1_000)).contains(p(1)));
        assert!(d.monitor(p(1)).is_none());
    }

    #[test]
    fn silent_peers_become_suspects_and_recover() {
        let mut d = HeartbeatDetector::new(p(0), 2, FixedTimeout::new(Nanos::from_millis(50)));
        d.on_heartbeat(p(1), Nanos::from_millis(0));
        assert!(d.suspects(Nanos::from_millis(60)).contains(p(1)));
        d.on_heartbeat(p(1), Nanos::from_millis(60));
        assert!(d.suspects(Nanos::from_millis(100)).is_empty());
    }

    #[test]
    fn two_nodes_monitor_each_other_over_the_virtual_network() {
        let clock = VirtualClock::new();
        let net = InMemoryNetwork::new(2, NetworkConfig::default(), clock.clone());
        let proto = FixedTimeout::new(Nanos::from_millis(50));
        let mut a = DetectorNode::new(
            2,
            proto.clone(),
            net.endpoint(p(0)),
            clock.clone(),
            Nanos::from_millis(10),
        );
        let mut b = DetectorNode::new(
            2,
            proto,
            net.endpoint(p(1)),
            clock.clone(),
            Nanos::from_millis(10),
        );
        // Run 200 ms: nobody suspected.
        for _ in 0..20 {
            a.poll();
            b.poll();
            clock.advance(Nanos::from_millis(10));
        }
        assert!(a.poll().is_empty());
        assert!(b.poll().is_empty());
        // Take b down: a suspects it within the timeout.
        net.take_down(p(1));
        for _ in 0..20 {
            a.poll();
            clock.advance(Nanos::from_millis(10));
        }
        assert!(a.poll().contains(p(1)));
    }
}
