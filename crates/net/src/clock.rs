//! Clocks: virtual (deterministic) and system time sources.
//!
//! The runtime layer measures real durations, unlike the formal model's
//! inaccessible global clock. [`Nanos`] is the time unit; [`Clock`]
//! abstracts the source so the whole heartbeat stack runs identically
//! under the deterministic [`VirtualClock`] (tests, QoS experiments) and
//! the wall [`SystemClock`] (the UDP examples).

use core::fmt;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// A point in time, in nanoseconds since an arbitrary origin.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Nanos(u64);

impl Nanos {
    /// The origin.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a time point from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time point from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for rate metrics).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(other.0))
    }

    /// Saturating difference `self − earlier`.
    #[must_use]
    pub const fn saturating_sub(self, earlier: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A time source.
pub trait Clock {
    /// The current time.
    fn now(&self) -> Nanos;
}

/// A [`Clock`] an online driver can *pace*: advanced (or waited on) up to
/// the next sample tick.
///
/// This is what lets one scenario driver serve both execution styles:
/// under a [`VirtualClock`] the tick is instantaneous and deterministic
/// (the simulation path), under a [`SystemClock`] the driver genuinely
/// sleeps until the wall clock reaches the tick (the live UDP path).
pub trait Pacer: Clock {
    /// Blocks or jumps until `now() >= t`. A no-op if `t` has already
    /// passed.
    fn pace_to(&self, t: Nanos);
}

impl Pacer for VirtualClock {
    fn pace_to(&self, t: Nanos) {
        let mut now = self.now.lock();
        if t > *now {
            *now = t;
        }
    }
}

impl Pacer for SystemClock {
    fn pace_to(&self, t: Nanos) {
        loop {
            let now = self.now();
            if now >= t {
                return;
            }
            std::thread::sleep(std::time::Duration::from_nanos(
                t.saturating_sub(now).as_nanos(),
            ));
        }
    }
}

/// A deterministic, manually advanced clock shared by cloning.
///
/// # Examples
///
/// ```
/// use rfd_net::clock::{Clock, Nanos, VirtualClock};
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), Nanos::ZERO);
/// clock.advance(Nanos::from_millis(5));
/// assert_eq!(clock.now().as_millis(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<Nanos>>,
}

impl VirtualClock {
    /// Creates a clock at the origin.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Nanos) {
        let mut now = self.now.lock();
        *now = now.saturating_add(delta);
    }

    /// Jumps the clock to `t` (must not move backwards).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the current time.
    pub fn set(&self, t: Nanos) {
        let mut now = self.now.lock();
        assert!(t >= *now, "virtual clocks do not run backwards");
        *now = t;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Nanos {
        *self.now.lock()
    }
}

/// The wall clock, anchored at its creation instant.
#[derive(Clone, Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a wall clock with `now() == 0` at creation.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Nanos {
        Nanos::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_deterministically() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(Nanos::from_millis(3));
        assert_eq!(c2.now().as_millis(), 3, "clones share the time source");
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_time_travel() {
        let c = VirtualClock::new();
        c.advance(Nanos::from_millis(10));
        c.set(Nanos::from_millis(5));
    }

    #[test]
    fn system_clock_moves_forward() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn pacing_a_virtual_clock_jumps_and_never_rewinds() {
        let c = VirtualClock::new();
        c.pace_to(Nanos::from_millis(10));
        assert_eq!(c.now().as_millis(), 10);
        c.pace_to(Nanos::from_millis(5)); // already passed: no-op
        assert_eq!(c.now().as_millis(), 10);
    }

    #[test]
    fn pacing_a_system_clock_waits_out_the_gap() {
        let c = SystemClock::new();
        let target = c.now().saturating_add(Nanos::from_millis(5));
        c.pace_to(target);
        assert!(c.now() >= target);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_millis(2);
        let b = Nanos::from_millis(5);
        assert_eq!(b.saturating_sub(a).as_millis(), 3);
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(a.saturating_add(b).as_millis(), 7);
        assert!(format!("{b}").contains("ms"));
    }
}
