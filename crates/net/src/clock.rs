//! Clocks: virtual (deterministic) and system time sources.
//!
//! The runtime layer measures real durations, unlike the formal model's
//! inaccessible global clock. [`Nanos`] is the time unit; [`Clock`]
//! abstracts the source so the whole heartbeat stack runs identically
//! under the deterministic [`VirtualClock`] (tests, QoS experiments) and
//! the wall [`SystemClock`] (the UDP examples).

use core::fmt;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// A point in time, in nanoseconds since an arbitrary origin.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Nanos(u64);

impl Nanos {
    /// The origin.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a time point from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time point from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for rate metrics).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(other.0))
    }

    /// Saturating difference `self − earlier`.
    #[must_use]
    pub const fn saturating_sub(self, earlier: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A time source.
pub trait Clock {
    /// The current time.
    fn now(&self) -> Nanos;
}

/// A [`Clock`] an online driver can *pace*: advanced (or waited on) up to
/// the next sample tick.
///
/// This is what lets one scenario driver serve both execution styles:
/// under a [`VirtualClock`] the tick is instantaneous and deterministic
/// (the simulation path), under a [`SystemClock`] the driver genuinely
/// sleeps until the wall clock reaches the tick (the live UDP path).
pub trait Pacer: Clock {
    /// Blocks or jumps until `now() >= t`. A no-op if `t` has already
    /// passed.
    fn pace_to(&self, t: Nanos);
}

impl Pacer for VirtualClock {
    fn pace_to(&self, t: Nanos) {
        let mut now = self.now.lock();
        if t > *now {
            *now = t;
        }
    }
}

impl Pacer for SystemClock {
    fn pace_to(&self, t: Nanos) {
        loop {
            let now = self.now();
            if now >= t {
                return;
            }
            std::thread::sleep(std::time::Duration::from_nanos(
                t.saturating_sub(now).as_nanos(),
            ));
        }
    }
}

/// A deterministic, manually advanced clock shared by cloning.
///
/// # Examples
///
/// ```
/// use rfd_net::clock::{Clock, Nanos, VirtualClock};
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), Nanos::ZERO);
/// clock.advance(Nanos::from_millis(5));
/// assert_eq!(clock.now().as_millis(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<Nanos>>,
}

impl VirtualClock {
    /// Creates a clock at the origin.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Nanos) {
        let mut now = self.now.lock();
        *now = now.saturating_add(delta);
    }

    /// Jumps the clock to `t` (must not move backwards).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the current time.
    pub fn set(&self, t: Nanos) {
        let mut now = self.now.lock();
        assert!(t >= *now, "virtual clocks do not run backwards");
        *now = t;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Nanos {
        *self.now.lock()
    }
}

/// A fixed rational clock rate: `num/den` local nanoseconds elapse per
/// nanosecond of the wrapped clock. The unit of per-node clock skew in
/// the weather DSL ([`crate::weather`]) — pure integer arithmetic, so a
/// skewed clock is exactly as deterministic as the clock it wraps.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClockSkew {
    num: u32,
    den: u32,
}

impl ClockSkew {
    /// No skew: local time equals wrapped time, bit for bit.
    pub const IDENTITY: ClockSkew = ClockSkew { num: 1, den: 1 };

    /// A rate of `num/den` (e.g. `ratio(11, 10)` runs 10% fast,
    /// `ratio(9, 10)` runs 10% slow).
    ///
    /// # Panics
    ///
    /// Panics if either term is zero.
    #[must_use]
    pub fn ratio(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "clock rates must be positive");
        Self { num, den }
    }

    /// A drift expressed in parts per million: `ppm(500)` gains 500 µs
    /// per second, `ppm(-500)` loses it.
    ///
    /// # Panics
    ///
    /// Panics if `drift <= -1_000_000` (the clock would stop or run
    /// backwards).
    #[must_use]
    pub fn ppm(drift: i64) -> Self {
        let num = 1_000_000_i64 + drift;
        assert!(num > 0, "a clock must keep moving forward");
        Self {
            num: u32::try_from(num).expect("drift within u32 range"),
            den: 1_000_000,
        }
    }

    /// Whether this is the identity rate.
    #[must_use]
    pub fn is_identity(self) -> bool {
        self.num == self.den
    }

    /// Maps wrapped time to local time: `t · num / den`.
    #[must_use]
    pub fn apply(self, t: Nanos) -> Nanos {
        let scaled = u128::from(t.as_nanos()) * u128::from(self.num) / u128::from(self.den);
        Nanos::from_nanos(u64::try_from(scaled).unwrap_or(u64::MAX))
    }

    /// Maps local time back to wrapped time, rounding **up** so that
    /// `apply(unapply(t)) >= t` — pacing to the unapplied target always
    /// reaches the local one.
    #[must_use]
    pub fn unapply(self, t: Nanos) -> Nanos {
        let num = u128::from(self.num);
        let scaled = (u128::from(t.as_nanos()) * u128::from(self.den)).div_ceil(num);
        Nanos::from_nanos(u64::try_from(scaled).unwrap_or(u64::MAX))
    }
}

impl Default for ClockSkew {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// A [`Clock`] running at a fixed rational rate of another clock — the
/// per-node clock-skew plane of the weather DSL. With
/// [`ClockSkew::IDENTITY`] the wrapper is exact passthrough (integer
/// arithmetic, no rounding), so an unskewed fleet built through it is
/// bit-identical to one built on the bare clock.
///
/// # Examples
///
/// ```
/// use rfd_net::clock::{Clock, ClockSkew, Nanos, SkewedClock, VirtualClock};
///
/// let real = VirtualClock::new();
/// let fast = SkewedClock::new(real.clone(), ClockSkew::ratio(3, 2));
/// real.advance(Nanos::from_millis(100));
/// assert_eq!(fast.now().as_millis(), 150, "runs 1.5x fast");
/// ```
#[derive(Clone, Debug)]
pub struct SkewedClock<C> {
    inner: C,
    skew: ClockSkew,
}

impl<C> SkewedClock<C> {
    /// Wraps `inner` at rate `skew`.
    #[must_use]
    pub fn new(inner: C, skew: ClockSkew) -> Self {
        Self { inner, skew }
    }

    /// The rate this clock runs at.
    #[must_use]
    pub fn skew(&self) -> ClockSkew {
        self.skew
    }

    /// The wrapped clock.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Clock> Clock for SkewedClock<C> {
    fn now(&self) -> Nanos {
        self.skew.apply(self.inner.now())
    }
}

impl<C: Pacer> Pacer for SkewedClock<C> {
    fn pace_to(&self, t: Nanos) {
        self.inner.pace_to(self.skew.unapply(t));
    }
}

/// The wall clock, anchored at its creation instant.
#[derive(Clone, Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a wall clock with `now() == 0` at creation.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Nanos {
        Nanos::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_deterministically() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(Nanos::from_millis(3));
        assert_eq!(c2.now().as_millis(), 3, "clones share the time source");
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_time_travel() {
        let c = VirtualClock::new();
        c.advance(Nanos::from_millis(10));
        c.set(Nanos::from_millis(5));
    }

    #[test]
    fn system_clock_moves_forward() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn pacing_a_virtual_clock_jumps_and_never_rewinds() {
        let c = VirtualClock::new();
        c.pace_to(Nanos::from_millis(10));
        assert_eq!(c.now().as_millis(), 10);
        c.pace_to(Nanos::from_millis(5)); // already passed: no-op
        assert_eq!(c.now().as_millis(), 10);
    }

    #[test]
    fn pacing_a_system_clock_waits_out_the_gap() {
        let c = SystemClock::new();
        let target = c.now().saturating_add(Nanos::from_millis(5));
        c.pace_to(target);
        assert!(c.now() >= target);
    }

    #[test]
    fn skewed_clock_scales_and_identity_is_exact_passthrough() {
        let real = VirtualClock::new();
        let fast = SkewedClock::new(real.clone(), ClockSkew::ratio(3, 2));
        let slow = SkewedClock::new(real.clone(), ClockSkew::ratio(1, 2));
        let same = SkewedClock::new(real.clone(), ClockSkew::IDENTITY);
        real.advance(Nanos::from_nanos(1_000_001));
        assert_eq!(fast.now().as_nanos(), 1_500_001);
        assert_eq!(slow.now().as_nanos(), 500_000);
        assert_eq!(same.now().as_nanos(), 1_000_001, "identity is exact");
        assert!(ClockSkew::IDENTITY.is_identity());
        assert!(!ClockSkew::ratio(3, 2).is_identity());
    }

    #[test]
    fn skewed_pacer_reaches_its_local_target() {
        let real = VirtualClock::new();
        for skew in [
            ClockSkew::ratio(3, 2),
            ClockSkew::ratio(2, 3),
            ClockSkew::ratio(7, 13),
            ClockSkew::ppm(500),
            ClockSkew::ppm(-500),
        ] {
            let local = SkewedClock::new(real.clone(), skew);
            let target = local.now().saturating_add(Nanos::from_nanos(1_234_567));
            local.pace_to(target);
            assert!(
                local.now() >= target,
                "{skew:?}: {:?} < {target:?}",
                local.now()
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_clocks_are_rejected() {
        let _ = ClockSkew::ratio(0, 2);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_millis(2);
        let b = Nanos::from_millis(5);
        assert_eq!(b.saturating_sub(a).as_millis(), 3);
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(a.saturating_add(b).as_millis(), 7);
        assert!(format!("{b}").contains("ms"));
    }
}
