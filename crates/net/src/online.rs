//! The online detection runtime: long-running scenarios under **churn**
//! (crash / recover / partition schedules), observed incrementally.
//!
//! The batch QoS harness ([`crate::qos::evaluate_qos`]) runs a two-node
//! scenario to completion and finalizes the metrics post hoc — exactly
//! the "inspect the corpse" style the paper's §1.3 says practitioners do
//! *not* deploy. This module is the long-running service counterpart:
//!
//! * [`FaultSchedule`] / [`Fault`] — a ground-truth timeline of crashes,
//!   recoveries and network partitions;
//! * [`OnlineRunner`] — a resumable scenario driver: `n` heartbeating
//!   [`DetectorNode`]s over the virtual network, advanced one sample tick
//!   at a time, yielding typed [`OnlineEvent`]s (fault injections and
//!   suspicion transitions) and feeding a live [`QosMonitor`] per
//!   observer–target pair. An opt-in batch [`QosTracker`] shadow
//!   ([`OnlineRunner::with_batch_shadow`]) receives the identical sample
//!   stream, so the incremental numbers can be checked for exact
//!   equality with [`QosTracker::finalize`] at any point (experiment
//!   E11's acceptance gate);
//! * [`MembershipWatcher`] — an incremental observer of a membership
//!   fleet under churn: exclusion latency per crash, false exclusions
//!   (live processes excluded by fiat — partitions force these), view
//!   change counts. [`run_membership_churn`] drives a
//!   [`MembershipNode`] fleet through a fault schedule and returns the
//!   watcher's report.

use crate::clock::{Clock, Nanos, VirtualClock};
use crate::detector::DetectorNode;
use crate::estimator::ArrivalEstimator;
use crate::membership::MembershipNode;
use crate::qos::{QosMonitor, QosReport, QosTracker};
use crate::transport::{Endpoint, InMemoryNetwork, NetworkConfig};
use rfd_core::{ProcessId, ProcessSet};

/// One ground-truth fault injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The process stops: no sends, no receives, no steps.
    Crash(ProcessId),
    /// The process resumes from its pre-crash state (churn).
    Recover(ProcessId),
    /// A network partition between `side` and its complement.
    Partition(ProcessSet),
    /// The active partition heals.
    Heal,
}

/// A time-ordered ground-truth schedule of [`Fault`]s.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<(Nanos, Fault)>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault at time `at` (builder style). Events may be added in
    /// any order; the schedule keeps them sorted by time (stable for
    /// equal times).
    #[must_use]
    pub fn at(mut self, at: Nanos, fault: Fault) -> Self {
        self.events.push((at, fault));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// The scheduled events, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[(Nanos, Fault)] {
        &self.events
    }

    /// The process's **final** crash time: the last `Crash` not followed
    /// by a `Recover`. This is the crash the Chen–Toueg–Aguilera metrics
    /// judge against — earlier crash/recover cycles are transient churn,
    /// visible to the detector only as (correctly penalized) mistakes.
    #[must_use]
    pub fn final_crash(&self, target: ProcessId) -> Option<Nanos> {
        let mut crash = None;
        for (at, fault) in &self.events {
            match fault {
                Fault::Crash(p) if *p == target => crash = Some(*at),
                Fault::Recover(p) if *p == target => crash = None,
                _ => {}
            }
        }
        crash
    }

    /// The first crash time of `target`, if any (what a membership
    /// exclusion latency is measured from).
    #[must_use]
    pub fn first_crash(&self, target: ProcessId) -> Option<Nanos> {
        self.events.iter().find_map(|(at, fault)| match fault {
            Fault::Crash(p) if *p == target => Some(*at),
            _ => None,
        })
    }
}

/// Applies every fault due at or before `now` to the network and the
/// ground-truth `up` vector, advancing the schedule cursor `next` and
/// calling `on_fault` once per applied fault (for caller-side
/// bookkeeping: event emission, watcher notes). Shared by
/// [`OnlineRunner::step`] and [`run_membership_churn`] so the two
/// drivers cannot drift in churn semantics.
fn apply_due_faults<F: FnMut(Nanos, &Fault)>(
    schedule: &FaultSchedule,
    next: &mut usize,
    now: Nanos,
    net: &InMemoryNetwork,
    up: &mut [bool],
    mut on_fault: F,
) {
    while let Some((at, fault)) = schedule.events().get(*next) {
        if *at > now {
            break;
        }
        match fault {
            Fault::Crash(p) => {
                net.take_down(*p);
                up[p.index()] = false;
            }
            Fault::Recover(p) => {
                net.bring_up(*p);
                up[p.index()] = true;
            }
            Fault::Partition(side) => net.set_partition(*side),
            Fault::Heal => net.heal_partition(),
        }
        on_fault(*at, fault);
        *next += 1;
    }
}

/// Parameters of an online (long-running) detection scenario.
#[derive(Clone, Debug)]
pub struct OnlineScenario {
    /// Number of processes (all heartbeat all).
    pub n: usize,
    /// Heartbeat period.
    pub period: Nanos,
    /// Independent datagram loss probability.
    pub loss: f64,
    /// One-way delay bounds.
    pub delay: (Nanos, Nanos),
    /// Total observation duration.
    pub duration: Nanos,
    /// The sampling/poll tick.
    pub sample_every: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Ground-truth fault schedule.
    pub schedule: FaultSchedule,
}

impl Default for OnlineScenario {
    fn default() -> Self {
        Self {
            n: 4,
            period: Nanos::from_millis(100),
            loss: 0.0,
            delay: (Nanos::from_millis(2), Nanos::from_millis(10)),
            duration: Nanos::from_millis(30_000),
            sample_every: Nanos::from_millis(5),
            seed: 0,
            schedule: FaultSchedule::new(),
        }
    }
}

/// A typed event yielded by [`OnlineRunner::step`].
#[derive(Clone, Debug)]
pub enum OnlineEvent {
    /// A scheduled fault took effect.
    Fault {
        /// Injection time (the tick at which it was applied).
        at: Nanos,
        /// The fault.
        fault: Fault,
    },
    /// An observer's verdict about a target flipped.
    Suspicion {
        /// The observing process.
        observer: ProcessId,
        /// The judged process.
        target: ProcessId,
        /// When the transition was observed.
        at: Nanos,
        /// The new verdict (`true` = suspect).
        suspected: bool,
    },
}

/// A resumable online scenario: call [`OnlineRunner::step`] per sample
/// tick (or [`OnlineRunner::run_to_end`]) and read live per-pair QoS via
/// [`OnlineRunner::report`] at any time.
#[derive(Debug)]
pub struct OnlineRunner<E: ArrivalEstimator + Clone> {
    scenario: OnlineScenario,
    clock: VirtualClock,
    net: InMemoryNetwork,
    nodes: Vec<DetectorNode<E, Endpoint, VirtualClock>>,
    up: Vec<bool>,
    /// `monitors[observer][target]`, `None` on the diagonal.
    monitors: Vec<Vec<Option<QosMonitor>>>,
    /// Batch shadows fed the identical sample stream (the equality
    /// gate). Opt-in via [`OnlineRunner::with_batch_shadow`]: a tracker
    /// keeps every suspicion episode, which is exactly the unbounded
    /// growth the incremental monitor exists to avoid, so a long-running
    /// deployment must not pay for it by default.
    shadows: Option<Vec<Vec<Option<QosTracker>>>>,
    last_suspects: Vec<ProcessSet>,
    next_fault: usize,
    done: bool,
}

impl<E: ArrivalEstimator + Clone> OnlineRunner<E> {
    /// Builds the runner: `n` detector nodes around clones of
    /// `prototype`, a fresh virtual network, and one monitor per ordered
    /// observer–target pair, primed with the schedule's final crash times.
    #[must_use]
    pub fn new(prototype: E, scenario: OnlineScenario) -> Self {
        let n = scenario.n;
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(scenario.delay.0, scenario.delay.1)
            .with_loss(scenario.loss)
            .with_seed(scenario.seed);
        let net = InMemoryNetwork::new(n, config, clock.clone());
        let nodes = (0..n)
            .map(|ix| {
                DetectorNode::new(
                    n,
                    prototype.clone(),
                    net.endpoint(ProcessId::new(ix)),
                    clock.clone(),
                    scenario.period,
                )
            })
            .collect();
        let monitors = (0..n)
            .map(|obs| {
                (0..n)
                    .map(|t| {
                        (obs != t).then(|| {
                            QosMonitor::new(scenario.schedule.final_crash(ProcessId::new(t)))
                        })
                    })
                    .collect()
            })
            .collect();
        Self {
            up: vec![true; n],
            last_suspects: vec![ProcessSet::empty(); n],
            monitors,
            shadows: None,
            nodes,
            net,
            clock,
            next_fault: 0,
            done: false,
            scenario,
        }
    }

    /// Additionally feeds every pair's sample stream to a batch
    /// [`QosTracker`] shadow (builder style), enabling
    /// [`OnlineRunner::batch_report`] and
    /// [`OnlineRunner::monitor_matches_batch`] — the E11 equality gate.
    ///
    /// Off by default: a tracker records every suspicion episode, which
    /// is unbounded over a long run — precisely what the incremental
    /// monitor avoids. Enable it for verification runs only, before the
    /// first [`OnlineRunner::step`].
    #[must_use]
    pub fn with_batch_shadow(mut self) -> Self {
        let n = self.scenario.n;
        debug_assert!(
            self.now() == Nanos::ZERO,
            "enable the shadow before stepping, or it will miss samples"
        );
        self.shadows = Some(
            (0..n)
                .map(|obs| (0..n).map(|t| (obs != t).then(QosTracker::new)).collect())
                .collect(),
        );
        self
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Whether the scenario duration has elapsed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Which processes are currently up (ground truth).
    #[must_use]
    pub fn up_set(&self) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for (ix, up) in self.up.iter().enumerate() {
            if *up {
                s.insert(ProcessId::new(ix));
            }
        }
        s
    }

    /// Executes one sample tick: applies due faults, polls every live
    /// node, samples all monitors, and returns the tick's events. `None`
    /// once the scenario duration has elapsed.
    pub fn step(&mut self) -> Option<Vec<OnlineEvent>> {
        if self.done {
            return None;
        }
        let now = self.clock.now();
        if now >= self.scenario.duration {
            self.done = true;
            return None;
        }
        let mut events = Vec::new();
        apply_due_faults(
            &self.scenario.schedule,
            &mut self.next_fault,
            now,
            &self.net,
            &mut self.up,
            |at, fault| {
                events.push(OnlineEvent::Fault {
                    at,
                    fault: fault.clone(),
                })
            },
        );
        for ix in 0..self.scenario.n {
            if !self.up[ix] {
                continue;
            }
            let suspects = self.nodes[ix].poll();
            let flips = suspects
                .union(self.last_suspects[ix])
                .difference(suspects.intersection(self.last_suspects[ix]));
            for target in flips.iter() {
                events.push(OnlineEvent::Suspicion {
                    observer: ProcessId::new(ix),
                    target,
                    at: now,
                    suspected: suspects.contains(target),
                });
            }
            self.last_suspects[ix] = suspects;
            for t in 0..self.scenario.n {
                let verdict = suspects.contains(ProcessId::new(t));
                if let Some(m) = &mut self.monitors[ix][t] {
                    m.sample(now, verdict);
                }
                if let Some(shadows) = &mut self.shadows {
                    if let Some(s) = &mut shadows[ix][t] {
                        s.sample(now, verdict);
                    }
                }
            }
        }
        self.clock.advance(self.scenario.sample_every);
        Some(events)
    }

    /// Runs the remaining ticks and returns every event produced.
    pub fn run_to_end(&mut self) -> Vec<OnlineEvent> {
        let mut all = Vec::new();
        while let Some(mut events) = self.step() {
            all.append(&mut events);
        }
        all
    }

    /// The live QoS report of `observer` about `target` as of the
    /// current time (or the scenario end once done), straight from the
    /// incremental monitor. `None` on the diagonal.
    #[must_use]
    pub fn report(&self, observer: ProcessId, target: ProcessId) -> Option<QosReport> {
        let end = if self.done {
            self.scenario.duration
        } else {
            self.clock.now()
        };
        self.monitors[observer.index()][target.index()]
            .as_ref()
            .map(|m| m.report(end))
    }

    /// The batch-path report of the same pair: the shadow
    /// [`QosTracker`]'s post-hoc [`QosTracker::finalize`] over the
    /// identical sample stream. `None` on the diagonal.
    ///
    /// # Panics
    ///
    /// Panics unless the runner was built with
    /// [`OnlineRunner::with_batch_shadow`].
    #[must_use]
    pub fn batch_report(&self, observer: ProcessId, target: ProcessId) -> Option<QosReport> {
        let end = if self.done {
            self.scenario.duration
        } else {
            self.clock.now()
        };
        self.shadows
            .as_ref()
            .expect("batch shadow not enabled; build the runner with with_batch_shadow()")
            [observer.index()][target.index()]
        .as_ref()
        .map(|s| s.finalize(self.scenario.schedule.final_crash(target), end))
    }

    /// Whether the incremental monitor and the batch tracker agree
    /// **exactly** (every field, including the floating-point rates) for
    /// the pair — the E11 acceptance gate.
    ///
    /// # Panics
    ///
    /// Panics unless the runner was built with
    /// [`OnlineRunner::with_batch_shadow`].
    #[must_use]
    pub fn monitor_matches_batch(&self, observer: ProcessId, target: ProcessId) -> bool {
        match (
            self.report(observer, target),
            self.batch_report(observer, target),
        ) {
            (Some(a), Some(b)) => reports_equal(&a, &b),
            (None, None) => true,
            _ => false,
        }
    }
}

/// Exact (bitwise for floats) equality of two QoS reports.
#[must_use]
pub fn reports_equal(a: &QosReport, b: &QosReport) -> bool {
    a.detection_time == b.detection_time
        && a.mistakes == b.mistakes
        && a.mistake_rate.to_bits() == b.mistake_rate.to_bits()
        && a.avg_mistake_duration == b.avg_mistake_duration
        && a.query_accuracy.to_bits() == b.query_accuracy.to_bits()
}

/// The report of a [`MembershipWatcher`].
#[derive(Clone, Debug)]
pub struct MembershipChurnReport {
    /// Per process: time from its first crash to its exclusion from the
    /// authoritative view. `None` if it never crashed, was never
    /// excluded, or was excluded *before* it crashed (that exclusion did
    /// not detect the crash — it shows up in
    /// [`MembershipChurnReport::false_exclusions`] instead).
    pub exclusion_latency: Vec<Option<Nanos>>,
    /// Processes excluded although they had neither crashed nor been
    /// down before — the by-fiat accuracy enforcement of §1.3 (typical
    /// under partitions).
    pub false_exclusions: ProcessSet,
    /// View installations observed across the fleet.
    pub view_changes: u64,
}

/// An incremental observer of a membership fleet under churn: feed it
/// ground-truth fault notes and periodic view observations; read the
/// report at any time.
#[derive(Clone, Debug)]
pub struct MembershipWatcher {
    n: usize,
    down: ProcessSet,
    first_crash: Vec<Option<Nanos>>,
    excluded_at: Vec<Option<Nanos>>,
    false_exclusions: ProcessSet,
    last_view_ids: Vec<u64>,
    view_changes: u64,
}

impl MembershipWatcher {
    /// A watcher over `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            down: ProcessSet::empty(),
            first_crash: vec![None; n],
            excluded_at: vec![None; n],
            false_exclusions: ProcessSet::empty(),
            last_view_ids: vec![0; n],
            view_changes: 0,
        }
    }

    /// Notes a ground-truth crash of `p` at `at`.
    pub fn note_crash(&mut self, p: ProcessId, at: Nanos) {
        self.down.insert(p);
        if self.first_crash[p.index()].is_none() {
            self.first_crash[p.index()] = Some(at);
        }
    }

    /// Notes a ground-truth recovery of `p`.
    pub fn note_recover(&mut self, p: ProcessId) {
        self.down.remove(p);
    }

    /// Feeds one observation tick: `views` holds, for each live
    /// (non-halted) member, its current view id and member set. A
    /// process counts as *excluded* once the **authoritative view** —
    /// the one held by the lowest-index live member, i.e. the
    /// coordinator lineage — omits it. (Judging against *every* view
    /// would deadlock under split-brain: a partitioned minority keeps a
    /// stale view containing itself until it learns of its exclusion.)
    pub fn observe<I>(&mut self, now: Nanos, views: I)
    where
        I: IntoIterator<Item = (ProcessId, u64, ProcessSet)>,
    {
        let mut authority: Option<(ProcessId, ProcessSet)> = None;
        for (member, view_id, members) in views {
            match &authority {
                Some((lowest, _)) if member >= *lowest => {}
                _ => authority = Some((member, members)),
            }
            let last = &mut self.last_view_ids[member.index()];
            if view_id > *last {
                self.view_changes += view_id - *last;
                *last = view_id;
            }
        }
        let Some((_, authoritative_members)) = authority else {
            return;
        };
        let excluded = authoritative_members.complement_within(self.n);
        for p in excluded.iter() {
            if self.excluded_at[p.index()].is_none() {
                self.excluded_at[p.index()] = Some(now);
                if !self.down.contains(p) && self.first_crash[p.index()].is_none() {
                    self.false_exclusions.insert(p);
                }
            }
        }
    }

    /// The report so far.
    #[must_use]
    pub fn report(&self) -> MembershipChurnReport {
        let exclusion_latency = (0..self.n)
            .map(|ix| match (self.first_crash[ix], self.excluded_at[ix]) {
                // An exclusion that precedes the crash did not detect it
                // (e.g. a partition exclusion before a later crash): a
                // saturated 0 here would read as instant detection.
                (Some(c), Some(e)) if e >= c => Some(e.saturating_sub(c)),
                _ => None,
            })
            .collect();
        MembershipChurnReport {
            exclusion_latency,
            false_exclusions: self.false_exclusions,
            view_changes: self.view_changes,
        }
    }
}

/// Drives a [`MembershipNode`] fleet through the scenario's fault
/// schedule, observing it live with a [`MembershipWatcher`], and returns
/// the watcher's report.
///
/// A recovered process rejoins the network but — per the §1.3 enforcement
/// — halts as soon as it learns it was excluded while down: suspicion,
/// once converted into exclusion, stays accurate by fiat.
pub fn run_membership_churn<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: &OnlineScenario,
) -> MembershipChurnReport {
    let n = scenario.n;
    let clock = VirtualClock::new();
    let config = NetworkConfig::reliable(scenario.delay.0, scenario.delay.1)
        .with_loss(scenario.loss)
        .with_seed(scenario.seed);
    let net = InMemoryNetwork::new(n, config, clock.clone());
    let mut nodes: Vec<_> = (0..n)
        .map(|ix| {
            MembershipNode::new(
                n,
                prototype.clone(),
                net.endpoint(ProcessId::new(ix)),
                clock.clone(),
                scenario.period,
            )
        })
        .collect();
    let mut watcher = MembershipWatcher::new(n);
    let mut up = vec![true; n];
    let mut next_fault = 0usize;
    while clock.now() < scenario.duration {
        let now = clock.now();
        apply_due_faults(
            &scenario.schedule,
            &mut next_fault,
            now,
            &net,
            &mut up,
            |at, fault| match fault {
                Fault::Crash(p) => watcher.note_crash(*p, at),
                Fault::Recover(p) => watcher.note_recover(*p),
                _ => {}
            },
        );
        for (ix, node) in nodes.iter_mut().enumerate() {
            if up[ix] {
                node.poll();
            }
        }
        watcher.observe(
            now,
            nodes
                .iter()
                .enumerate()
                .filter(|(ix, node)| up[*ix] && !node.is_halted())
                .map(|(ix, node)| {
                    let v = node.view();
                    (ProcessId::new(ix), v.id, v.members)
                }),
        );
        clock.advance(scenario.sample_every);
    }
    watcher.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
    use crate::qos::{evaluate_qos, QosScenario};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn schedule_final_crash_sees_through_churn() {
        let s = FaultSchedule::new()
            .at(ms(10_000), Fault::Recover(p(1)))
            .at(ms(5_000), Fault::Crash(p(1)))
            .at(ms(20_000), Fault::Crash(p(1)));
        assert_eq!(s.final_crash(p(1)), Some(ms(20_000)));
        assert_eq!(s.first_crash(p(1)), Some(ms(5_000)));
        assert_eq!(s.final_crash(p(2)), None);
        // Events come back time-sorted regardless of insertion order.
        let times: Vec<u64> = s.events().iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![5_000, 10_000, 20_000]);
    }

    #[test]
    fn online_runner_detects_a_final_crash_and_matches_batch() {
        let scenario = OnlineScenario {
            n: 3,
            duration: ms(20_000),
            schedule: FaultSchedule::new().at(ms(12_000), Fault::Crash(p(2))),
            ..OnlineScenario::default()
        };
        let mut runner = OnlineRunner::new(ChenEstimator::new(ms(50), 32, ms(500)), scenario)
            .with_batch_shadow();
        let events = runner.run_to_end();
        assert!(runner.is_done());
        assert!(events
            .iter()
            .any(|e| matches!(e, OnlineEvent::Fault { fault: Fault::Crash(q), .. } if *q == p(2))));
        for obs in [p(0), p(1)] {
            let r = runner.report(obs, p(2)).unwrap();
            let td = r.detection_time.expect("crash detected");
            assert!(td.as_millis() < 2_000, "{obs}: T_D = {td}");
            assert!(
                runner.monitor_matches_batch(obs, p(2)),
                "{obs}: monitor {r:?} vs batch {:?}",
                runner.batch_report(obs, p(2))
            );
        }
        // All pairs agree with the batch shadow, crashed or not.
        for a in 0..3 {
            for b in 0..3 {
                assert!(runner.monitor_matches_batch(p(a), p(b)), "({a},{b})");
            }
        }
    }

    #[test]
    fn recovery_clears_suspicion_and_counts_the_outage_as_mistake() {
        // p1 crashes at 5 s and recovers at 8 s; no final crash.
        let scenario = OnlineScenario {
            n: 2,
            duration: ms(20_000),
            schedule: FaultSchedule::new()
                .at(ms(5_000), Fault::Crash(p(1)))
                .at(ms(8_000), Fault::Recover(p(1))),
            ..OnlineScenario::default()
        };
        let mut runner =
            OnlineRunner::new(JacobsonEstimator::new(4.0, ms(500)), scenario).with_batch_shadow();
        let events = runner.run_to_end();
        let flips: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                OnlineEvent::Suspicion {
                    observer,
                    target,
                    suspected,
                    ..
                } if *observer == p(0) && *target == p(1) => Some(*suspected),
                _ => None,
            })
            .collect();
        assert!(
            flips.windows(2).all(|w| w[0] != w[1]),
            "suspicion transitions must alternate: {flips:?}"
        );
        assert!(
            flips.contains(&true) && flips.contains(&false),
            "the outage must be suspected and then cleared: {flips:?}"
        );
        let r = runner.report(p(0), p(1)).unwrap();
        assert!(r.detection_time.is_none(), "no final crash to detect");
        assert!(r.mistakes >= 1, "the outage shows up as a mistake episode");
        assert!(runner.monitor_matches_batch(p(0), p(1)));
        // Thanks to the Jacobson outage clamp, the detector re-arms after
        // the recovery: a fresh silence is suspected again promptly.
        assert!(r.query_accuracy > 0.5, "{r:?}");
    }

    #[test]
    fn partition_causes_cross_side_suspicion_then_heals() {
        let mut side = ProcessSet::empty();
        side.insert(p(0));
        side.insert(p(1));
        let scenario = OnlineScenario {
            n: 4,
            duration: ms(20_000),
            schedule: FaultSchedule::new()
                .at(ms(6_000), Fault::Partition(side))
                .at(ms(10_000), Fault::Heal),
            ..OnlineScenario::default()
        };
        let mut runner =
            OnlineRunner::new(PhiAccrual::new(3.0, 32, ms(500)), scenario).with_batch_shadow();
        runner.run_to_end();
        // Across the cut: mistakes (the partition looked like a crash).
        let cross = runner.report(p(0), p(2)).unwrap();
        assert!(cross.mistakes >= 1, "{cross:?}");
        assert!(cross.detection_time.is_none());
        // Within a side: clean.
        let within = runner.report(p(0), p(1)).unwrap();
        assert_eq!(within.mistakes, 0, "{within:?}");
        for a in 0..4 {
            for b in 0..4 {
                assert!(runner.monitor_matches_batch(p(a), p(b)), "({a},{b})");
            }
        }
    }

    /// The online runner with a crash-only schedule reproduces the batch
    /// harness shape: same estimator, same period/delay/loss family.
    #[test]
    fn online_runner_agrees_with_the_batch_harness_shape() {
        let crash = ms(15_000);
        let duration = ms(20_000);
        let scenario = OnlineScenario {
            n: 2,
            duration,
            schedule: FaultSchedule::new().at(crash, Fault::Crash(p(1))),
            ..OnlineScenario::default()
        };
        let mut runner = OnlineRunner::new(FixedTimeout::new(ms(400)), scenario);
        runner.run_to_end();
        let online = runner.report(p(0), p(1)).unwrap();
        let batch = evaluate_qos(
            FixedTimeout::new(ms(400)),
            &QosScenario {
                crash_at: Some(crash),
                duration,
                ..QosScenario::default()
            },
        );
        // Identical modelling except for node-loop scheduling details:
        // both detect within a period-scale bound and make no mistakes.
        assert!(online.detection_time.is_some() && batch.detection_time.is_some());
        assert_eq!(online.mistakes, 0);
        assert_eq!(batch.mistakes, 0);
    }

    #[test]
    fn membership_churn_excludes_crashed_members_with_low_latency() {
        let scenario = OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(30_000),
            sample_every: ms(1),
            schedule: FaultSchedule::new().at(ms(5_000), Fault::Crash(p(2))),
            ..OnlineScenario::default()
        };
        let report = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);
        let latency = report.exclusion_latency[2].expect("crashed member excluded");
        assert!(latency.as_millis() < 5_000, "latency {latency}");
        assert!(report.false_exclusions.is_empty());
        assert!(report.view_changes >= 1);
    }

    #[test]
    fn membership_partition_forces_by_fiat_exclusions() {
        // A minority side {3} is cut off long enough to be excluded; it
        // never crashed, so the watcher must report a false exclusion —
        // the paper's by-fiat accuracy made measurable.
        let scenario = OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(30_000),
            sample_every: ms(1),
            schedule: FaultSchedule::new()
                .at(ms(5_000), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(15_000), Fault::Heal),
            ..OnlineScenario::default()
        };
        let report = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);
        assert!(
            report.false_exclusions.contains(p(3)),
            "{:?}",
            report.false_exclusions
        );
        assert!(report.exclusion_latency[3].is_none(), "p3 never crashed");
    }

    #[test]
    fn watcher_counts_view_changes_and_ignores_recovered_crashes() {
        let mut w = MembershipWatcher::new(3);
        w.note_crash(p(2), ms(100));
        w.note_recover(p(2));
        let mut v1 = ProcessSet::full(3);
        v1.remove(p(2));
        w.observe(ms(200), vec![(p(0), 1, v1), (p(1), 1, v1)]);
        let r = w.report();
        // p2 crashed (then recovered) before the exclusion: accurate, not
        // false; latency measured from the first crash.
        assert!(r.false_exclusions.is_empty());
        assert_eq!(r.exclusion_latency[2], Some(ms(100)));
        assert_eq!(r.view_changes, 2);
    }
}
