//! The online detection runtime: long-running scenarios under **churn**
//! (crash / recover / partition schedules), observed incrementally.
//!
//! The batch QoS harness ([`crate::qos::evaluate_qos`]) runs a two-node
//! scenario to completion and finalizes the metrics post hoc — exactly
//! the "inspect the corpse" style the paper's §1.3 says practitioners do
//! *not* deploy. This module is the long-running service counterpart:
//!
//! * [`FaultSchedule`] / [`Fault`] — a ground-truth timeline of crashes,
//!   recoveries and network partitions;
//! * [`OnlineRunner`] — a resumable scenario driver: `n` heartbeating
//!   [`DetectorNode`]s over any [`Transport`], advanced one sample tick
//!   at a time, yielding typed [`OnlineEvent`]s (fault injections and
//!   suspicion transitions) and feeding a live [`QosMonitor`] per
//!   observer–target pair. An opt-in batch [`QosTracker`] shadow
//!   ([`OnlineRunner::with_batch_shadow`]) receives the identical sample
//!   stream, so the incremental numbers can be checked for exact
//!   equality with [`QosTracker::finalize`] at any point (experiment
//!   E11's acceptance gate);
//! * [`MembershipWatcher`] — an incremental observer of a membership
//!   fleet under churn: exclusion latency per crash, false exclusions
//!   (live processes excluded by fiat — partitions force these), view
//!   change counts, split-brain duration and post-heal reconvergence
//!   latency. [`run_membership_churn`] drives a [`MembershipNode`] fleet
//!   through a fault schedule and returns the watcher's report.
//!
//! Both drivers are generic over the execution substrate — the per-node
//! [`Transport`], the [`ChurnableTransport`] fault plane the schedule
//! acts on, and the [`Pacer`] clock pacing the ticks — so one scenario
//! runs deterministically on the simulated network
//! ([`OnlineRunner::new`], [`run_membership_churn`]) *and* in wall time
//! over real UDP sockets wrapped in
//! [`crate::transport::FaultyTransport`] ([`OnlineRunner::over`],
//! [`run_membership_churn_over`]; see `examples/udp_churn.rs`).

use crate::clock::{ClockSkew, Nanos, Pacer, SkewedClock, VirtualClock};
use crate::detector::DetectorNode;
use crate::estimator::ArrivalEstimator;
use crate::membership::MembershipNode;
use crate::qos::{QosMonitor, QosReport, QosTracker};
use crate::transport::{ChurnableTransport, Endpoint, InMemoryNetwork, NetworkConfig, Transport};
use crate::weather::WeatherDirective;
use rfd_core::{ProcessId, ProcessSet};

/// One ground-truth fault injection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The process stops: no sends, no receives, no steps.
    Crash(ProcessId),
    /// The process resumes from its pre-crash state (churn).
    Recover(ProcessId),
    /// A network partition between `side` and its complement.
    Partition(ProcessSet),
    /// The active partition heals.
    Heal,
    /// An adversarial-weather mutation of the fault plane (one-way
    /// blocks, duplication, reordering, gray failure, spikes — see
    /// [`crate::weather`]). Requires a weather-capable
    /// [`ChurnableTransport`]; applying it to one that declines
    /// ([`ChurnableTransport::apply_weather`] returns `false`) panics
    /// the driver rather than running a silently calm scenario.
    Weather(WeatherDirective),
}

/// A time-ordered ground-truth schedule of [`Fault`]s.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<(Nanos, Fault)>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault at time `at` (builder style). Events may be added in
    /// any order; the schedule keeps them sorted by time (stable for
    /// equal times).
    #[must_use]
    pub fn at(mut self, at: Nanos, fault: Fault) -> Self {
        self.events.push((at, fault));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// The scheduled events, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[(Nanos, Fault)] {
        &self.events
    }

    /// The process's **final** crash time: the last `Crash` not followed
    /// by a `Recover`. This is the crash the Chen–Toueg–Aguilera metrics
    /// judge against — earlier crash/recover cycles are transient churn,
    /// visible to the detector only as (correctly penalized) mistakes.
    #[must_use]
    pub fn final_crash(&self, target: ProcessId) -> Option<Nanos> {
        let mut crash = None;
        for (at, fault) in &self.events {
            match fault {
                Fault::Crash(p) if *p == target => crash = Some(*at),
                Fault::Recover(p) if *p == target => crash = None,
                _ => {}
            }
        }
        crash
    }

    /// The first crash time of `target`, if any (what a membership
    /// exclusion latency is measured from).
    #[must_use]
    pub fn first_crash(&self, target: ProcessId) -> Option<Nanos> {
        self.events.iter().find_map(|(at, fault)| match fault {
            Fault::Crash(p) if *p == target => Some(*at),
            _ => None,
        })
    }
}

/// Applies every fault due at or before `now` to the network and the
/// ground-truth `up` vector, advancing the schedule cursor `next` and
/// calling `on_fault` once per applied fault (for caller-side
/// bookkeeping: event emission, watcher notes). Shared by
/// [`OnlineRunner::step`] and [`run_membership_churn`] so the two
/// drivers cannot drift in churn semantics — and generic over
/// [`ChurnableTransport`], so the semantics are also identical between
/// the simulated and the real-socket fleets.
pub(crate) fn apply_due_faults<N: ChurnableTransport, F: FnMut(Nanos, &Fault)>(
    schedule: &FaultSchedule,
    next: &mut usize,
    now: Nanos,
    net: &N,
    up: &mut [bool],
    mut on_fault: F,
) {
    while let Some((at, fault)) = schedule.events().get(*next) {
        if *at > now {
            break;
        }
        match fault {
            Fault::Crash(p) => {
                net.take_down(*p);
                up[p.index()] = false;
            }
            Fault::Recover(p) => {
                net.bring_up(*p);
                up[p.index()] = true;
            }
            Fault::Partition(side) => net.set_partition(*side),
            Fault::Heal => net.heal_partition(),
            Fault::Weather(d) => {
                assert!(
                    net.apply_weather(d),
                    "the schedule carries weather ({d:?}) but this substrate's fault \
                     plane declined it — drive weather schedules over a \
                     FaultInjector-wrapped fleet (see rfd_net::weather::weather_fleet)"
                );
            }
        }
        on_fault(*at, fault);
        *next += 1;
    }
}

/// Parameters of an online (long-running) detection scenario.
#[derive(Clone, Debug)]
pub struct OnlineScenario {
    /// Number of processes (all heartbeat all).
    pub n: usize,
    /// Heartbeat period.
    pub period: Nanos,
    /// Independent datagram loss probability.
    pub loss: f64,
    /// One-way delay bounds.
    pub delay: (Nanos, Nanos),
    /// Total observation duration.
    pub duration: Nanos,
    /// The sampling/poll tick.
    pub sample_every: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Ground-truth fault schedule.
    pub schedule: FaultSchedule,
    /// Whether the membership fleet reconciles split-brain views after a
    /// partition heals (see
    /// [`MembershipNode::with_heal_merge`](crate::membership::MembershipNode::with_heal_merge)).
    /// Off by default: the classic §1.3 service split-brains by design —
    /// exclusion is forever. Only [`run_membership_churn`] reads this;
    /// the detector fleet of [`OnlineRunner`] has no views to merge.
    pub heal_merge: bool,
    /// Per-node clock skew rates (index = process id), identity where
    /// absent or empty. Every node's local clock — heartbeat pacing,
    /// timeout arithmetic, arrival stamps — runs through a
    /// [`SkewedClock`] at its rate while the driver keeps ticking in
    /// unskewed time, so a skewed node is locally honest but globally
    /// fast or slow. Populated by
    /// [`Weather::apply_to`](crate::weather::Weather::apply_to).
    pub skews: Vec<ClockSkew>,
}

impl Default for OnlineScenario {
    fn default() -> Self {
        Self {
            n: 4,
            period: Nanos::from_millis(100),
            loss: 0.0,
            delay: (Nanos::from_millis(2), Nanos::from_millis(10)),
            duration: Nanos::from_millis(30_000),
            sample_every: Nanos::from_millis(5),
            seed: 0,
            schedule: FaultSchedule::new(),
            heal_merge: false,
            skews: Vec::new(),
        }
    }
}

/// A typed event yielded by [`OnlineRunner::step`].
#[derive(Clone, Debug)]
pub enum OnlineEvent {
    /// A scheduled fault took effect.
    Fault {
        /// Injection time (the tick at which it was applied).
        at: Nanos,
        /// The fault.
        fault: Fault,
    },
    /// An observer's verdict about a target flipped.
    Suspicion {
        /// The observing process.
        observer: ProcessId,
        /// The judged process.
        target: ProcessId,
        /// When the transition was observed.
        at: Nanos,
        /// The new verdict (`true` = suspect).
        suspected: bool,
    },
}

/// A resumable online scenario: call [`OnlineRunner::step`] per sample
/// tick (or [`OnlineRunner::run_to_end`]) and read live per-pair QoS via
/// [`OnlineRunner::report`] at any time — the streaming counterpart of
/// the batch [`QosTracker`] path, with one incremental [`QosMonitor`]
/// per observer–target pair.
///
/// The runner is generic over the whole execution substrate:
///
/// * `T` — the per-node [`Transport`] the detector fleet speaks over;
/// * `C` — the [`Pacer`] clock that drives the sample ticks
///   ([`VirtualClock`] jumps instantly and deterministically,
///   [`crate::clock::SystemClock`] genuinely sleeps between ticks);
/// * `N` — the [`ChurnableTransport`] control plane the fault schedule
///   acts on.
///
/// [`OnlineRunner::new`] instantiates the simulated combination
/// (in-memory network + virtual clock); [`OnlineRunner::over`] accepts
/// any other stack, e.g. [`crate::transport::FaultyTransport`]-wrapped
/// UDP sockets paced by the wall clock (`examples/udp_churn.rs`).
///
/// # Examples
///
/// ```
/// use rfd_core::ProcessId;
/// use rfd_net::clock::Nanos;
/// use rfd_net::estimator::ChenEstimator;
/// use rfd_net::online::{Fault, FaultSchedule, OnlineRunner, OnlineScenario};
///
/// let ms = Nanos::from_millis;
/// let target = ProcessId::new(1);
/// let scenario = OnlineScenario {
///     n: 2,
///     duration: ms(10_000),
///     schedule: FaultSchedule::new().at(ms(5_000), Fault::Crash(target)),
///     ..OnlineScenario::default()
/// };
/// let mut runner = OnlineRunner::new(ChenEstimator::new(ms(50), 32, ms(500)), scenario);
/// while let Some(_events) = runner.step() { /* react live */ }
/// let report = runner.report(ProcessId::new(0), target).unwrap();
/// assert!(report.detection_time.is_some(), "the crash was detected");
/// ```
#[derive(Debug)]
pub struct OnlineRunner<E, T = Endpoint, C = VirtualClock, N = InMemoryNetwork>
where
    E: ArrivalEstimator + Clone,
{
    scenario: OnlineScenario,
    clock: C,
    net: N,
    /// Each node's clock is the driver clock seen through that node's
    /// [`ClockSkew`] (identity unless the scenario skews it).
    nodes: Vec<DetectorNode<E, T, SkewedClock<C>>>,
    up: Vec<bool>,
    /// `monitors[observer][target]`, `None` on the diagonal.
    monitors: Vec<Vec<Option<QosMonitor>>>,
    /// Batch shadows fed the identical sample stream (the equality
    /// gate). Opt-in via [`OnlineRunner::with_batch_shadow`]: a tracker
    /// keeps every suspicion episode, which is exactly the unbounded
    /// growth the incremental monitor exists to avoid, so a long-running
    /// deployment must not pay for it by default.
    shadows: Option<Vec<Vec<Option<QosTracker>>>>,
    last_suspects: Vec<ProcessSet>,
    next_fault: usize,
    stepped: bool,
    done: bool,
}

impl<E: ArrivalEstimator + Clone> OnlineRunner<E> {
    /// Builds the simulated runner: `n` detector nodes around clones of
    /// `prototype` over a fresh seeded virtual network (the scenario's
    /// `loss`, `delay` and `seed` fields), deterministic per seed.
    #[must_use]
    pub fn new(prototype: E, scenario: OnlineScenario) -> Self {
        let n = scenario.n;
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(scenario.delay.0, scenario.delay.1)
            .with_loss(scenario.loss)
            .with_seed(scenario.seed);
        let net = InMemoryNetwork::new(n, config, clock.clone());
        let endpoints = (0..n).map(|ix| net.endpoint(ProcessId::new(ix))).collect();
        Self::over(prototype, scenario, endpoints, net, clock)
    }
}

impl<E, T, C, N> OnlineRunner<E, T, C, N>
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Pacer + Clone,
    N: ChurnableTransport,
{
    /// Builds the runner over an arbitrary substrate: one [`Transport`]
    /// per node (in process-id order), the [`ChurnableTransport`] control
    /// plane the fault schedule drives, and the [`Pacer`] clock that
    /// paces the sample ticks. One [`QosMonitor`] per ordered
    /// observer–target pair is primed with the schedule's final crash
    /// times.
    ///
    /// The scenario's transport-level fields (`loss`, `delay`, `seed`)
    /// describe the network [`OnlineRunner::new`] builds; here the
    /// caller already built the substrate, so they are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints.len() != scenario.n` or an endpoint's
    /// identity disagrees with its position.
    #[must_use]
    pub fn over(
        prototype: E,
        scenario: OnlineScenario,
        endpoints: Vec<T>,
        net: N,
        clock: C,
    ) -> Self {
        let n = scenario.n;
        assert_eq!(endpoints.len(), n, "one endpoint per process");
        let nodes = endpoints
            .into_iter()
            .enumerate()
            .map(|(ix, endpoint)| {
                assert_eq!(endpoint.me(), ProcessId::new(ix), "endpoints out of order");
                let skew = scenario.skews.get(ix).copied().unwrap_or_default();
                DetectorNode::new(
                    n,
                    prototype.clone(),
                    endpoint,
                    SkewedClock::new(clock.clone(), skew),
                    scenario.period,
                )
            })
            .collect();
        let monitors = (0..n)
            .map(|obs| {
                (0..n)
                    .map(|t| {
                        (obs != t).then(|| {
                            QosMonitor::new(scenario.schedule.final_crash(ProcessId::new(t)))
                        })
                    })
                    .collect()
            })
            .collect();
        Self {
            up: vec![true; n],
            last_suspects: vec![ProcessSet::empty(); n],
            monitors,
            shadows: None,
            nodes,
            net,
            clock,
            next_fault: 0,
            stepped: false,
            done: false,
            scenario,
        }
    }

    /// Additionally feeds every pair's sample stream to a batch
    /// [`QosTracker`] shadow (builder style), enabling
    /// [`OnlineRunner::batch_report`] and
    /// [`OnlineRunner::monitor_matches_batch`] — the E11 equality gate.
    ///
    /// Off by default: a tracker records every suspicion episode, which
    /// is unbounded over a long run — precisely what the incremental
    /// monitor avoids. Enable it for verification runs only, before the
    /// first [`OnlineRunner::step`].
    #[must_use]
    pub fn with_batch_shadow(mut self) -> Self {
        let n = self.scenario.n;
        debug_assert!(
            !self.stepped,
            "enable the shadow before stepping, or it will miss samples"
        );
        self.shadows = Some(
            (0..n)
                .map(|obs| (0..n).map(|t| (obs != t).then(QosTracker::new)).collect())
                .collect(),
        );
        self
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Whether the scenario duration has elapsed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Which processes are currently up (ground truth).
    #[must_use]
    pub fn up_set(&self) -> ProcessSet {
        let mut s = ProcessSet::empty();
        for (ix, up) in self.up.iter().enumerate() {
            if *up {
                s.insert(ProcessId::new(ix));
            }
        }
        s
    }

    /// Executes one sample tick: applies due faults, polls every live
    /// node, samples all monitors, paces the clock to the next tick, and
    /// returns the tick's events. `None` once the scenario duration has
    /// elapsed.
    ///
    /// Under a [`VirtualClock`] the tick is instantaneous; under a
    /// [`crate::clock::SystemClock`] this genuinely sleeps out the
    /// remainder of `sample_every`, so driving the runner in a loop
    /// paces the fleet in wall time.
    pub fn step(&mut self) -> Option<Vec<OnlineEvent>> {
        if self.done {
            return None;
        }
        self.stepped = true;
        let now = self.clock.now();
        if now >= self.scenario.duration {
            self.done = true;
            return None;
        }
        let mut events = Vec::new();
        apply_due_faults(
            &self.scenario.schedule,
            &mut self.next_fault,
            now,
            &self.net,
            &mut self.up,
            |at, fault| events.push(OnlineEvent::Fault { at, fault: *fault }),
        );
        for ix in 0..self.scenario.n {
            if !self.up[ix] {
                continue;
            }
            let suspects = self.nodes[ix].poll();
            let flips = suspects
                .union(self.last_suspects[ix])
                .difference(suspects.intersection(self.last_suspects[ix]));
            for target in flips {
                events.push(OnlineEvent::Suspicion {
                    observer: ProcessId::new(ix),
                    target,
                    at: now,
                    suspected: suspects.contains(target),
                });
            }
            self.last_suspects[ix] = suspects;
            for t in 0..self.scenario.n {
                let verdict = suspects.contains(ProcessId::new(t));
                if let Some(m) = &mut self.monitors[ix][t] {
                    m.sample(now, verdict);
                }
                if let Some(shadows) = &mut self.shadows {
                    if let Some(s) = &mut shadows[ix][t] {
                        s.sample(now, verdict);
                    }
                }
            }
        }
        self.clock
            .pace_to(now.saturating_add(self.scenario.sample_every));
        Some(events)
    }

    /// Runs the remaining ticks and returns every event produced.
    pub fn run_to_end(&mut self) -> Vec<OnlineEvent> {
        let mut all = Vec::new();
        while let Some(mut events) = self.step() {
            all.append(&mut events);
        }
        all
    }

    /// The live QoS report of `observer` about `target` as of the
    /// current time (or the scenario end once done), straight from the
    /// incremental monitor. `None` on the diagonal.
    #[must_use]
    pub fn report(&self, observer: ProcessId, target: ProcessId) -> Option<QosReport> {
        let end = if self.done {
            self.scenario.duration
        } else {
            self.clock.now()
        };
        self.monitors[observer.index()][target.index()]
            .as_ref()
            .map(|m| m.report(end))
    }

    /// The batch-path report of the same pair: the shadow
    /// [`QosTracker`]'s post-hoc [`QosTracker::finalize`] over the
    /// identical sample stream. `None` on the diagonal.
    ///
    /// # Panics
    ///
    /// Panics unless the runner was built with
    /// [`OnlineRunner::with_batch_shadow`].
    #[must_use]
    pub fn batch_report(&self, observer: ProcessId, target: ProcessId) -> Option<QosReport> {
        let end = if self.done {
            self.scenario.duration
        } else {
            self.clock.now()
        };
        self.shadows
            .as_ref()
            .expect("batch shadow not enabled; build the runner with with_batch_shadow()")
            [observer.index()][target.index()]
        .as_ref()
        .map(|s| s.finalize(self.scenario.schedule.final_crash(target), end))
    }

    /// Whether the incremental monitor and the batch tracker agree
    /// **exactly** (every field, including the floating-point rates) for
    /// the pair — the E11 acceptance gate.
    ///
    /// # Panics
    ///
    /// Panics unless the runner was built with
    /// [`OnlineRunner::with_batch_shadow`].
    #[must_use]
    pub fn monitor_matches_batch(&self, observer: ProcessId, target: ProcessId) -> bool {
        match (
            self.report(observer, target),
            self.batch_report(observer, target),
        ) {
            (Some(a), Some(b)) => reports_equal(&a, &b),
            (None, None) => true,
            _ => false,
        }
    }
}

/// Exact (bitwise for floats) equality of two QoS reports.
#[must_use]
pub fn reports_equal(a: &QosReport, b: &QosReport) -> bool {
    a.detection_time == b.detection_time
        && a.mistakes == b.mistakes
        && a.mistake_rate.to_bits() == b.mistake_rate.to_bits()
        && a.avg_mistake_duration == b.avg_mistake_duration
        && a.longest_mistake == b.longest_mistake
        && a.query_accuracy.to_bits() == b.query_accuracy.to_bits()
}

/// The report of a [`MembershipWatcher`].
#[derive(Clone, Debug)]
pub struct MembershipChurnReport {
    /// Per process: time from its first crash to its exclusion from the
    /// authoritative view. `None` if it never crashed, was never
    /// excluded, or was excluded *before* it crashed (that exclusion did
    /// not detect the crash — it shows up in
    /// [`MembershipChurnReport::false_exclusions`] instead).
    pub exclusion_latency: Vec<Option<Nanos>>,
    /// Processes excluded although they had neither crashed nor been
    /// down before — the by-fiat accuracy enforcement of §1.3 (typical
    /// under partitions).
    pub false_exclusions: ProcessSet,
    /// View installations observed across the fleet.
    pub view_changes: u64,
    /// Total time the fleet spent **split-brained**: live, non-halted
    /// members holding at least two distinct views (id or member set).
    /// Accumulated between observation ticks, so its resolution is the
    /// observation cadence and the partial interval after the final
    /// observation is not counted (an undercount of at most one tick).
    pub split_brain_duration: Nanos,
    /// Per noted heal ([`MembershipWatcher::note_heal`]), the time from
    /// the heal to the first observation at which every live member held
    /// one single view again. `None` if the fleet never reconverged
    /// before the observation ended — the default (merge-less) service
    /// split-brains forever; the heal-merge reconciliation is what makes
    /// these finite.
    pub time_to_reconverge: Vec<Option<Nanos>>,
    /// Decision-log entries adopted via post-heal **state transfer**
    /// ([`MembershipWatcher::note_state_transfer`]) across the fleet —
    /// the work the heal-merge re-sync did.
    pub decisions_transferred: u64,
    /// Decision-log entries *discarded* while reconciling (a conflicting
    /// suffix lost to the total view order). Zero as long as the service
    /// layer's agreement holds; any other value is a safety red flag.
    pub decisions_lost: u64,
    /// Snapshot summaries served to fast-rejoining peers
    /// ([`MembershipWatcher::note_sync_served`] with `snapshot: true`) —
    /// the compaction fast path of the service layer.
    pub snapshots_sent: u64,
    /// Total encoded bytes of sync and snapshot reply frames served
    /// across the fleet — the transfer cost experiment E14 plots
    /// against log length.
    pub sync_bytes_sent: u64,
    /// Per noted rejoin ([`MembershipWatcher::note_rejoin`]): the time
    /// from a heal until every live replica caught up to the pre-heal
    /// log length — E14's rejoin latency.
    pub rejoin_latencies: Vec<Nanos>,
    /// Adversarial-weather directives applied during the run
    /// ([`MembershipWatcher::note_weather`]) — zero on a crash-only
    /// schedule, so a report can attest which fault vocabulary the
    /// fleet was actually exposed to.
    pub weather_directives: u64,
    /// Frames re-sent by the service layer's retransmission plane
    /// across the fleet. Zero on a calm network — retransmission is
    /// pure insurance against loss. Filled by the service runner
    /// (node-level counters summed); a bare [`MembershipWatcher`]
    /// reports zero.
    pub retransmits_sent: u64,
    /// Received frames the service layer dropped as duplicates
    /// (idempotent receipt of retransmitted or raced frames), summed
    /// across the fleet. Filled by the service runner; a bare
    /// [`MembershipWatcher`] reports zero.
    pub duplicate_frames_dropped: u64,
}

/// An incremental observer of a membership fleet under churn: feed it
/// ground-truth fault notes and periodic view observations; read the
/// report at any time.
#[derive(Clone, Debug)]
pub struct MembershipWatcher {
    n: usize,
    down: ProcessSet,
    first_crash: Vec<Option<Nanos>>,
    excluded_at: Vec<Option<Nanos>>,
    false_exclusions: ProcessSet,
    last_view_ids: Vec<u64>,
    /// Last observed member set per node: heal-merge adoption is ordered
    /// by `(id, member bitmap)`, so an installation can keep the id and
    /// change only the members — counted as a view change too.
    last_view_members: Vec<Option<ProcessSet>>,
    view_changes: u64,
    /// Whether the previous observation saw divergent views, and when it
    /// was taken — the state that turns per-tick observations into the
    /// accumulated split-brain duration.
    diverged: bool,
    last_observed: Option<Nanos>,
    split_brain: Nanos,
    /// `(heal time, time to reconverge)` per noted heal; the second
    /// component stays `None` until a convergent observation follows.
    heals: Vec<(Nanos, Option<Nanos>)>,
    decisions_transferred: u64,
    decisions_lost: u64,
    snapshots_sent: u64,
    sync_bytes_sent: u64,
    rejoin_latencies: Vec<Nanos>,
    weather_directives: u64,
}

impl MembershipWatcher {
    /// A watcher over `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            down: ProcessSet::empty(),
            first_crash: vec![None; n],
            excluded_at: vec![None; n],
            false_exclusions: ProcessSet::empty(),
            last_view_ids: vec![0; n],
            last_view_members: vec![None; n],
            view_changes: 0,
            diverged: false,
            last_observed: None,
            split_brain: Nanos::ZERO,
            heals: Vec::new(),
            decisions_transferred: 0,
            decisions_lost: 0,
            snapshots_sent: 0,
            sync_bytes_sent: 0,
            rejoin_latencies: Vec::new(),
            weather_directives: 0,
        }
    }

    /// Notes a ground-truth crash of `p` at `at`. Out-of-range processes
    /// (`p.index() >= n`) are ignored — the watcher tracks only the
    /// fleet it was sized for.
    pub fn note_crash(&mut self, p: ProcessId, at: Nanos) {
        if p.index() >= self.n {
            return;
        }
        self.down.insert(p);
        if self.first_crash[p.index()].is_none() {
            self.first_crash[p.index()] = Some(at);
        }
    }

    /// Notes a ground-truth recovery of `p` (out-of-range ignored, as in
    /// [`MembershipWatcher::note_crash`]).
    pub fn note_recover(&mut self, p: ProcessId) {
        if p.index() >= self.n {
            return;
        }
        self.down.remove(p);
    }

    /// Notes one state-transfer reconciliation at the service layer:
    /// `adopted` log entries were received from a peer, `lost` local
    /// entries were discarded to the total view order while merging.
    pub fn note_state_transfer(&mut self, adopted: u64, lost: u64) {
        self.decisions_transferred += adopted;
        self.decisions_lost += lost;
    }

    /// Notes one served state-transfer reply at the service layer:
    /// `bytes` encoded reply bytes went out, as a `snapshot` summary or
    /// a plain log-suffix stream.
    pub fn note_sync_served(&mut self, bytes: u64, snapshot: bool) {
        self.sync_bytes_sent += bytes;
        if snapshot {
            self.snapshots_sent += 1;
        }
    }

    /// Notes one completed rejoin: the measured time from a heal until
    /// every live replica caught back up to the pre-heal log length.
    pub fn note_rejoin(&mut self, latency: Nanos) {
        self.rejoin_latencies.push(latency);
    }

    /// Notes one applied adversarial-weather directive (see
    /// [`Fault::Weather`]): the report's attestation that the run was
    /// weathered, not calm.
    pub fn note_weather(&mut self) {
        self.weather_directives += 1;
    }

    /// Notes that the network partition healed at `at`: the fleet's time
    /// to reconverge onto a single view is measured from here (reported
    /// in [`MembershipChurnReport::time_to_reconverge`]).
    pub fn note_heal(&mut self, at: Nanos) {
        self.heals.push((at, None));
    }

    /// Feeds one observation tick: `views` holds, for each live
    /// (non-halted) member, its current view id and member set. A
    /// process counts as *excluded* once the **authoritative view** —
    /// the one held by the lowest-index live member, i.e. the
    /// coordinator lineage — omits it. (Judging against *every* view
    /// would deadlock under split-brain: a partitioned minority keeps a
    /// stale view containing itself until it learns of its exclusion.)
    ///
    /// Members with an out-of-range index (`>= n`) are skipped rather
    /// than indexed — the same latent panic family as the heartbeat
    /// sender guard in [`crate::membership::MembershipNode::on_wire`].
    pub fn observe<I>(&mut self, now: Nanos, views: I)
    where
        I: IntoIterator<Item = (ProcessId, u64, ProcessSet)>,
    {
        let mut authority: Option<(ProcessId, ProcessSet)> = None;
        let mut first_view: Option<(u64, ProcessSet)> = None;
        let mut saw_view = false;
        let mut diverged_now = false;
        for (member, view_id, members) in views {
            if member.index() >= self.n {
                continue;
            }
            match &authority {
                Some((lowest, _)) if member >= *lowest => {}
                _ => authority = Some((member, members)),
            }
            match first_view {
                Some(v) if v != (view_id, members) => diverged_now = true,
                None => first_view = Some((view_id, members)),
                Some(_) => {}
            }
            saw_view = true;
            let last = &mut self.last_view_ids[member.index()];
            if view_id > *last {
                self.view_changes += view_id - *last;
                *last = view_id;
            } else if view_id == *last
                && self.last_view_members[member.index()].is_some_and(|m| m != members)
            {
                // A same-id, different-members installation: the
                // heal-merge total order advanced on the bitmap alone.
                self.view_changes += 1;
            }
            self.last_view_members[member.index()] = Some(members);
        }
        // Split-brain accounting: the interval since the previous
        // observation carries that observation's divergence verdict.
        if self.diverged {
            if let Some(prev) = self.last_observed {
                self.split_brain = self.split_brain.saturating_add(now.saturating_sub(prev));
            }
        }
        self.diverged = diverged_now;
        self.last_observed = Some(now);
        if saw_view && !diverged_now {
            for (healed_at, reconverged) in &mut self.heals {
                if reconverged.is_none() && now >= *healed_at {
                    *reconverged = Some(now.saturating_sub(*healed_at));
                }
            }
        }
        let Some((_, authoritative_members)) = authority else {
            return;
        };
        let excluded = authoritative_members.complement_within(self.n);
        for p in excluded {
            if self.excluded_at[p.index()].is_none() {
                self.excluded_at[p.index()] = Some(now);
                if !self.down.contains(p) && self.first_crash[p.index()].is_none() {
                    self.false_exclusions.insert(p);
                }
            }
        }
    }

    /// The report so far.
    #[must_use]
    pub fn report(&self) -> MembershipChurnReport {
        let exclusion_latency = (0..self.n)
            .map(|ix| match (self.first_crash[ix], self.excluded_at[ix]) {
                // An exclusion that precedes the crash did not detect it
                // (e.g. a partition exclusion before a later crash): a
                // saturated 0 here would read as instant detection.
                (Some(c), Some(e)) if e >= c => Some(e.saturating_sub(c)),
                _ => None,
            })
            .collect();
        MembershipChurnReport {
            exclusion_latency,
            false_exclusions: self.false_exclusions,
            view_changes: self.view_changes,
            split_brain_duration: self.split_brain,
            time_to_reconverge: self.heals.iter().map(|(_, r)| *r).collect(),
            decisions_transferred: self.decisions_transferred,
            decisions_lost: self.decisions_lost,
            snapshots_sent: self.snapshots_sent,
            sync_bytes_sent: self.sync_bytes_sent,
            rejoin_latencies: self.rejoin_latencies.clone(),
            weather_directives: self.weather_directives,
            retransmits_sent: 0,
            duplicate_frames_dropped: 0,
        }
    }
}

/// Drives a [`MembershipNode`] fleet through the scenario's fault
/// schedule over the simulated network (deterministic per seed),
/// observing it live with a [`MembershipWatcher`], and returns the
/// watcher's report. Delegates to [`run_membership_churn_over`].
///
/// With `scenario.heal_merge` off (the default), exclusion is forever —
/// the §1.3 enforcement: a process excluded while down or partitioned
/// either halts on learning of a newer view that omits it, or (having
/// suspected everyone during its outage) splits off into a stale view of
/// its own that the authoritative group never readopts. With it on, the
/// fleet instead reconciles after partitions heal: divergent views merge
/// back into a single one and
/// [`MembershipChurnReport::time_to_reconverge`] becomes finite.
pub fn run_membership_churn<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: &OnlineScenario,
) -> MembershipChurnReport {
    let n = scenario.n;
    let clock = VirtualClock::new();
    let config = NetworkConfig::reliable(scenario.delay.0, scenario.delay.1)
        .with_loss(scenario.loss)
        .with_seed(scenario.seed);
    let net = InMemoryNetwork::new(n, config, clock.clone());
    let endpoints = (0..n).map(|ix| net.endpoint(ProcessId::new(ix))).collect();
    run_membership_churn_over(prototype, scenario, endpoints, net, clock)
}

/// The transport-generic membership churn driver behind
/// [`run_membership_churn`]: one [`Transport`] per node, the
/// [`ChurnableTransport`] control plane the schedule acts on, and the
/// [`Pacer`] clock that paces the observation ticks — pass
/// [`crate::transport::FaultyTransport`]-wrapped UDP sockets and a
/// [`crate::clock::SystemClock`] to churn a membership fleet over real
/// sockets in wall time.
///
/// # Panics
///
/// Panics if `endpoints.len() != scenario.n`.
pub fn run_membership_churn_over<E, T, C, N>(
    prototype: E,
    scenario: &OnlineScenario,
    endpoints: Vec<T>,
    net: N,
    clock: C,
) -> MembershipChurnReport
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Pacer + Clone,
    N: ChurnableTransport,
{
    let n = scenario.n;
    assert_eq!(endpoints.len(), n, "one endpoint per process");
    let mut nodes: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .map(|(ix, endpoint)| {
            assert_eq!(endpoint.me(), ProcessId::new(ix), "endpoints out of order");
            let skew = scenario.skews.get(ix).copied().unwrap_or_default();
            let node = MembershipNode::new(
                n,
                prototype.clone(),
                endpoint,
                SkewedClock::new(clock.clone(), skew),
                scenario.period,
            );
            if scenario.heal_merge {
                node.with_heal_merge()
            } else {
                node
            }
        })
        .collect();
    let mut watcher = MembershipWatcher::new(n);
    let mut up = vec![true; n];
    let mut next_fault = 0usize;
    while clock.now() < scenario.duration {
        let now = clock.now();
        apply_due_faults(
            &scenario.schedule,
            &mut next_fault,
            now,
            &net,
            &mut up,
            |at, fault| match fault {
                Fault::Crash(p) => watcher.note_crash(*p, at),
                Fault::Recover(p) => watcher.note_recover(*p),
                Fault::Heal => watcher.note_heal(at),
                Fault::Partition(_) => {}
                Fault::Weather(_) => watcher.note_weather(),
            },
        );
        for (ix, node) in nodes.iter_mut().enumerate() {
            if up[ix] {
                node.poll();
            }
        }
        watcher.observe(
            now,
            nodes
                .iter()
                .enumerate()
                .filter(|(ix, node)| up[*ix] && !node.is_halted())
                .map(|(ix, node)| {
                    let v = node.view();
                    (ProcessId::new(ix), v.id, v.members)
                }),
        );
        clock.pace_to(now.saturating_add(scenario.sample_every));
    }
    watcher.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;
    use crate::estimator::{ChenEstimator, FixedTimeout, JacobsonEstimator, PhiAccrual};
    use crate::qos::{evaluate_qos, QosScenario};
    use crate::transport::faulty_cluster;
    use crate::transport::udp::loopback_cluster;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn schedule_final_crash_sees_through_churn() {
        let s = FaultSchedule::new()
            .at(ms(10_000), Fault::Recover(p(1)))
            .at(ms(5_000), Fault::Crash(p(1)))
            .at(ms(20_000), Fault::Crash(p(1)));
        assert_eq!(s.final_crash(p(1)), Some(ms(20_000)));
        assert_eq!(s.first_crash(p(1)), Some(ms(5_000)));
        assert_eq!(s.final_crash(p(2)), None);
        // Events come back time-sorted regardless of insertion order.
        let times: Vec<u64> = s.events().iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![5_000, 10_000, 20_000]);
    }

    #[test]
    fn online_runner_detects_a_final_crash_and_matches_batch() {
        let scenario = OnlineScenario {
            n: 3,
            duration: ms(20_000),
            schedule: FaultSchedule::new().at(ms(12_000), Fault::Crash(p(2))),
            ..OnlineScenario::default()
        };
        let mut runner = OnlineRunner::new(ChenEstimator::new(ms(50), 32, ms(500)), scenario)
            .with_batch_shadow();
        let events = runner.run_to_end();
        assert!(runner.is_done());
        assert!(events
            .iter()
            .any(|e| matches!(e, OnlineEvent::Fault { fault: Fault::Crash(q), .. } if *q == p(2))));
        for obs in [p(0), p(1)] {
            let r = runner.report(obs, p(2)).unwrap();
            let td = r.detection_time.expect("crash detected");
            assert!(td.as_millis() < 2_000, "{obs}: T_D = {td}");
            assert!(
                runner.monitor_matches_batch(obs, p(2)),
                "{obs}: monitor {r:?} vs batch {:?}",
                runner.batch_report(obs, p(2))
            );
        }
        // All pairs agree with the batch shadow, crashed or not.
        for a in 0..3 {
            for b in 0..3 {
                assert!(runner.monitor_matches_batch(p(a), p(b)), "({a},{b})");
            }
        }
    }

    #[test]
    fn recovery_clears_suspicion_and_counts_the_outage_as_mistake() {
        // p1 crashes at 5 s and recovers at 8 s; no final crash.
        let scenario = OnlineScenario {
            n: 2,
            duration: ms(20_000),
            schedule: FaultSchedule::new()
                .at(ms(5_000), Fault::Crash(p(1)))
                .at(ms(8_000), Fault::Recover(p(1))),
            ..OnlineScenario::default()
        };
        let mut runner =
            OnlineRunner::new(JacobsonEstimator::new(4.0, ms(500)), scenario).with_batch_shadow();
        let events = runner.run_to_end();
        let flips: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                OnlineEvent::Suspicion {
                    observer,
                    target,
                    suspected,
                    ..
                } if *observer == p(0) && *target == p(1) => Some(*suspected),
                _ => None,
            })
            .collect();
        assert!(
            flips.windows(2).all(|w| w[0] != w[1]),
            "suspicion transitions must alternate: {flips:?}"
        );
        assert!(
            flips.contains(&true) && flips.contains(&false),
            "the outage must be suspected and then cleared: {flips:?}"
        );
        let r = runner.report(p(0), p(1)).unwrap();
        assert!(r.detection_time.is_none(), "no final crash to detect");
        assert!(r.mistakes >= 1, "the outage shows up as a mistake episode");
        assert!(runner.monitor_matches_batch(p(0), p(1)));
        // Thanks to the Jacobson outage clamp, the detector re-arms after
        // the recovery: a fresh silence is suspected again promptly.
        assert!(r.query_accuracy > 0.5, "{r:?}");
    }

    #[test]
    fn partition_causes_cross_side_suspicion_then_heals() {
        let mut side = ProcessSet::empty();
        side.insert(p(0));
        side.insert(p(1));
        let scenario = OnlineScenario {
            n: 4,
            duration: ms(20_000),
            schedule: FaultSchedule::new()
                .at(ms(6_000), Fault::Partition(side))
                .at(ms(10_000), Fault::Heal),
            ..OnlineScenario::default()
        };
        let mut runner =
            OnlineRunner::new(PhiAccrual::new(3.0, 32, ms(500)), scenario).with_batch_shadow();
        runner.run_to_end();
        // Across the cut: mistakes (the partition looked like a crash).
        let cross = runner.report(p(0), p(2)).unwrap();
        assert!(cross.mistakes >= 1, "{cross:?}");
        assert!(cross.detection_time.is_none());
        // Within a side: clean.
        let within = runner.report(p(0), p(1)).unwrap();
        assert_eq!(within.mistakes, 0, "{within:?}");
        for a in 0..4 {
            for b in 0..4 {
                assert!(runner.monitor_matches_batch(p(a), p(b)), "({a},{b})");
            }
        }
    }

    /// The online runner with a crash-only schedule reproduces the batch
    /// harness shape: same estimator, same period/delay/loss family.
    #[test]
    fn online_runner_agrees_with_the_batch_harness_shape() {
        let crash = ms(15_000);
        let duration = ms(20_000);
        let scenario = OnlineScenario {
            n: 2,
            duration,
            schedule: FaultSchedule::new().at(crash, Fault::Crash(p(1))),
            ..OnlineScenario::default()
        };
        let mut runner = OnlineRunner::new(FixedTimeout::new(ms(400)), scenario);
        runner.run_to_end();
        let online = runner.report(p(0), p(1)).unwrap();
        let batch = evaluate_qos(
            FixedTimeout::new(ms(400)),
            &QosScenario {
                crash_at: Some(crash),
                duration,
                ..QosScenario::default()
            },
        );
        // Identical modelling except for node-loop scheduling details:
        // both detect within a period-scale bound and make no mistakes.
        assert!(online.detection_time.is_some() && batch.detection_time.is_some());
        assert_eq!(online.mistakes, 0);
        assert_eq!(batch.mistakes, 0);
    }

    /// The generic runner over a [`crate::transport::FaultyTransport`]
    /// cluster (reliable in-memory medium, every fault injected by the
    /// wrapper) behaves like the native in-memory runner: the crash is
    /// detected and the incremental monitors still equal their batch
    /// shadows exactly.
    #[test]
    fn generic_runner_over_a_faulty_transport_detects_and_matches_batch() {
        let scenario = OnlineScenario {
            n: 3,
            duration: ms(20_000),
            schedule: FaultSchedule::new()
                .at(ms(6_000), Fault::Partition(ProcessSet::singleton(p(1))))
                .at(ms(9_000), Fault::Heal)
                .at(ms(12_000), Fault::Crash(p(2))),
            ..OnlineScenario::default()
        };
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(scenario.delay.0, scenario.delay.1);
        let net = InMemoryNetwork::new(scenario.n, config, clock.clone());
        let endpoints = (0..scenario.n)
            .map(|ix| net.endpoint(ProcessId::new(ix)))
            .collect();
        let (nodes, injector) = faulty_cluster(endpoints, 0.0, scenario.seed, clock.clone());
        let mut runner = OnlineRunner::over(
            ChenEstimator::new(ms(50), 32, ms(500)),
            scenario,
            nodes,
            injector,
            clock,
        )
        .with_batch_shadow();
        let events = runner.run_to_end();
        assert!(events.iter().any(|e| matches!(
            e,
            OnlineEvent::Fault {
                fault: Fault::Heal,
                ..
            }
        )));
        let r = runner.report(p(0), p(2)).unwrap();
        let td = r
            .detection_time
            .expect("crash detected through the wrapper");
        assert!(td.as_millis() < 2_000, "T_D = {td}");
        // The partition of p1 looked like a crash to p0: a mistake.
        let cross = runner.report(p(0), p(1)).unwrap();
        assert!(cross.mistakes >= 1, "{cross:?}");
        for a in 0..3 {
            for b in 0..3 {
                assert!(runner.monitor_matches_batch(p(a), p(b)), "({a},{b})");
            }
        }
    }

    /// The whole online stack over *real* loopback UDP sockets, paced by
    /// the wall clock: a short scenario (~1.2 s) in which the victim is
    /// crash-muted and the survivor must detect it.
    #[test]
    fn wall_clock_udp_runner_detects_a_muted_peer() {
        let scenario = OnlineScenario {
            n: 2,
            period: ms(40),
            sample_every: ms(10),
            duration: ms(1_600),
            schedule: FaultSchedule::new().at(ms(500), Fault::Crash(p(1))),
            ..OnlineScenario::default()
        };
        let clock = SystemClock::new();
        let transports = loopback_cluster(2).expect("bind loopback");
        let (nodes, injector) = faulty_cluster(transports, 0.0, 0, clock.clone());
        let mut runner =
            OnlineRunner::over(FixedTimeout::new(ms(150)), scenario, nodes, injector, clock);
        runner.run_to_end();
        assert!(runner.is_done());
        let r = runner.report(p(0), p(1)).unwrap();
        // Wall-clock tolerant: typical T_D is ~160 ms, the bound only
        // guards against the detection being missed entirely.
        let td = r.detection_time.expect("mute detected over real sockets");
        assert!(td.as_millis() < 1_000, "T_D = {td} (report {r:?})");
    }

    /// Heal-merge reconciliation: the same partition/heal schedule
    /// split-brains forever under the default service but reconverges —
    /// with finite, reported latency — once merging is on.
    #[test]
    fn heal_merge_reconverges_where_the_default_splits_forever() {
        let mut minority = ProcessSet::empty();
        minority.insert(p(2));
        minority.insert(p(3));
        let scenario = OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(30_000),
            sample_every: ms(1),
            schedule: FaultSchedule::new()
                .at(ms(5_000), Fault::Partition(minority))
                .at(ms(10_000), Fault::Heal),
            ..OnlineScenario::default()
        };
        let chen = || ChenEstimator::new(ms(150), 16, ms(600));

        let split = run_membership_churn(chen(), &scenario);
        assert_eq!(
            split.time_to_reconverge,
            vec![None],
            "split-brain is forever"
        );
        assert!(split.split_brain_duration >= ms(15_000), "{split:?}");

        let merged = run_membership_churn(
            chen(),
            &OnlineScenario {
                heal_merge: true,
                ..scenario
            },
        );
        let ttr = merged.time_to_reconverge[0].expect("fleet reconverged after the heal");
        assert!(ttr < ms(5_000), "time to reconverge {ttr}");
        // Split-brain covers (roughly) the partition plus the merge
        // window — far less than the merge-less forever.
        assert!(merged.split_brain_duration < split.split_brain_duration);
        // The minority was still excluded by fiat *during* the cut.
        assert!(
            !merged.false_exclusions.is_empty(),
            "{:?}",
            merged.false_exclusions
        );
    }

    #[test]
    fn membership_churn_excludes_crashed_members_with_low_latency() {
        let scenario = OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(30_000),
            sample_every: ms(1),
            schedule: FaultSchedule::new().at(ms(5_000), Fault::Crash(p(2))),
            ..OnlineScenario::default()
        };
        let report = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);
        let latency = report.exclusion_latency[2].expect("crashed member excluded");
        assert!(latency.as_millis() < 5_000, "latency {latency}");
        assert!(report.false_exclusions.is_empty());
        assert!(report.view_changes >= 1);
    }

    #[test]
    fn membership_partition_forces_by_fiat_exclusions() {
        // A minority side {3} is cut off long enough to be excluded; it
        // never crashed, so the watcher must report a false exclusion —
        // the paper's by-fiat accuracy made measurable.
        let scenario = OnlineScenario {
            n: 4,
            period: ms(50),
            duration: ms(30_000),
            sample_every: ms(1),
            schedule: FaultSchedule::new()
                .at(ms(5_000), Fault::Partition(ProcessSet::singleton(p(3))))
                .at(ms(15_000), Fault::Heal),
            ..OnlineScenario::default()
        };
        let report = run_membership_churn(ChenEstimator::new(ms(150), 16, ms(600)), &scenario);
        assert!(
            report.false_exclusions.contains(p(3)),
            "{:?}",
            report.false_exclusions
        );
        assert!(report.exclusion_latency[3].is_none(), "p3 never crashed");
    }

    #[test]
    fn watcher_counts_view_changes_and_ignores_recovered_crashes() {
        let mut w = MembershipWatcher::new(3);
        w.note_crash(p(2), ms(100));
        w.note_recover(p(2));
        let mut v1 = ProcessSet::full(3);
        v1.remove(p(2));
        w.observe(ms(200), vec![(p(0), 1, v1), (p(1), 1, v1)]);
        let r = w.report();
        // p2 crashed (then recovered) before the exclusion: accurate, not
        // false; latency measured from the first crash.
        assert!(r.false_exclusions.is_empty());
        assert_eq!(r.exclusion_latency[2], Some(ms(100)));
        assert_eq!(r.view_changes, 2);
    }
}
