//! A group membership service that **emulates a Perfect failure
//! detector** — the paper's §1.3 observation made executable.
//!
//! > "developers of reliable distributed systems have been considering,
//! > as a basic building block, a group membership service, which
//! > precisely aims at emulating a Perfect failure detector, i.e., when a
//! > process is suspected, i.e., timed-out, it is excluded from the
//! > group: every suspicion hence turns out to be accurate."
//!
//! Design: the lowest-index member of the current view is its
//! *coordinator*. Every member heartbeats every other member; when the
//! coordinator's local (unreliable, `◇P`-grade) detector suspects a
//! member, it installs the next view excluding every current suspect and
//! announces it. Members adopt any higher-numbered view. A process that
//! learns it has been excluded **halts** — this is the enforcement that
//! converts possibly-wrong suspicion into by-fiat accuracy: the emulated
//! `P` output of a node is exactly the complement of its current view.
//!
//! That default deliberately **split-brains under partitions**: each
//! side excludes the other, forever. The opt-in
//! [`MembershipNode::with_heal_merge`] mode trades the by-fiat guarantee
//! for *partition-heal reconciliation* — healed sides rejoin each other
//! and the fleet reconverges onto a single view (measured by experiment
//! E12 via [`crate::online::MembershipWatcher`]).
//!
//! ## Heartbeat coalescing
//!
//! In the announcing steady state (any installed view past the initial
//! one) the acting coordinator owes every member two frames per period:
//! its heartbeat and the view re-announcement. By default those are
//! **coalesced** into one [`Batch`](WireMsg::Batch) datagram per
//! destination, halving the coordinator's send rate without changing
//! what any receiver observes (frames inside a batch are processed in
//! order at the same delivery instant). [`MembershipNode::with_batching`]
//! turns the coalescing off, reverting to one datagram per frame — the
//! differential tests pin that both modes install the same views.

use crate::clock::{Clock, Nanos, VirtualClock};
use crate::codec::{
    decode_borrowed, encode, encode_batch_into, encode_into, members_to_set, set_to_members,
    Heartbeat, ViewChange, WireMsg, WireView,
};
use crate::detector::HeartbeatDetector;
use crate::estimator::ArrivalEstimator;
use crate::transport::{Datagram, InMemoryNetwork, NetworkConfig, Transport};
use bytes::{Bytes, BytesMut};
use rfd_core::{FailurePattern, History, ProcessId, ProcessSet, Time};

/// A membership view: numbered, with a member set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct View {
    /// Monotone view identifier.
    pub id: u64,
    /// Current members.
    pub members: ProcessSet,
}

impl View {
    /// The coordinator: the lowest-index member.
    #[must_use]
    pub fn coordinator(&self) -> Option<ProcessId> {
        self.members.min()
    }
}

/// Reclaims a recycled send buffer: succeeds allocation-free when the
/// transport has dropped every clone of the previous payload, falls back
/// to a fresh buffer otherwise.
fn reclaim(slot: &mut Option<Bytes>) -> BytesMut {
    slot.take()
        .and_then(|b| b.try_into_mut().ok())
        .unwrap_or_default()
}

/// One membership node.
#[derive(Debug)]
pub struct MembershipNode<E, T, C> {
    n: usize,
    view: View,
    detector: HeartbeatDetector<E>,
    transport: T,
    clock: C,
    period: Nanos,
    next_beat: Nanos,
    seq: u64,
    halted: bool,
    views_installed: u64,
    heal_merge: bool,
    batching: bool,
    /// Reusable receive buffer for [`Transport::recv_batch`].
    rx_buf: Vec<Datagram>,
    /// Recycled send payloads (previous period's buffers, reclaimed via
    /// `try_into_mut` once the transport has let go of its clones).
    hb_scratch: Option<Bytes>,
    vc_scratch: Option<Bytes>,
    batch_buf: Option<Bytes>,
    /// Reusable frame list for [`encode_batch_into`].
    batch_scratch: Vec<WireMsg>,
    /// Datagrams/frames dropped because they failed to decode or
    /// carried an out-of-range sender index.
    malformed_frames: u64,
}

impl<E, T, C> MembershipNode<E, T, C>
where
    E: ArrivalEstimator + Clone,
    T: Transport,
    C: Clock,
{
    /// Creates a member with the initial full view.
    #[must_use]
    pub fn new(n: usize, prototype: E, transport: T, clock: C, period: Nanos) -> Self {
        let me = transport.me();
        Self {
            n,
            view: View {
                id: 0,
                members: ProcessSet::full(n),
            },
            detector: HeartbeatDetector::new(me, n, prototype),
            transport,
            clock,
            period,
            next_beat: Nanos::ZERO,
            seq: 0,
            halted: false,
            views_installed: 0,
            heal_merge: false,
            batching: true,
            rx_buf: Vec::new(),
            hb_scratch: None,
            vc_scratch: None,
            batch_buf: None,
            batch_scratch: Vec::new(),
            malformed_frames: 0,
        }
    }

    /// Datagrams/frames dropped as malformed: undecodable bytes, or a
    /// heartbeat whose claimed sender index falls outside the fleet.
    /// Frames of other protocol layers multiplexed over the same socket
    /// are *not* counted.
    #[must_use]
    pub fn malformed_frames(&self) -> u64 {
        self.malformed_frames
    }

    /// Enables **partition-heal view reconciliation** (builder style).
    ///
    /// The classic §1.3 service split-brains by design: each side of a
    /// partition excludes the other, an excluded node halts when it
    /// learns of its exclusion, and the two surviving views never meet
    /// again. In heal-merge mode the node instead:
    ///
    /// * heartbeats **all** `n` processes (not just its view) and accepts
    ///   heartbeats from all of them, so liveness evidence keeps flowing
    ///   across a healed cut;
    /// * never halts on exclusion — it ignores views that omit it and
    ///   keeps announcing its own, waiting to be merged back;
    /// * as acting coordinator, **rejoins** any non-member with fresh
    ///   heartbeat evidence (heard at least once, not currently
    ///   suspected) by installing a higher view containing it;
    /// * totally orders views by `(id, member bitmap)`, so concurrent
    ///   merge proposals from the two healed sides cannot deadlock — the
    ///   fleet adopts the unique maximum and reconverges.
    ///
    /// Detection of a genuine crash is unaffected: a crashed process
    /// produces no fresh heartbeats, stays suspected, and is never
    /// rejoined.
    #[must_use]
    pub fn with_heal_merge(mut self) -> Self {
        self.heal_merge = true;
        self
    }

    /// Sets heartbeat/view-change coalescing (builder style; the default
    /// is **on**). Off, the node sends one datagram per frame exactly as
    /// the pre-batching runtime did. Coalescing changes only the datagram
    /// count, never what a receiver observes.
    #[must_use]
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// The current view.
    #[must_use]
    pub fn view(&self) -> View {
        self.view
    }

    /// The emulated Perfect detector output: everyone outside the view.
    #[must_use]
    pub fn emulated_suspects(&self) -> ProcessSet {
        self.view.members.complement_within(self.n)
    }

    /// Whether this node halted after being excluded.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of view changes this node installed.
    #[must_use]
    pub fn views_installed(&self) -> u64 {
        self.views_installed
    }

    /// The node's transport handle — layers stacked on top of the
    /// membership (the decision service) send their own traffic through
    /// the same socket.
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The estimator-derived **trust horizon**: the latest deadline any
    /// monitored view member's arrival estimator currently holds — the
    /// instant by which every trusted peer will either have produced a
    /// fresh heartbeat or have become a suspect (and hence been
    /// excluded). `None` until the first heartbeat arrives.
    ///
    /// The decision service derives its retransmission timeout from this
    /// horizon: waiting past it guarantees that a slot stalled on a
    /// *crashed* peer is resolved by exclusion-driven round advancement
    /// first, so retransmission only ever fires against message loss.
    #[must_use]
    pub fn trust_horizon(&self) -> Option<Nanos> {
        let mut horizon: Option<Nanos> = None;
        for peer in self.view.members {
            if peer == self.transport.me() {
                continue;
            }
            if let Some(d) = self.detector.monitor(peer).and_then(E::deadline) {
                horizon = Some(horizon.map_or(d, |h| h.max(d)));
            }
        }
        horizon
    }

    /// Total order on views used by heal-merge adoption: primary key the
    /// monotone id, tiebreaker the member bitmap. Concurrent merge
    /// proposals from two healed sides can carry the same id; comparing
    /// bitmaps makes every node pick the same winner, so the fleet
    /// converges instead of holding equal-id, different-member views.
    fn rank(view: View) -> (u64, u128) {
        (view.id, set_to_members(view.members))
    }

    fn adopt(&mut self, view: View) {
        if self.heal_merge {
            // Reconciliation mode: never halt. A view that omits this
            // (live) node is ignored — the node keeps its own view and
            // keeps heartbeating until a coordinator merges it back in.
            if view.members.contains(self.transport.me())
                && Self::rank(view) > Self::rank(self.view)
            {
                self.view = view;
                self.views_installed += 1;
            }
        } else if view.id > self.view.id {
            self.view = view;
            self.views_installed += 1;
            if !view.members.contains(self.transport.me()) {
                // Excluded: enforce the suspicion — halt.
                self.halted = true;
            }
        }
    }

    /// One iteration of the membership loop: drain the transport, then
    /// run the periodic duties ([`MembershipNode::tick`]).
    pub fn poll(&mut self) {
        if self.halted {
            return;
        }
        let mut rx = std::mem::take(&mut self.rx_buf);
        self.transport.recv_batch(&mut rx);
        for dg in rx.drain(..) {
            if self.halted {
                // A halted node never polls again, so dropping the rest
                // of the drain matches the old leave-it-queued behavior.
                break;
            }
            match decode_borrowed(&dg.payload) {
                Ok(view) => self.on_wire_view(&view, dg.delivered_at),
                Err(_) => self.malformed_frames += 1,
            }
        }
        self.rx_buf = rx;
        if self.halted {
            return;
        }
        self.tick();
    }

    fn on_heartbeat_frame(&mut self, hb: &Heartbeat, delivered_at: Nanos) {
        // A corrupt or foreign datagram can carry any sender index;
        // the detector has no monitor beyond `n` (and `ProcessId::new`
        // would panic at 128), so out-of-range senders are dropped and
        // counted instead.
        let Some(from) = ProcessId::try_new(usize::from(hb.sender), self.n) else {
            self.malformed_frames += 1;
            return;
        };
        // Heal-merge mode listens to everyone: a heartbeat
        // from outside the view is exactly the liveness
        // evidence a rejoin needs.
        if self.heal_merge || self.view.members.contains(from) {
            self.detector.on_heartbeat(from, delivered_at);
        }
    }

    fn on_view_change_frame(&mut self, vc: &ViewChange) {
        self.adopt(View {
            id: vc.view_id,
            members: members_to_set(vc.members, self.n),
        });
    }

    /// Feeds one borrowed wire frame into the membership state machine
    /// (heartbeats, view changes and batches of them; other protocol
    /// layers' frames are ignored). A caller that multiplexes several
    /// protocols over one transport — e.g.
    /// [`crate::service::DecisionService`] — drains the socket itself,
    /// routes membership traffic here, and then calls
    /// [`MembershipNode::tick`] once per loop iteration.
    pub fn on_wire_view(&mut self, msg: &WireView<'_>, delivered_at: Nanos) {
        if self.halted {
            return;
        }
        match msg {
            WireView::Heartbeat(hb) => self.on_heartbeat_frame(hb, delivered_at),
            WireView::ViewChange(vc) => self.on_view_change_frame(vc),
            WireView::Batch(batch) => {
                for sub in batch.iter() {
                    self.on_wire_view(&sub, delivered_at);
                    if self.halted {
                        return;
                    }
                }
            }
            _ => {}
        }
    }

    /// Owned-message twin of [`MembershipNode::on_wire_view`], kept for
    /// callers that hold a decoded [`WireMsg`].
    pub fn on_wire(&mut self, msg: &WireMsg, delivered_at: Nanos) {
        if self.halted {
            return;
        }
        match msg {
            WireMsg::Heartbeat(hb) => self.on_heartbeat_frame(hb, delivered_at),
            WireMsg::ViewChange(vc) => self.on_view_change_frame(vc),
            WireMsg::Batch(frames) => {
                for sub in frames {
                    self.on_wire(sub, delivered_at);
                    if self.halted {
                        return;
                    }
                }
            }
            _ => {}
        }
    }

    /// Sends `payload` to every process except this one, restricted to
    /// `targets`.
    fn fan_out(&self, targets: ProcessSet, payload: &Bytes) {
        for to in targets {
            if to != self.transport.me() {
                self.transport.send(to, payload.clone());
            }
        }
    }

    /// The periodic (send-side) half of the membership loop: heartbeat
    /// emission, view re-announcement, and coordinator exclusion/rejoin
    /// duty. [`MembershipNode::poll`] calls this after draining the
    /// transport.
    pub fn tick(&mut self) {
        if self.halted {
            return;
        }
        let now = self.clock.now();
        // Coordinator duty: exclude suspected members. The acting
        // coordinator is the lowest-index member *this node does not
        // suspect*; when the nominal coordinator crashes, duty fails
        // over to the next survivor.
        let suspects_now = self.detector.suspects(now);
        let acting_coordinator = self
            .view
            .members
            .difference(suspects_now)
            .min()
            .unwrap_or(self.transport.me());
        // Heartbeat the current members — or, in heal-merge mode, every
        // process: cross-cut liveness evidence is what lets the healed
        // sides find each other again.
        if now >= self.next_beat {
            #[allow(clippy::cast_possible_truncation)]
            let hb = WireMsg::Heartbeat(Heartbeat {
                sender: self.transport.me().index() as u16,
                seq: self.seq,
                sent_at: now,
            });
            self.seq += 1;
            let hb_targets = if self.heal_merge {
                ProcessSet::full(self.n)
            } else {
                self.view.members
            };
            // Re-announce the installed view each period: announcements
            // travel over the same lossy channel as everything else, and a
            // member that misses a one-shot announcement would otherwise
            // stay on the stale view forever (breaking the emulated
            // detector's strong completeness).
            let announcing = acting_coordinator == self.transport.me() && self.view.id > 0;
            if announcing {
                let vc = WireMsg::ViewChange(ViewChange {
                    view_id: self.view.id,
                    members: set_to_members(self.view.members),
                });
                if self.batching {
                    // Coalesced: one [heartbeat, view change] batch per
                    // member, the view change alone to non-members — one
                    // datagram per destination either way.
                    let mut vc_buf = reclaim(&mut self.vc_scratch);
                    encode_into(&vc, &mut vc_buf);
                    let vc_only = vc_buf.freeze();
                    let mut frames = std::mem::take(&mut self.batch_scratch);
                    frames.clear();
                    frames.push(hb);
                    frames.push(vc);
                    let mut both_buf = reclaim(&mut self.batch_buf);
                    encode_batch_into(&frames, &mut both_buf);
                    let both = both_buf.freeze();
                    self.batch_scratch = frames;
                    for to in ProcessSet::full(self.n) {
                        if to == self.transport.me() {
                            continue;
                        }
                        if hb_targets.contains(to) {
                            self.transport.send(to, both.clone());
                        } else {
                            self.transport.send(to, vc_only.clone());
                        }
                    }
                    self.batch_buf = Some(both);
                    self.vc_scratch = Some(vc_only);
                } else {
                    // Singleton frames: heartbeats to the members first,
                    // then the announcement to everyone — the exact
                    // pre-coalescing send order.
                    let mut hb_buf = reclaim(&mut self.hb_scratch);
                    encode_into(&hb, &mut hb_buf);
                    let hb_payload = hb_buf.freeze();
                    self.fan_out(hb_targets, &hb_payload);
                    self.hb_scratch = Some(hb_payload);
                    let mut vc_buf = reclaim(&mut self.vc_scratch);
                    encode_into(&vc, &mut vc_buf);
                    let vc_payload = vc_buf.freeze();
                    self.fan_out(ProcessSet::full(self.n), &vc_payload);
                    self.vc_scratch = Some(vc_payload);
                }
            } else {
                let mut hb_buf = reclaim(&mut self.hb_scratch);
                encode_into(&hb, &mut hb_buf);
                let hb_payload = hb_buf.freeze();
                self.fan_out(hb_targets, &hb_payload);
                self.hb_scratch = Some(hb_payload);
            }
            self.next_beat = now.saturating_add(self.period);
        }
        if acting_coordinator == self.transport.me() {
            let suspected = suspects_now.intersection(self.view.members);
            // Heal-merge duty: re-admit any non-member with fresh
            // heartbeat evidence — heard at least once (the estimator has
            // a deadline) and not currently suspected. A crashed process
            // fails both forever, so only healed/recovered peers rejoin.
            let rejoiners = if self.heal_merge {
                self.view
                    .members
                    .complement_within(self.n)
                    .iter()
                    .filter(|p| {
                        self.detector
                            .monitor(*p)
                            .is_some_and(|est| est.deadline().is_some() && !est.is_suspect(now))
                    })
                    .collect()
            } else {
                ProcessSet::empty()
            };
            let new_members = self.view.members.difference(suspected).union(rejoiners);
            if new_members != self.view.members {
                let new_view = View {
                    id: self.view.id + 1,
                    members: new_members,
                };
                // Cold path (at most once per view change): a plain owned
                // encode is fine here.
                let payload = encode(&WireMsg::ViewChange(ViewChange {
                    view_id: new_view.id,
                    members: set_to_members(new_view.members),
                }));
                // Announce to everyone (including the excluded, so they
                // halt — or, under heal-merge, eventually rejoin).
                self.fan_out(ProcessSet::full(self.n), &payload);
                self.adopt(new_view);
            }
        }
    }
}

/// Outcome of a simulated membership scenario.
#[derive(Debug)]
pub struct MembershipOutcome {
    /// The emulated `P` history (1 tick = 1 ms of virtual time).
    pub emulated: History<ProcessSet>,
    /// The ground-truth pattern in the same time unit.
    pub pattern: FailurePattern,
    /// Correct processes excluded although they had not crashed (count
    /// of distinct false exclusions across the final views).
    pub false_exclusions: usize,
    /// Total view changes installed across nodes.
    pub view_changes: u64,
    /// Datagrams sent on the network.
    pub messages: u64,
    /// Virtual duration covered, in ms.
    pub duration_ms: u64,
}

/// Scenario parameters for [`run_membership`].
#[derive(Clone, Debug)]
pub struct MembershipScenario {
    /// Number of processes.
    pub n: usize,
    /// Crash schedule.
    pub crashes: Vec<(ProcessId, Nanos)>,
    /// Heartbeat period.
    pub period: Nanos,
    /// Network loss probability.
    pub loss: f64,
    /// One-way delay bounds.
    pub delay: (Nanos, Nanos),
    /// Total virtual duration.
    pub duration: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MembershipScenario {
    fn default() -> Self {
        Self {
            n: 4,
            crashes: Vec::new(),
            period: Nanos::from_millis(50),
            loss: 0.0,
            delay: (Nanos::from_millis(1), Nanos::from_millis(5)),
            duration: Nanos::from_millis(30_000),
            seed: 0,
        }
    }
}

/// Runs a full membership scenario over the virtual network and returns
/// the emulated history plus accounting.
pub fn run_membership<E: ArrivalEstimator + Clone>(
    prototype: E,
    scenario: &MembershipScenario,
) -> MembershipOutcome {
    let n = scenario.n;
    let clock = VirtualClock::new();
    let config = NetworkConfig::reliable(scenario.delay.0, scenario.delay.1)
        .with_loss(scenario.loss)
        .with_seed(scenario.seed);
    let net = InMemoryNetwork::new(n, config, clock.clone());
    let mut nodes: Vec<_> = ProcessSet::full(n)
        .iter()
        .map(|pid| {
            MembershipNode::new(
                n,
                prototype.clone(),
                net.endpoint(pid),
                clock.clone(),
                scenario.period,
            )
        })
        .collect();
    let mut pattern = FailurePattern::new(n);
    for (pid, t) in &scenario.crashes {
        pattern.set_crash(*pid, Time::new(t.as_millis()));
    }
    let mut emulated: History<ProcessSet> = History::new(n, ProcessSet::empty());
    let step = Nanos::from_millis(1);
    let mut crashed = ProcessSet::empty();
    while clock.now() < scenario.duration {
        let now = clock.now();
        for (pid, t) in &scenario.crashes {
            if now >= *t && crashed.insert(*pid) {
                net.take_down(*pid);
            }
        }
        for (pid, node) in ProcessSet::full(n).iter().zip(nodes.iter_mut()) {
            if !crashed.contains(pid) {
                node.poll();
            }
        }
        let tick = Time::new(now.as_millis());
        for (pid, node) in ProcessSet::full(n).iter().zip(nodes.iter()) {
            emulated.set_from(pid, tick, node.emulated_suspects());
        }
        clock.advance(step);
    }
    // False exclusions: correct processes missing from any surviving
    // correct node's final view.
    let correct = pattern.correct();
    let mut falsely_excluded = ProcessSet::empty();
    for pid in correct {
        for other in correct {
            let excluded_by_other = nodes
                .get(other.index())
                .is_some_and(|node| !node.view().members.contains(pid));
            if excluded_by_other {
                falsely_excluded.insert(pid);
            }
        }
    }
    MembershipOutcome {
        emulated,
        pattern,
        false_exclusions: falsely_excluded.len(),
        view_changes: nodes.iter().map(MembershipNode::views_installed).sum(),
        messages: net.stats().0,
        duration_ms: scenario.duration.as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::ChenEstimator;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn chen() -> ChenEstimator {
        ChenEstimator::new(ms(150), 16, ms(600))
    }

    #[test]
    fn stable_group_keeps_the_full_view() {
        let outcome = run_membership(chen(), &MembershipScenario::default());
        assert_eq!(outcome.view_changes, 0);
        assert_eq!(outcome.false_exclusions, 0);
    }

    #[test]
    fn crashed_member_is_excluded_everywhere() {
        let scenario = MembershipScenario {
            crashes: vec![(ProcessId::new(2), ms(5_000))],
            ..MembershipScenario::default()
        };
        let outcome = run_membership(chen(), &scenario);
        assert!(outcome.view_changes >= 1);
        assert_eq!(outcome.false_exclusions, 0);
        // The emulated history is a Perfect history for the ms-scale
        // pattern (margin generous vs detection latency).
        let params = rfd_core::CheckParams::with_margin(Time::new(outcome.duration_ms), 5_000);
        let report = rfd_core::class_report(&outcome.pattern, &outcome.emulated, &params);
        assert!(
            report.is_in(rfd_core::ClassId::Perfect),
            "completeness {:?} accuracy {:?}",
            report.strong_completeness,
            report.strong_accuracy
        );
    }

    #[test]
    fn coordinator_crash_promotes_the_next_member() {
        let scenario = MembershipScenario {
            crashes: vec![(ProcessId::new(0), ms(5_000))],
            duration: ms(30_000),
            ..MembershipScenario::default()
        };
        let outcome = run_membership(chen(), &scenario);
        assert_eq!(outcome.false_exclusions, 0);
        // p0 (the initial coordinator) must be excluded: the new
        // coordinator p1 installed a view without it.
        let final_suspects = *outcome
            .emulated
            .value(ProcessId::new(1), Time::new(outcome.duration_ms - 1));
        assert!(final_suspects.contains(ProcessId::new(0)));
    }

    /// The recover-path contrast between the two policies. Under the
    /// default §1.3 enforcement a member excluded while down never gets
    /// back: it either halts on learning of its exclusion or — having
    /// already suspected everyone during its outage — lingers in a stale
    /// view of its own (equal view ids are never adopted), so the
    /// authoritative group stays split from it either way. Under
    /// heal-merge it is rejoined and the fleet reconverges.
    #[test]
    fn heal_merge_rejoins_a_recovered_member_instead_of_halting() {
        for merge in [false, true] {
            let n = 3;
            let clock = crate::clock::VirtualClock::new();
            let net = InMemoryNetwork::new(n, NetworkConfig::reliable(ms(1), ms(4)), clock.clone());
            let mut nodes: Vec<_> = (0..n)
                .map(|ix| {
                    let node = MembershipNode::new(
                        n,
                        ChenEstimator::new(ms(150), 16, ms(600)),
                        net.endpoint(ProcessId::new(ix)),
                        clock.clone(),
                        ms(50),
                    );
                    if merge {
                        node.with_heal_merge()
                    } else {
                        node
                    }
                })
                .collect();
            let victim = ProcessId::new(2);
            let mut down = false;
            while clock.now() < ms(20_000) {
                let now = clock.now();
                if !down && now >= ms(5_000) {
                    down = true;
                    net.take_down(victim);
                }
                if down && now >= ms(10_000) {
                    down = false;
                    net.bring_up(victim);
                }
                for (ix, node) in nodes.iter_mut().enumerate() {
                    if !(down && ix == victim.index()) {
                        node.poll();
                    }
                }
                clock.advance(ms(1));
            }
            // In both modes the outage was excluded by the coordinator.
            assert!(nodes[0].views_installed() >= 1, "merge={merge}");
            if merge {
                assert!(!nodes[2].is_halted(), "heal-merge never halts");
                for node in &nodes {
                    assert_eq!(
                        node.view().members,
                        ProcessSet::full(n),
                        "the recovered member was merged back (merge={merge})"
                    );
                }
            } else {
                // Exclusion is forever: the survivors' authoritative
                // view never re-admits the recovered member, and the
                // member either halted or split off into a stale view.
                assert!(!nodes[0].view().members.contains(victim));
                assert!(
                    nodes[2].is_halted() || nodes[2].view() != nodes[0].view(),
                    "default mode must not reconverge: {:?} vs {:?}",
                    nodes[2].view(),
                    nodes[0].view()
                );
            }
        }
    }

    #[test]
    fn excluded_node_halts_making_suspicion_accurate_by_fiat() {
        // Under heavy loss with an aggressive timeout, a correct process
        // may be excluded — the membership enforces the suspicion by
        // halting it. This is precisely the §1.3 mechanism.
        let scenario = MembershipScenario {
            loss: 0.45,
            period: ms(100),
            duration: ms(40_000),
            seed: 11,
            ..MembershipScenario::default()
        };
        let aggressive = crate::estimator::FixedTimeout::new(ms(220));
        let outcome = run_membership(aggressive, &scenario);
        // Whether or not a false exclusion happened under this seed, the
        // run must stay consistent: every view change monotone, and the
        // outcome accountable.
        assert!(outcome.view_changes < 100);
        if outcome.false_exclusions > 0 {
            // By-fiat accuracy: the falsely excluded node halted, so the
            // remaining group's view is still coherent.
            assert!(outcome.false_exclusions <= scenario.n);
        }
    }

    /// Runs one exclusion scenario with coalescing on vs off and asserts
    /// identical membership observables — the reliable fixed-delay
    /// network never consults its RNG, so the two runs are bit-identical
    /// except for the datagram count (the batch run sends fewer).
    #[test]
    fn batched_and_singleton_announcing_install_the_same_views() {
        let run = |batching: bool| {
            let n = 4;
            let clock = crate::clock::VirtualClock::new();
            let net = InMemoryNetwork::new(n, NetworkConfig::reliable(ms(1), ms(1)), clock.clone());
            let mut nodes: Vec<_> = (0..n)
                .map(|ix| {
                    MembershipNode::new(
                        n,
                        chen(),
                        net.endpoint(ProcessId::new(ix)),
                        clock.clone(),
                        ms(50),
                    )
                    .with_batching(batching)
                })
                .collect();
            let victim = ProcessId::new(3);
            let mut down = false;
            while clock.now() < ms(15_000) {
                if !down && clock.now() >= ms(5_000) {
                    down = true;
                    net.take_down(victim);
                }
                for (ix, node) in nodes.iter_mut().enumerate() {
                    if !(down && ix == victim.index()) {
                        node.poll();
                    }
                }
                clock.advance(ms(1));
            }
            let views: Vec<_> = nodes.iter().map(super::MembershipNode::view).collect();
            let installed: Vec<_> = nodes
                .iter()
                .map(super::MembershipNode::views_installed)
                .collect();
            (views, installed, net.stats().0)
        };
        let (views_on, installed_on, messages_on) = run(true);
        let (views_off, installed_off, messages_off) = run(false);
        assert_eq!(views_on, views_off);
        assert_eq!(installed_on, installed_off);
        assert!(
            messages_on < messages_off,
            "coalescing must shrink the datagram count: {messages_on} vs {messages_off}"
        );
    }
}
