//! A deterministic in-memory network driven by a virtual clock.

use super::{ChurnableTransport, Datagram, Transport};
use crate::clock::{Clock, Nanos, VirtualClock};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfd_core::{ProcessId, ProcessSet};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// The datagram loss process.
#[derive(Clone, Debug, PartialEq)]
pub enum LossModel {
    /// Independent per-datagram loss with the given probability.
    Bernoulli(f64),
    /// Gilbert–Elliott two-state burst model: the channel alternates
    /// between a *good* state (lossless) and a *bad* state, transitioning
    /// per datagram; in the bad state each datagram is lost with
    /// `loss_in_burst`. Burst losses are what actually separate adaptive
    /// estimators in practice (E7's ablation).
    GilbertElliott {
        /// Probability of entering the bad state per good-state datagram.
        p_enter: f64,
        /// Probability of leaving the bad state per bad-state datagram.
        p_exit: f64,
        /// Loss probability while in the bad state.
        loss_in_burst: f64,
    },
}

impl LossModel {
    fn validate(&self) {
        match self {
            LossModel::Bernoulli(p) => {
                assert!((0.0..=1.0).contains(p), "loss must be a probability");
            }
            LossModel::GilbertElliott {
                p_enter,
                p_exit,
                loss_in_burst,
            } => {
                for p in [p_enter, p_exit, loss_in_burst] {
                    assert!((0.0..=1.0).contains(p), "probabilities must be in [0,1]");
                }
            }
        }
    }
}

/// Loss/delay parameters of the virtual network.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// The loss process.
    pub loss: LossModel,
    /// Minimum one-way delay.
    pub min_delay: Nanos,
    /// Maximum one-way delay.
    pub max_delay: Nanos,
    /// RNG seed (loss and delay draws).
    pub seed: u64,
}

impl NetworkConfig {
    /// A lossless network with the given delay range.
    #[must_use]
    pub fn reliable(min_delay: Nanos, max_delay: Nanos) -> Self {
        Self {
            loss: LossModel::Bernoulli(0.0),
            min_delay,
            max_delay,
            seed: 0,
        }
    }

    /// Sets independent per-datagram loss (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        let model = LossModel::Bernoulli(loss);
        model.validate();
        self.loss = model;
        self
    }

    /// Sets a Gilbert–Elliott burst-loss process (builder style).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_burst_loss(mut self, p_enter: f64, p_exit: f64, loss_in_burst: f64) -> Self {
        let model = LossModel::GilbertElliott {
            p_enter,
            p_exit,
            loss_in_burst,
        };
        model.validate();
        self.loss = model;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::reliable(Nanos::from_millis(1), Nanos::from_millis(5))
    }
}

#[derive(Debug)]
struct InFlight {
    due: Nanos,
    seq: u64,
    datagram: Datagram,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

#[derive(Debug)]
struct NetInner {
    config: NetworkConfig,
    rng: StdRng,
    /// Gilbert–Elliott channel state: `true` = bad (burst) state.
    in_burst: bool,
    /// In-order traffic: datagrams whose due time is `>=` every earlier
    /// queued one (always true under a fixed delay and a monotone
    /// clock). Kept sorted by construction, so delivery is an O(1)
    /// `pop_front` instead of a heap sift over the whole backlog.
    fifo: VecDeque<InFlight>,
    /// Out-of-order traffic (randomized delays): the general case,
    /// merged with `fifo` by `(due, seq)` at delivery time.
    in_flight: BinaryHeap<InFlight>,
    inboxes: Vec<VecDeque<Datagram>>,
    /// Nodes taken down (crashed): they neither send nor receive.
    down: ProcessSet,
    /// Active network partition: datagrams crossing the boundary between
    /// this set and its complement are dropped (counted as lost).
    partition: Option<ProcessSet>,
    seq: u64,
    sent: u64,
    lost: u64,
    delivered: u64,
}

/// A deterministic in-memory datagram network.
///
/// All endpoints share the [`VirtualClock`]; messages become receivable
/// once the clock passes their delivery time.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use rfd_core::ProcessId;
/// use rfd_net::clock::{Nanos, VirtualClock};
/// use rfd_net::transport::{InMemoryNetwork, NetworkConfig, Transport};
///
/// let clock = VirtualClock::new();
/// let net = InMemoryNetwork::new(2, NetworkConfig::default(), clock.clone());
/// let a = net.endpoint(ProcessId::new(0));
/// let b = net.endpoint(ProcessId::new(1));
/// a.send(ProcessId::new(1), Bytes::from_static(b"ping"));
/// clock.advance(Nanos::from_millis(10));
/// let dg = b.recv().expect("delivered after the delay");
/// assert_eq!(&dg.payload[..], b"ping");
/// ```
#[derive(Clone, Debug)]
pub struct InMemoryNetwork {
    inner: Arc<Mutex<NetInner>>,
    clock: VirtualClock,
    n: usize,
}

impl InMemoryNetwork {
    /// Creates a network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, config: NetworkConfig, clock: VirtualClock) -> Self {
        assert!(n > 0, "need at least one node");
        let seed = config.seed;
        Self {
            inner: Arc::new(Mutex::new(NetInner {
                config,
                rng: StdRng::seed_from_u64(seed),
                in_burst: false,
                fifo: VecDeque::new(),
                in_flight: BinaryHeap::new(),
                inboxes: (0..n).map(|_| VecDeque::new()).collect(),
                down: ProcessSet::empty(),
                partition: None,
                seq: 0,
                sent: 0,
                lost: 0,
                delivered: 0,
            })),
            clock,
            n,
        }
    }

    /// A handle for node `me`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    #[must_use]
    pub fn endpoint(&self, me: ProcessId) -> Endpoint {
        assert!(me.index() < self.n, "{me} out of range (n={})", self.n);
        Endpoint {
            net: self.clone(),
            me,
        }
    }

    /// Takes a node down (crash): pending and future traffic to and from
    /// it is dropped.
    pub fn take_down(&self, node: ProcessId) {
        self.inner.lock().down.insert(node);
    }

    /// Brings a downed node back up (churn): its traffic flows again.
    /// Datagrams addressed to it that came due while it was down stay
    /// dropped.
    pub fn bring_up(&self, node: ProcessId) {
        self.inner.lock().down.remove(node);
    }

    /// Whether a node is down.
    #[must_use]
    pub fn is_down(&self, node: ProcessId) -> bool {
        self.inner.lock().down.contains(node)
    }

    /// Installs a network partition: datagrams between `side` and its
    /// complement are dropped (and counted as lost) until
    /// [`InMemoryNetwork::heal_partition`]. Traffic within either side is
    /// unaffected. Replaces any previous partition.
    pub fn set_partition(&self, side: ProcessSet) {
        self.inner.lock().partition = Some(side);
    }

    /// Heals the active partition, if any.
    pub fn heal_partition(&self) {
        self.inner.lock().partition = None;
    }

    /// The active partition side, if any.
    #[must_use]
    pub fn partition(&self) -> Option<ProcessSet> {
        self.inner.lock().partition
    }

    /// `(sent, lost, delivered)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        let g = self.inner.lock();
        (g.sent, g.lost, g.delivered)
    }

    /// Moves due in-flight messages to inboxes (lock already held).
    /// Two-way merge of the sorted `fifo` and the heap by `(due, seq)`:
    /// delivery order is exactly the single-heap order, but the common
    /// in-order case never pays a sift.
    fn pump_locked(g: &mut NetInner, now: Nanos) {
        loop {
            let fifo_key = g.fifo.front().map(|m| (m.due, m.seq));
            let heap_key = g.in_flight.peek().map(|m| (m.due, m.seq));
            let from_fifo = match (fifo_key, heap_key) {
                (Some((due, _)), None) if due <= now => true,
                (None, Some((due, _))) if due <= now => false,
                (Some(f), Some(h)) if f.min(h).0 <= now => f < h,
                _ => break,
            };
            let popped = if from_fifo {
                g.fifo.pop_front()
            } else {
                g.in_flight.pop()
            };
            // The chosen queue was just peeked non-empty under the same
            // lock, so `popped` is always `Some`; breaking (instead of
            // unwrapping) keeps the pump total regardless.
            let Some(m) = popped else { break };
            if g.down.contains(m.datagram.to) {
                continue;
            }
            g.delivered += 1;
            if let Some(inbox) = g.inboxes.get_mut(m.datagram.to.index()) {
                inbox.push_back(m.datagram);
            }
        }
    }

    fn send_from(&self, from: ProcessId, to: ProcessId, payload: Bytes) {
        let now = self.clock.now();
        let mut g = self.inner.lock();
        let g = &mut *g; // split the guard so disjoint fields borrow freely
        if g.down.contains(from) || g.down.contains(to) {
            return;
        }
        g.sent += 1;
        if let Some(side) = g.partition {
            if side.contains(from) != side.contains(to) {
                g.lost += 1;
                return;
            }
        }
        let dropped = match &g.config.loss {
            LossModel::Bernoulli(p) => *p > 0.0 && g.rng.gen_bool(*p),
            LossModel::GilbertElliott {
                p_enter,
                p_exit,
                loss_in_burst,
            } => {
                // Advance the channel state per datagram, then draw.
                if g.in_burst {
                    if *p_exit > 0.0 && g.rng.gen_bool(*p_exit) {
                        g.in_burst = false;
                    }
                } else if *p_enter > 0.0 && g.rng.gen_bool(*p_enter) {
                    g.in_burst = true;
                }
                g.in_burst && *loss_in_burst > 0.0 && g.rng.gen_bool(*loss_in_burst)
            }
        };
        if dropped {
            g.lost += 1;
            return;
        }
        let lo = g.config.min_delay.as_nanos();
        let hi = g.config.max_delay.as_nanos().max(lo);
        let delay = if hi > lo {
            g.rng.gen_range(lo..=hi)
        } else {
            lo
        };
        let due = now.saturating_add(Nanos::from_nanos(delay));
        let seq = g.seq;
        g.seq += 1;
        let entry = InFlight {
            due,
            seq,
            datagram: Datagram {
                from,
                to,
                payload,
                delivered_at: due,
            },
        };
        // `seq` is monotone, so a due no earlier than the FIFO tail
        // keeps it sorted; only out-of-order dues touch the heap.
        if g.fifo.back().map_or(true, |tail| due >= tail.due) {
            g.fifo.push_back(entry);
        } else {
            g.in_flight.push(entry);
        }
    }

    fn recv_for(&self, me: ProcessId) -> Option<Datagram> {
        let now = self.clock.now();
        let mut g = self.inner.lock();
        Self::pump_locked(&mut g, now);
        if g.down.contains(me) {
            return None;
        }
        g.inboxes.get_mut(me.index()).and_then(VecDeque::pop_front)
    }

    /// Drains every datagram currently deliverable to `me` into `into`
    /// under a single lock acquisition (the batch analogue of
    /// [`InMemoryNetwork::recv_for`]).
    fn recv_all_for(&self, me: ProcessId, into: &mut Vec<Datagram>) -> usize {
        let now = self.clock.now();
        let mut g = self.inner.lock();
        Self::pump_locked(&mut g, now);
        if g.down.contains(me) {
            return 0;
        }
        let Some(inbox) = g.inboxes.get_mut(me.index()) else {
            return 0;
        };
        let count = inbox.len();
        into.extend(inbox.drain(..));
        count
    }
}

/// The churn surface delegates to the inherent methods: faults act on
/// the simulated medium itself, deterministically per seed.
impl ChurnableTransport for InMemoryNetwork {
    fn take_down(&self, node: ProcessId) {
        InMemoryNetwork::take_down(self, node);
    }

    fn bring_up(&self, node: ProcessId) {
        InMemoryNetwork::bring_up(self, node);
    }

    fn set_partition(&self, side: ProcessSet) {
        InMemoryNetwork::set_partition(self, side);
    }

    fn heal_partition(&self) {
        InMemoryNetwork::heal_partition(self);
    }
}

/// A node-side handle to an [`InMemoryNetwork`].
#[derive(Clone, Debug)]
pub struct Endpoint {
    net: InMemoryNetwork,
    me: ProcessId,
}

impl Transport for Endpoint {
    fn me(&self) -> ProcessId {
        self.me
    }

    fn send(&self, to: ProcessId, payload: Bytes) {
        self.net.send_from(self.me, to, payload);
    }

    fn recv(&self) -> Option<Datagram> {
        self.net.recv_for(self.me)
    }

    fn recv_batch(&self, into: &mut Vec<Datagram>) -> usize {
        self.net.recv_all_for(self.me, into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn setup(loss: f64, seed: u64) -> (VirtualClock, InMemoryNetwork) {
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(Nanos::from_millis(1), Nanos::from_millis(4))
            .with_loss(loss)
            .with_seed(seed);
        let net = InMemoryNetwork::new(3, config, clock.clone());
        (clock, net)
    }

    #[test]
    fn delivery_waits_for_the_delay() {
        let (clock, net) = setup(0.0, 1);
        let a = net.endpoint(p(0));
        let b = net.endpoint(p(1));
        a.send(p(1), Bytes::from_static(b"x"));
        assert!(b.recv().is_none(), "not yet due");
        clock.advance(Nanos::from_millis(5));
        assert!(b.recv().is_some());
    }

    #[test]
    fn loss_drops_a_fraction_of_traffic() {
        let (clock, net) = setup(0.5, 7);
        let a = net.endpoint(p(0));
        let b = net.endpoint(p(1));
        for _ in 0..1000 {
            a.send(p(1), Bytes::from_static(b"x"));
        }
        clock.advance(Nanos::from_millis(100));
        let mut got = 0;
        while b.recv().is_some() {
            got += 1;
        }
        assert!((300..700).contains(&got), "got {got} of 1000 at 50% loss");
        let (sent, lost, delivered) = net.stats();
        assert_eq!(sent, 1000);
        assert_eq!(lost + delivered, 1000);
    }

    #[test]
    fn down_nodes_neither_send_nor_receive() {
        let (clock, net) = setup(0.0, 2);
        let a = net.endpoint(p(0));
        let b = net.endpoint(p(1));
        net.take_down(p(0));
        a.send(p(1), Bytes::from_static(b"dead"));
        clock.advance(Nanos::from_millis(10));
        assert!(b.recv().is_none(), "messages from a downed node vanish");
        b.send(p(0), Bytes::from_static(b"hello"));
        clock.advance(Nanos::from_millis(10));
        assert!(a.recv().is_none(), "downed nodes receive nothing");
    }

    #[test]
    fn in_flight_messages_to_downed_node_are_dropped() {
        let (clock, net) = setup(0.0, 3);
        let a = net.endpoint(p(0));
        a.send(p(1), Bytes::from_static(b"late"));
        net.take_down(p(1));
        clock.advance(Nanos::from_millis(10));
        assert!(net.endpoint(p(1)).recv().is_none());
    }

    #[test]
    fn brought_up_node_rejoins_traffic() {
        let (clock, net) = setup(0.0, 4);
        let a = net.endpoint(p(0));
        let b = net.endpoint(p(1));
        net.take_down(p(1));
        a.send(p(1), Bytes::from_static(b"during outage"));
        clock.advance(Nanos::from_millis(10));
        assert!(b.recv().is_none());
        net.bring_up(p(1));
        a.send(p(1), Bytes::from_static(b"after recovery"));
        clock.advance(Nanos::from_millis(10));
        let dg = b.recv().expect("recovered node receives again");
        assert_eq!(&dg.payload[..], b"after recovery");
        b.send(p(0), Bytes::from_static(b"and sends"));
        clock.advance(Nanos::from_millis(10));
        assert!(a.recv().is_some());
    }

    #[test]
    fn partition_blocks_cross_traffic_only() {
        let (clock, net) = setup(0.0, 5);
        let a = net.endpoint(p(0));
        let b = net.endpoint(p(1));
        let c = net.endpoint(p(2));
        let mut side = ProcessSet::empty();
        side.insert(p(0));
        side.insert(p(1));
        net.set_partition(side);
        a.send(p(2), Bytes::from_static(b"cross"));
        a.send(p(1), Bytes::from_static(b"within"));
        clock.advance(Nanos::from_millis(10));
        assert!(c.recv().is_none(), "cross-partition traffic is dropped");
        assert!(b.recv().is_some(), "same-side traffic flows");
        net.heal_partition();
        a.send(p(2), Bytes::from_static(b"healed"));
        clock.advance(Nanos::from_millis(10));
        assert!(c.recv().is_some());
        let (sent, lost, delivered) = net.stats();
        assert_eq!(sent, 3);
        assert_eq!(lost, 1, "the partitioned datagram counts as lost");
        assert_eq!(delivered, 2);
    }

    #[test]
    fn deterministic_under_seed() {
        for _ in 0..2 {
            let (clock, net) = setup(0.3, 42);
            let a = net.endpoint(p(0));
            for _ in 0..100 {
                a.send(p(1), Bytes::from_static(b"x"));
            }
            clock.advance(Nanos::from_millis(50));
            let (_, lost, _) = net.stats();
            // Same seed → same loss pattern.
            assert_eq!(lost, {
                let (clock2, net2) = setup(0.3, 42);
                let a2 = net2.endpoint(p(0));
                for _ in 0..100 {
                    a2.send(p(1), Bytes::from_static(b"x"));
                }
                clock2.advance(Nanos::from_millis(50));
                net2.stats().1
            });
        }
    }
}
