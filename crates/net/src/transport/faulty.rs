//! Fault injection over *real* transports.
//!
//! The virtual [`InMemoryNetwork`](super::InMemoryNetwork) can crash,
//! recover and partition nodes because it *is* the medium. A
//! [`UdpTransport`](super::UdpTransport) cluster has no such control
//! plane — the kernel delivers whatever it delivers. [`FaultyTransport`]
//! restores the control plane in user space: every node's transport is
//! wrapped, and a shared [`FaultInjector`] handle mutes crashed nodes,
//! drops datagrams crossing a partition boundary, and injects seeded
//! random loss — so the online churn drivers run the *same*
//! [`FaultSchedule`](crate::online::FaultSchedule) over genuine OS
//! sockets that they run over the simulator.
//!
//! Semantics, chosen to mirror the virtual network:
//!
//! * **Crash-by-muting** — a downed node's sends are swallowed and its
//!   inbound traffic is discarded; datagrams already in its socket
//!   buffer are flushed at the first receive after recovery so stale
//!   pre-crash heartbeats cannot masquerade as fresh ones. The flush is
//!   lazy, so a datagram landing in the brief window between
//!   [`ChurnableTransport::bring_up`] and that first receive is
//!   discarded with the stale ones — at most one heartbeat of extra
//!   best-effort loss at recovery, charged to the drop counter.
//! * **Address-set partitions** — a [`ProcessSet`] side; datagrams whose
//!   endpoints straddle the boundary are dropped at send *and* receive
//!   (the receive check catches datagrams in flight when the partition
//!   lands).
//! * **Injected loss** — independent per-datagram drops with a seeded
//!   RNG, so loss pressure exists even on a lossless loopback.
//!
//! On top of the crash/partition/loss base, the injector carries the
//! adversarial **weather planes** driven by
//! [`WeatherDirective`]s (see
//! [`crate::weather`]):
//!
//! * **one-way blocks** — a directed `(from, to)` link set, checked at
//!   send *and* receive like partitions, but asymmetric;
//! * **duplication** — a forwarded datagram is sent twice with seeded
//!   probability;
//! * **bounded reordering** — an arrival is held back until `depth`
//!   younger datagrams have overtaken it or a hold timer fires;
//! * **gray failure / latency spikes** — arrivals from a gray sender
//!   (or, under a spike, from anyone) are held for the configured extra
//!   latency: slow-but-alive, never lost.
//!
//! Held datagrams live in a per-node queue inside the wrapper and are
//! still "in flight": a partition or block landing while they wait
//! catches them at release, and a crash of the receiver purges them
//! like any other buffered traffic. When every weather plane is idle
//! and the queue is empty, the receive paths take the exact pre-weather
//! fast path — zero extra RNG draws, allocations or reshuffling — so a
//! calm injector stays bit-identical to the historical behaviour.
//!
//! Received datagrams are re-stamped with the cluster's shared clock, so
//! every arrival time an estimator sees is coherent with the driver's
//! clock regardless of what the inner transport recorded.

use super::{ChurnableTransport, Datagram, Transport};
use crate::clock::{Clock, Nanos};
use crate::weather::WeatherDirective;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfd_core::{ProcessId, ProcessSet};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Datagram counters of the weather planes, cluster-wide (see
/// [`FaultInjector::weather_stats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WeatherStats {
    /// Forwarded datagrams that were sent twice.
    pub duplicated: u64,
    /// Arrivals held back by the reordering plane.
    pub reordered: u64,
    /// Arrivals held back by gray failure or a latency spike.
    pub delayed: u64,
    /// Datagrams dropped by one-way link blocks.
    pub link_dropped: u64,
}

#[derive(Debug)]
struct InjectorState {
    down: ProcessSet,
    /// Nodes whose next `recv` must flush the inner transport: set on
    /// [`ChurnableTransport::bring_up`] so datagrams queued during the
    /// outage are discarded instead of surfacing as fresh arrivals.
    flush: ProcessSet,
    partition: Option<ProcessSet>,
    drop_probability: f64,
    rng: StdRng,
    forwarded: u64,
    dropped: u64,
    /// Directed links currently blocked (one-way partitions).
    blocked: BTreeSet<(ProcessId, ProcessId)>,
    /// Duplication probability, in per-mille (0 = plane off).
    dup_per_mille: u16,
    /// Reordering hold-back probability, in per-mille (0 = plane off).
    reorder_per_mille: u16,
    /// How many younger datagrams may overtake a held one.
    reorder_depth: u8,
    /// Maximum extra latency the reordering plane holds a datagram.
    reorder_hold: Nanos,
    /// Gray (slow-but-alive) senders and their extra one-way latency.
    gray: BTreeMap<ProcessId, Nanos>,
    /// Cluster-wide extra latency (a spike), `ZERO` when calm.
    spike: Nanos,
    weather: WeatherStats,
}

impl InjectorState {
    /// Whether every weather plane is idle — the receive paths take the
    /// historical fast path iff this holds (and no datagram is held).
    fn weather_quiet(&self) -> bool {
        self.blocked.is_empty()
            && self.dup_per_mille == 0
            && self.reorder_per_mille == 0
            && self.gray.is_empty()
            && self.spike == Nanos::ZERO
    }
}

/// What the receive-side fault plane decided about one arrival.
enum RecvFate {
    /// Discard (partition crossing or blocked link), already charged.
    Drop,
    /// Deliver now.
    Deliver,
    /// Hold back: release after `extra` latency, or — when `depth` is
    /// set (reordering) — once that many younger datagrams have been
    /// delivered past it, whichever comes first.
    Hold {
        /// Extra latency before a time-based release.
        extra: Nanos,
        /// Overtake bound for a count-based release (reordering only).
        depth: Option<u8>,
    },
}

/// The shared control plane of a [`FaultyTransport`] cluster: the
/// [`ChurnableTransport`] handle the churn drivers act on, plus loss
/// injection and accounting.
///
/// Cloning is cheap and every clone controls the same cluster.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: Arc<Mutex<InjectorState>>,
}

impl FaultInjector {
    /// A fresh control plane with independent per-datagram loss
    /// `drop_probability`, drawn from an RNG seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is outside `0.0..=1.0`.
    #[must_use]
    pub fn new(drop_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0,1]"
        );
        Self {
            state: Arc::new(Mutex::new(InjectorState {
                down: ProcessSet::empty(),
                flush: ProcessSet::empty(),
                partition: None,
                drop_probability,
                rng: StdRng::seed_from_u64(seed),
                forwarded: 0,
                dropped: 0,
                blocked: BTreeSet::new(),
                dup_per_mille: 0,
                reorder_per_mille: 0,
                reorder_depth: 0,
                reorder_hold: Nanos::ZERO,
                gray: BTreeMap::new(),
                spike: Nanos::ZERO,
                weather: WeatherStats::default(),
            })),
        }
    }

    /// Whether `node` is currently muted (crashed).
    #[must_use]
    pub fn is_down(&self, node: ProcessId) -> bool {
        self.state.lock().down.contains(node)
    }

    /// The active partition side, if any.
    #[must_use]
    pub fn partition(&self) -> Option<ProcessSet> {
        self.state.lock().partition
    }

    /// `(forwarded, dropped)` datagram counters across the cluster
    /// (drops include muting, partition crossings and injected loss).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        let g = self.state.lock();
        (g.forwarded, g.dropped)
    }

    /// The per-plane weather counters (duplicates, holds, one-way
    /// drops) across the cluster.
    #[must_use]
    pub fn weather_stats(&self) -> WeatherStats {
        self.state.lock().weather
    }

    /// How many copies of a send from `from` to `to` pass the fault
    /// plane right now (0 = dropped, 2 = duplicated), charging the
    /// counters. RNG draws happen only for planes that are switched on,
    /// so a calm injector consumes exactly the historical seed stream.
    fn copies_for_send(&self, from: ProcessId, to: ProcessId) -> usize {
        let mut g = self.state.lock();
        if g.down.contains(from) || g.down.contains(to) {
            g.dropped += 1;
            return 0;
        }
        if let Some(side) = g.partition {
            if side.contains(from) != side.contains(to) {
                g.dropped += 1;
                return 0;
            }
        }
        if g.blocked.contains(&(from, to)) {
            g.dropped += 1;
            g.weather.link_dropped += 1;
            return 0;
        }
        if g.drop_probability > 0.0 {
            let p = g.drop_probability;
            if g.rng.gen_bool(p) {
                g.dropped += 1;
                return 0;
            }
        }
        g.forwarded += 1;
        if g.dup_per_mille > 0 {
            let p = per_mille_probability(g.dup_per_mille);
            if g.rng.gen_bool(p) {
                g.weather.duplicated += 1;
                return 2;
            }
        }
        1
    }

    /// The receive-side fault plane's verdict on an arrival from `from`
    /// at node `me`, charging drop counters.
    fn fate_of_arrival(&self, from: ProcessId, me: ProcessId) -> RecvFate {
        let mut g = self.state.lock();
        if g.partition
            .is_some_and(|side| side.contains(from) != side.contains(me))
        {
            g.dropped += 1;
            return RecvFate::Drop;
        }
        if g.blocked.contains(&(from, me)) {
            g.dropped += 1;
            g.weather.link_dropped += 1;
            return RecvFate::Drop;
        }
        let extra = g
            .gray
            .get(&from)
            .copied()
            .unwrap_or(Nanos::ZERO)
            .saturating_add(g.spike);
        if extra > Nanos::ZERO {
            g.weather.delayed += 1;
            return RecvFate::Hold { extra, depth: None };
        }
        if g.reorder_per_mille > 0 {
            let p = per_mille_probability(g.reorder_per_mille);
            if g.rng.gen_bool(p) {
                g.weather.reordered += 1;
                return RecvFate::Hold {
                    extra: g.reorder_hold,
                    depth: Some(g.reorder_depth),
                };
            }
        }
        RecvFate::Deliver
    }

    /// Whether a previously held datagram from `from` may still reach
    /// `me` — held datagrams are in flight, so a partition or one-way
    /// block landing during the hold catches them at release (charged
    /// like any other receive-side drop).
    fn still_admissible(&self, from: ProcessId, me: ProcessId) -> bool {
        let mut g = self.state.lock();
        if g.partition
            .is_some_and(|side| side.contains(from) != side.contains(me))
        {
            g.dropped += 1;
            return false;
        }
        if g.blocked.contains(&(from, me)) {
            g.dropped += 1;
            g.weather.link_dropped += 1;
            return false;
        }
        true
    }
}

/// A per-mille knob as a [`Rng::gen_bool`] probability.
fn per_mille_probability(per_mille: u16) -> f64 {
    f64::from(per_mille.min(1000)) / 1000.0
}

impl ChurnableTransport for FaultInjector {
    fn take_down(&self, node: ProcessId) {
        self.state.lock().down.insert(node);
    }

    fn bring_up(&self, node: ProcessId) {
        let mut g = self.state.lock();
        if g.down.remove(node) {
            g.flush.insert(node);
        }
    }

    fn set_partition(&self, side: ProcessSet) {
        self.state.lock().partition = Some(side);
    }

    fn heal_partition(&self) {
        self.state.lock().partition = None;
    }

    fn apply_weather(&self, directive: &WeatherDirective) -> bool {
        let mut g = self.state.lock();
        match *directive {
            WeatherDirective::BlockLink { from, to } => {
                g.blocked.insert((from, to));
            }
            WeatherDirective::UnblockLink { from, to } => {
                g.blocked.remove(&(from, to));
            }
            WeatherDirective::Duplicate { per_mille } => g.dup_per_mille = per_mille,
            WeatherDirective::Reorder {
                per_mille,
                depth,
                hold,
            } => {
                g.reorder_per_mille = per_mille;
                g.reorder_depth = depth;
                g.reorder_hold = hold;
            }
            WeatherDirective::Gray { node, extra } => {
                g.gray.insert(node, extra);
            }
            WeatherDirective::Ungray { node } => {
                g.gray.remove(&node);
            }
            WeatherDirective::Spike { extra } => g.spike = extra,
            WeatherDirective::Calm => g.spike = Nanos::ZERO,
        }
        true
    }
}

/// One node's fault-injected view of an inner [`Transport`], controlled
/// by the cluster's shared [`FaultInjector`].
///
/// Build a whole cluster with [`faulty_cluster`]. The wrapper is
/// transport-generic: wrap [`UdpTransport`](super::UdpTransport)s for
/// real-socket churn, or [`Endpoint`](super::Endpoint)s of a reliable
/// [`InMemoryNetwork`](super::InMemoryNetwork) to test the fault plane
/// itself deterministically.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use rfd_core::ProcessId;
/// use rfd_net::clock::{Nanos, VirtualClock};
/// use rfd_net::transport::{
///     faulty_cluster, ChurnableTransport, InMemoryNetwork, NetworkConfig, Transport,
/// };
///
/// let clock = VirtualClock::new();
/// let net = InMemoryNetwork::new(2, NetworkConfig::default(), clock.clone());
/// let endpoints = (0..2).map(|ix| net.endpoint(ProcessId::new(ix))).collect();
/// let (nodes, injector) = faulty_cluster(endpoints, 0.0, 7, clock.clone());
///
/// nodes[0].send(ProcessId::new(1), Bytes::from_static(b"hb"));
/// clock.advance(Nanos::from_millis(10));
/// assert!(nodes[1].recv().is_some(), "traffic flows while healthy");
///
/// injector.take_down(ProcessId::new(0)); // crash-by-muting
/// nodes[0].send(ProcessId::new(1), Bytes::from_static(b"hb"));
/// clock.advance(Nanos::from_millis(10));
/// assert!(nodes[1].recv().is_none(), "a muted node's sends are swallowed");
/// ```
#[derive(Debug)]
pub struct FaultyTransport<T, C> {
    inner: T,
    injector: FaultInjector,
    clock: C,
    /// This node's weather hold-back queue (gray/spike/reordering).
    held: Mutex<HeldQueue>,
}

/// Datagrams the weather planes are holding back for one node, plus the
/// delivery counter the reordering release bound is measured against.
#[derive(Debug, Default)]
struct HeldQueue {
    /// Held arrivals in arrival order (oldest first).
    entries: Vec<HeldEntry>,
    /// Datagrams delivered to this node so far (weather paths only —
    /// the calm fast path doesn't count, it also can't hold anything).
    delivered: u64,
    /// Reused drain buffer for the weather batch path.
    scratch: Vec<Datagram>,
}

#[derive(Debug)]
struct HeldEntry {
    /// Time-based release bound.
    due: Nanos,
    /// Count-based release bound: released once `delivered` reaches
    /// this (`u64::MAX` for pure-latency holds).
    release_after: u64,
    dg: Datagram,
}

impl<T: Transport, C: Clock> FaultyTransport<T, C> {
    /// Wraps one node's transport under `injector`, re-stamping received
    /// datagrams with `clock`. Prefer [`faulty_cluster`] to wrap a whole
    /// fleet under one injector.
    #[must_use]
    pub fn new(inner: T, injector: FaultInjector, clock: C) -> Self {
        Self {
            inner,
            injector,
            clock,
            held: Mutex::new(HeldQueue::default()),
        }
    }

    /// The cluster's shared control plane.
    #[must_use]
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// If this node is muted (or freshly recovered), discards everything
    /// the inner transport buffered *and* everything the weather planes
    /// were holding for it, charging the drop counter; returns whether
    /// the caller should report an empty receive. Also reports, for the
    /// healthy case, whether every weather plane is idle.
    fn purge_if_muted(&self, me: ProcessId) -> (bool, bool) {
        let mut g = self.injector.state.lock();
        if g.down.contains(me) || g.flush.contains(me) {
            // Muted, or freshly recovered: discard everything buffered
            // during the outage. Holding the lock is fine — the inner
            // recv is non-blocking by contract.
            let mut purged = 0u64;
            while self.inner.recv().is_some() {
                purged += 1;
            }
            let mut h = self.held.lock();
            purged += h.entries.len() as u64;
            h.entries.clear();
            drop(h);
            g.dropped += purged;
            g.flush.remove(me);
            return (true, false);
        }
        let quiet = g.weather_quiet();
        (false, quiet)
    }

    /// Releases the oldest held datagram whose time or overtake bound
    /// has passed, re-stamped at `now`.
    fn pop_released(&self, now: Nanos) -> Option<Datagram> {
        let mut h = self.held.lock();
        let delivered = h.delivered;
        let pos = h
            .entries
            .iter()
            .position(|e| e.due <= now || delivered >= e.release_after)?;
        let entry = h.entries.remove(pos);
        h.delivered += 1;
        Some(Datagram {
            delivered_at: now,
            ..entry.dg
        })
    }

    /// Holds an arrival back per a [`RecvFate::Hold`] verdict.
    fn stash(&self, dg: Datagram, now: Nanos, extra: Nanos, depth: Option<u8>) {
        let mut h = self.held.lock();
        let release_after = depth.map_or(u64::MAX, |d| h.delivered.saturating_add(u64::from(d)));
        h.entries.push(HeldEntry {
            due: now.saturating_add(extra),
            release_after,
            dg,
        });
    }

    /// The historical calm-weather batch path: drain the inner
    /// transport, then one lock for the whole batch — drop partition
    /// crossings in place (compacting with swaps preserves arrival
    /// order) and re-stamp what survives with the shared clock.
    fn recv_batch_fast(&self, into: &mut Vec<Datagram>, me: ProcessId) -> usize {
        let start = into.len();
        self.inner.recv_batch(into);
        let now = self.clock.now();
        let mut g = self.injector.state.lock();
        let mut kept = start;
        for ix in start..into.len() {
            let crosses = g
                .partition
                // rfd-lint: allow(wire-safety, ix is loop-bounded by into.len(); compaction needs positional reads)
                .is_some_and(|side| side.contains(into[ix].from) != side.contains(me));
            if crosses {
                g.dropped += 1;
            } else {
                into.swap(kept, ix);
                // rfd-lint: allow(wire-safety, kept <= ix < into.len() holds on every iteration of the compaction loop)
                into[kept].delivered_at = now;
                kept += 1;
            }
        }
        into.truncate(kept);
        kept - start
    }

    /// The weather batch path: release due holds, then run every fresh
    /// arrival through the full receive-side fault plane.
    fn recv_batch_weather(&self, into: &mut Vec<Datagram>, me: ProcessId) -> usize {
        let start = into.len();
        let now = self.clock.now();
        while let Some(dg) = self.pop_released(now) {
            if self.injector.still_admissible(dg.from, me) {
                into.push(dg);
            }
        }
        let mut fresh = std::mem::take(&mut self.held.lock().scratch);
        fresh.clear();
        self.inner.recv_batch(&mut fresh);
        for dg in fresh.drain(..) {
            match self.injector.fate_of_arrival(dg.from, me) {
                RecvFate::Drop => {}
                RecvFate::Deliver => {
                    self.held.lock().delivered += 1;
                    into.push(Datagram {
                        delivered_at: now,
                        ..dg
                    });
                }
                RecvFate::Hold { extra, depth } => self.stash(dg, now, extra, depth),
            }
        }
        self.held.lock().scratch = fresh;
        into.len() - start
    }
}

impl<T: Transport, C: Clock> Transport for FaultyTransport<T, C> {
    fn me(&self) -> ProcessId {
        self.inner.me()
    }

    fn send(&self, to: ProcessId, payload: Bytes) {
        let copies = self.injector.copies_for_send(self.inner.me(), to);
        for _ in 0..copies {
            // `Bytes::clone` is a refcount bump, so the duplication
            // plane costs no copy of the payload.
            self.inner.send(to, payload.clone());
        }
    }

    fn recv(&self) -> Option<Datagram> {
        let me = self.inner.me();
        loop {
            let (muted, _) = self.purge_if_muted(me);
            if muted {
                return None;
            }
            let now = self.clock.now();
            if let Some(dg) = self.pop_released(now) {
                if self.injector.still_admissible(dg.from, me) {
                    return Some(dg);
                }
                continue;
            }
            let dg = self.inner.recv()?;
            match self.injector.fate_of_arrival(dg.from, me) {
                RecvFate::Drop => {}
                RecvFate::Deliver => {
                    self.held.lock().delivered += 1;
                    return Some(Datagram {
                        delivered_at: now,
                        ..dg
                    });
                }
                RecvFate::Hold { extra, depth } => self.stash(dg, now, extra, depth),
            }
        }
    }

    fn recv_batch(&self, into: &mut Vec<Datagram>) -> usize {
        let me = self.inner.me();
        let (muted, quiet) = self.purge_if_muted(me);
        if muted {
            return 0;
        }
        if quiet && self.held.lock().entries.is_empty() {
            self.recv_batch_fast(into, me)
        } else {
            self.recv_batch_weather(into, me)
        }
    }
}

/// Wraps a fleet of per-node transports under one fresh
/// [`FaultInjector`] (independent datagram loss `drop_probability`,
/// RNG seeded with `seed`), re-stamping arrivals with clones of `clock`.
/// Returns the wrapped nodes and the shared control handle.
///
/// This is the real-socket analogue of
/// [`InMemoryNetwork::new`](super::InMemoryNetwork::new) +
/// [`endpoint`](super::InMemoryNetwork::endpoint): pair it with
/// [`loopback_cluster`](super::udp::loopback_cluster) and a shared
/// [`SystemClock`](crate::clock::SystemClock) to put a live UDP fleet
/// under schedule-driven churn (see `examples/udp_churn.rs`).
///
/// # Panics
///
/// Panics if `drop_probability` is outside `0.0..=1.0`.
#[must_use]
pub fn faulty_cluster<T: Transport, C: Clock + Clone>(
    transports: Vec<T>,
    drop_probability: f64,
    seed: u64,
    clock: C,
) -> (Vec<FaultyTransport<T, C>>, FaultInjector) {
    let injector = FaultInjector::new(drop_probability, seed);
    let nodes = transports
        .into_iter()
        .map(|t| FaultyTransport::new(t, injector.clone(), clock.clone()))
        .collect();
    (nodes, injector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Nanos, VirtualClock};
    use crate::transport::{InMemoryNetwork, NetworkConfig};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A 3-node faulty cluster over a reliable in-memory medium: the
    /// inner transport never loses anything, so every drop observed is
    /// the injector's doing.
    fn cluster(
        drop_probability: f64,
        seed: u64,
    ) -> (
        VirtualClock,
        Vec<FaultyTransport<super::super::Endpoint, VirtualClock>>,
        FaultInjector,
    ) {
        let clock = VirtualClock::new();
        let config = NetworkConfig::reliable(Nanos::from_millis(1), Nanos::from_millis(2));
        let net = InMemoryNetwork::new(3, config, clock.clone());
        let endpoints = (0..3).map(|ix| net.endpoint(p(ix))).collect();
        let (nodes, injector) = faulty_cluster(endpoints, drop_probability, seed, clock.clone());
        (clock, nodes, injector)
    }

    fn pump(clock: &VirtualClock) {
        clock.advance(Nanos::from_millis(5));
    }

    #[test]
    fn healthy_cluster_forwards_and_restamps() {
        let (clock, nodes, injector) = cluster(0.0, 1);
        nodes[0].send(p(1), Bytes::from_static(b"hb"));
        pump(&clock);
        let dg = nodes[1].recv().expect("delivered");
        assert_eq!(dg.from, p(0));
        assert_eq!(
            dg.delivered_at,
            clock.now(),
            "arrivals are re-stamped with the shared clock"
        );
        assert_eq!(injector.stats(), (1, 0));
    }

    #[test]
    fn muted_node_neither_sends_nor_receives() {
        let (clock, nodes, injector) = cluster(0.0, 2);
        injector.take_down(p(0));
        assert!(injector.is_down(p(0)));
        nodes[0].send(p(1), Bytes::from_static(b"dead"));
        pump(&clock);
        assert!(nodes[1].recv().is_none(), "sends from a muted node vanish");
        nodes[1].send(p(0), Bytes::from_static(b"hello"));
        pump(&clock);
        assert!(nodes[0].recv().is_none(), "muted nodes receive nothing");
    }

    #[test]
    fn recovery_flushes_datagrams_buffered_during_the_outage() {
        let (clock, nodes, injector) = cluster(0.0, 3);
        // The datagram leaves p1 before p0 is muted, so the inner medium
        // buffers it for p0.
        nodes[1].send(p(0), Bytes::from_static(b"stale"));
        injector.take_down(p(0));
        pump(&clock);
        injector.bring_up(p(0));
        assert!(!injector.is_down(p(0)));
        assert!(
            nodes[0].recv().is_none(),
            "pre-recovery traffic is flushed, not delivered late"
        );
        // Fresh traffic after the flush flows normally.
        nodes[1].send(p(0), Bytes::from_static(b"fresh"));
        pump(&clock);
        assert_eq!(&nodes[0].recv().expect("delivered").payload[..], b"fresh");
    }

    #[test]
    fn partition_blocks_cross_traffic_both_ways_until_healed() {
        let (clock, nodes, injector) = cluster(0.0, 4);
        let side = ProcessSet::singleton(p(2));
        injector.set_partition(side);
        assert_eq!(injector.partition(), Some(side));
        nodes[0].send(p(2), Bytes::from_static(b"cross"));
        nodes[0].send(p(1), Bytes::from_static(b"within"));
        pump(&clock);
        assert!(nodes[2].recv().is_none(), "cross-partition sends drop");
        assert!(nodes[1].recv().is_some(), "same-side traffic flows");
        injector.heal_partition();
        nodes[2].send(p(0), Bytes::from_static(b"healed"));
        pump(&clock);
        assert!(nodes[0].recv().is_some());
    }

    #[test]
    fn in_flight_datagrams_are_caught_at_receive_when_the_partition_lands() {
        let (clock, nodes, injector) = cluster(0.0, 5);
        nodes[0].send(p(2), Bytes::from_static(b"in flight"));
        // The partition lands while the datagram is crossing.
        injector.set_partition(ProcessSet::singleton(p(2)));
        pump(&clock);
        assert!(nodes[2].recv().is_none(), "receive-side check catches it");
        let (_, dropped) = injector.stats();
        assert_eq!(dropped, 1);
    }

    #[test]
    fn injected_loss_is_seeded_and_proportionate() {
        let count = |seed: u64| {
            let (clock, nodes, _) = cluster(0.5, seed);
            for _ in 0..400 {
                nodes[0].send(p(1), Bytes::from_static(b"x"));
            }
            pump(&clock);
            let mut got = 0;
            while nodes[1].recv().is_some() {
                got += 1;
            }
            got
        };
        let a = count(9);
        assert!((100..300).contains(&a), "got {a} of 400 at 50% loss");
        assert_eq!(a, count(9), "same seed, same drop pattern");
    }
}
