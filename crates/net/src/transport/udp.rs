//! Real UDP transport for end-to-end examples.

use super::{Datagram, Transport};
use crate::clock::{Clock, SystemClock};
use bytes::Bytes;
use rfd_core::ProcessId;
use std::net::{SocketAddr, UdpSocket};

/// A UDP datagram transport: one socket per node, a static peer table.
///
/// Heartbeats and suspicions flow over genuine OS sockets; useful for
/// the runnable examples (`examples/udp_detector.rs`) and for sanity
/// checks that the stack is not simulation-bound.
#[derive(Debug)]
pub struct UdpTransport {
    me: ProcessId,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    clock: SystemClock,
}

impl UdpTransport {
    /// Binds node `me`'s socket to `peers[me]` and records the peer
    /// table. The socket is set non-blocking.
    ///
    /// # Errors
    ///
    /// Returns any socket bind/configuration error.
    pub fn bind(me: ProcessId, peers: Vec<SocketAddr>) -> std::io::Result<Self> {
        let addr = peers.get(me.index()).copied().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "me out of range")
        })?;
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(Self {
            me,
            socket,
            peers,
            clock: SystemClock::new(),
        })
    }

    /// The local socket address actually bound (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns the socket error, if any.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn peer_of(&self, addr: SocketAddr) -> Option<ProcessId> {
        self.peers
            .iter()
            .position(|p| *p == addr)
            .map(ProcessId::new)
    }
}

impl Transport for UdpTransport {
    fn me(&self) -> ProcessId {
        self.me
    }

    fn send(&self, to: ProcessId, payload: Bytes) {
        if let Some(addr) = self.peers.get(to.index()) {
            // Best-effort: UDP loss is part of the model.
            let _ = self.socket.send_to(&payload, addr);
        }
    }

    fn recv(&self) -> Option<Datagram> {
        let mut buf = [0u8; 2048];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((len, addr)) => {
                    let Some(from) = self.peer_of(addr) else {
                        continue; // stranger datagram: drop
                    };
                    let Some(bytes) = buf.get(..len) else {
                        continue; // cannot happen: recv_from bounds len
                    };
                    return Some(Datagram {
                        from,
                        to: self.me,
                        payload: Bytes::copy_from_slice(bytes),
                        delivered_at: self.clock.now(),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return None,
                Err(_) => return None,
            }
        }
    }
}

/// Builds a loopback peer table of `n` sockets on ephemeral ports and
/// binds every node.
///
/// # Errors
///
/// Returns the first socket error encountered.
/// Fails with [`std::io::ErrorKind::InvalidInput`] if `n` exceeds
/// [`rfd_core::MAX_PROCESSES`].
pub fn loopback_cluster(n: usize) -> std::io::Result<Vec<UdpTransport>> {
    // First bind everyone on port 0 to discover addresses...
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let peers: Vec<SocketAddr> = sockets
        .iter()
        .map(UdpSocket::local_addr)
        .collect::<std::io::Result<_>>()?;
    // ...then wrap them as transports.
    sockets
        .into_iter()
        .enumerate()
        .map(|(ix, socket)| {
            socket.set_nonblocking(true)?;
            let me = ProcessId::try_new(ix, n).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "cluster size exceeds MAX_PROCESSES",
                )
            })?;
            Ok(UdpTransport {
                me,
                socket,
                peers: peers.clone(),
                clock: SystemClock::new(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let nodes = loopback_cluster(2).expect("bind loopback");
        nodes[0].send(ProcessId::new(1), Bytes::from_static(b"hb"));
        // Give the kernel a moment.
        let mut got = None;
        for _ in 0..100 {
            if let Some(dg) = nodes[1].recv() {
                got = Some(dg);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let dg = got.expect("datagram should arrive on loopback");
        assert_eq!(dg.from, ProcessId::new(0));
        assert_eq!(&dg.payload[..], b"hb");
    }

    #[test]
    fn stranger_datagrams_are_dropped() {
        let nodes = loopback_cluster(2).expect("bind loopback");
        let stranger = UdpSocket::bind("127.0.0.1:0").unwrap();
        let target = nodes[1].local_addr().unwrap();
        stranger.send_to(b"noise", target).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(nodes[1].recv().is_none(), "unknown senders are ignored");
    }
}
