//! Transports: datagram delivery for the heartbeat stack.
//!
//! [`InMemoryNetwork`] is a deterministic virtual-time network with
//! configurable loss, delay and partitions — the workhorse of the QoS
//! experiments. [`UdpTransport`] carries the same traffic over real
//! `UdpSocket`s for the end-to-end examples.

pub mod memory;
pub mod udp;

pub use memory::{Endpoint, InMemoryNetwork, LossModel, NetworkConfig};
pub use udp::UdpTransport;

use crate::clock::Nanos;
use bytes::Bytes;
use rfd_core::ProcessId;

/// A received datagram.
#[derive(Clone, Debug)]
pub struct Datagram {
    /// Sending node.
    pub from: ProcessId,
    /// Receiving node.
    pub to: ProcessId,
    /// Payload bytes.
    pub payload: Bytes,
    /// Delivery time (virtual networks) or receive time (UDP).
    pub delivered_at: Nanos,
}

/// A node-side transport handle.
pub trait Transport {
    /// This node's identity.
    fn me(&self) -> ProcessId;

    /// Sends `payload` to `to` (best effort — may be lost).
    fn send(&self, to: ProcessId, payload: Bytes);

    /// Receives the next available datagram, if any.
    fn recv(&self) -> Option<Datagram>;
}
