//! Transports: datagram delivery for the heartbeat stack.
//!
//! [`InMemoryNetwork`] is a deterministic virtual-time network with
//! configurable loss, delay and partitions — the workhorse of the QoS
//! experiments. [`UdpTransport`] carries the same traffic over real
//! `UdpSocket`s for the end-to-end examples, and [`FaultyTransport`]
//! wraps any per-node transport with the fault-injection surface
//! ([`ChurnableTransport`]) the online churn drivers need, so the same
//! crash / recover / partition schedules run over genuine OS sockets.

pub mod faulty;
pub mod memory;
pub mod udp;

pub use faulty::{faulty_cluster, FaultInjector, FaultyTransport};
pub use memory::{Endpoint, InMemoryNetwork, LossModel, NetworkConfig};
pub use udp::UdpTransport;

use crate::clock::Nanos;
use crate::weather::WeatherDirective;
use bytes::Bytes;
use rfd_core::{ProcessId, ProcessSet};

/// A received datagram.
#[derive(Clone, Debug)]
pub struct Datagram {
    /// Sending node.
    pub from: ProcessId,
    /// Receiving node.
    pub to: ProcessId,
    /// Payload bytes.
    pub payload: Bytes,
    /// Delivery time (virtual networks) or receive time (UDP).
    pub delivered_at: Nanos,
}

/// A node-side transport handle.
pub trait Transport {
    /// This node's identity.
    fn me(&self) -> ProcessId;

    /// Sends `payload` to `to` (best effort — may be lost).
    fn send(&self, to: ProcessId, payload: Bytes);

    /// Receives the next available datagram, if any.
    fn recv(&self) -> Option<Datagram>;

    /// Drains every currently available datagram into `into` (appending —
    /// the caller decides when to clear), returning how many arrived.
    ///
    /// The default loops [`Transport::recv`]; implementations whose inbox
    /// sits behind a lock should override this to drain under a single
    /// acquisition. Hot loops that poll every tick want this: one
    /// `recv_batch` into a reused buffer replaces per-datagram lock
    /// round-trips and lets the caller keep one long-lived allocation.
    fn recv_batch(&self, into: &mut Vec<Datagram>) -> usize {
        let before = into.len();
        while let Some(datagram) = self.recv() {
            into.push(datagram);
        }
        into.len() - before
    }
}

/// The fleet-level fault-injection surface of a transport: what a churn
/// driver ([`crate::online::OnlineRunner`],
/// [`crate::online::run_membership_churn`]) needs to apply a ground-truth
/// [`crate::online::FaultSchedule`].
///
/// Two implementations ship:
///
/// * [`InMemoryNetwork`] — faults act on the simulated medium itself
///   (virtual time, deterministic per seed);
/// * [`FaultInjector`] — the shared control plane of a
///   [`FaultyTransport`] cluster, muting and partitioning traffic that
///   really flows through OS sockets (wall time).
pub trait ChurnableTransport {
    /// Crashes `node`: from now on it neither sends nor receives.
    fn take_down(&self, node: ProcessId);

    /// Recovers `node` (churn): its traffic flows again. Datagrams
    /// addressed to it while it was down must not surface afterwards
    /// (implementations may also drop a datagram arriving in the brief
    /// window between recovery and the node's next receive — best-effort
    /// loss, never stale delivery).
    fn bring_up(&self, node: ProcessId);

    /// Installs a network partition between `side` and its complement;
    /// traffic within either side is unaffected. Replaces any previous
    /// partition.
    fn set_partition(&self, side: ProcessSet);

    /// Heals the active partition, if any.
    fn heal_partition(&self);

    /// Applies an adversarial-weather directive (one-way blocks,
    /// duplication, reordering, gray failure, spikes — see
    /// [`WeatherDirective`]), returning whether this control plane
    /// supports it. The default declines: only the weather-capable
    /// [`FaultInjector`] fault plane implements the full catalogue, and
    /// a schedule carrying weather over an unsupporting substrate is a
    /// driver bug the churn runners turn into a panic rather than a
    /// silently calm run.
    fn apply_weather(&self, directive: &WeatherDirective) -> bool {
        let _ = directive;
        false
    }
}
