//! Serialization round-trips and boundary conditions of the model types.

use rfd_core::oracles::{Oracle, PerfectOracle};
use rfd_core::{
    class_report, CheckParams, ClassId, FailurePattern, History, ProcessId, ProcessSet, Time,
    MAX_PROCESSES,
};

#[test]
fn pattern_survives_serde_roundtrip() {
    let f = FailurePattern::new(6)
        .with_crash(ProcessId::new(1), Time::new(10))
        .with_crash(ProcessId::new(4), Time::new(99));
    let json = serde_json::to_string(&f).expect("serialize");
    let back: FailurePattern = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(f, back);
}

#[test]
fn history_survives_serde_roundtrip() {
    let mut h: History<ProcessSet> = History::new(3, ProcessSet::empty());
    h.set_from(
        ProcessId::new(0),
        Time::new(5),
        ProcessSet::singleton(ProcessId::new(2)),
    );
    h.set_from(ProcessId::new(2), Time::new(9), ProcessSet::full(3));
    let json = serde_json::to_string(&h).expect("serialize");
    let back: History<ProcessSet> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(h, back);
}

#[test]
fn process_set_serde_roundtrip() {
    let s: ProcessSet = [0usize, 7, 127]
        .iter()
        .map(|&i| ProcessId::new(i))
        .collect();
    let json = serde_json::to_string(&s).expect("serialize");
    let back: ProcessSet = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(s, back);
}

#[test]
fn model_works_at_the_maximum_system_size() {
    // n = 128: the full bitset width.
    let n = MAX_PROCESSES;
    let mut f = FailurePattern::new(n);
    f.set_crash(ProcessId::new(0), Time::new(10));
    f.set_crash(ProcessId::new(n - 1), Time::new(20));
    assert_eq!(f.num_faulty(), 2);
    assert_eq!(f.correct().len(), n - 2);
    let oracle = PerfectOracle::new(5, 3);
    let horizon = Time::new(300);
    let h = oracle.generate(&f, horizon, 0);
    let report = class_report(&f, &h, &CheckParams::new(horizon));
    assert!(report.is_in(ClassId::Perfect));
}

#[test]
fn two_process_minimum_system() {
    // n = 2 (< the paper's n > 3, but the model layer itself is sound
    // there and smaller systems make good unit fixtures).
    let f = FailurePattern::new(2).with_crash(ProcessId::new(0), Time::new(5));
    let h = PerfectOracle::new(2, 0).generate(&f, Time::new(100), 0);
    assert!(h
        .value(ProcessId::new(1), Time::new(7))
        .contains(ProcessId::new(0)));
}

#[test]
fn check_params_window_arithmetic() {
    let p = CheckParams::with_margin(Time::new(100), 100);
    assert_eq!(p.window_start(), Time::ZERO);
    let p = CheckParams::with_margin(Time::new(100), 0);
    assert_eq!(p.window_start(), Time::new(100));
}

#[test]
#[should_panic(expected = "margin exceeds horizon")]
fn check_params_rejects_oversized_margin() {
    let _ = CheckParams::with_margin(Time::new(10), 11);
}
