//! Property-based tests on the formal model (proptest).

use proptest::prelude::*;
use rfd_core::oracles::{
    EventuallyPerfectOracle, EventuallyStrongOracle, MaraboutOracle, Oracle, PerfectOracle,
    RankedOracle,
};
use rfd_core::{
    class_report, respects_lattice, CheckParams, ClassId, FailurePattern, History, ProcessId,
    ProcessSet, Time,
};

fn pid_vec(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..n, 0..n)
}

fn arb_set(n: usize) -> impl Strategy<Value = ProcessSet> {
    pid_vec(n).prop_map(|ids| ids.into_iter().map(ProcessId::new).collect())
}

/// Random pattern over `n` processes with crashes before `horizon`.
fn arb_pattern(n: usize, horizon: u64) -> impl Strategy<Value = FailurePattern> {
    prop::collection::vec((0..n, 0..horizon), 0..n).prop_map(move |crashes| {
        let mut f = FailurePattern::new(n);
        for (ix, t) in crashes {
            f.set_crash(ProcessId::new(ix), Time::new(t));
        }
        f
    })
}

proptest! {
    // ---------- ProcessSet is a lawful finite set algebra ----------

    #[test]
    fn union_is_commutative_and_idempotent(a in arb_set(16), b in arb_set(16)) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(a), a);
    }

    #[test]
    fn intersection_distributes_over_union(
        a in arb_set(16), b in arb_set(16), c in arb_set(16)
    ) {
        prop_assert_eq!(
            a.intersection(b.union(c)),
            a.intersection(b).union(a.intersection(c))
        );
    }

    #[test]
    fn de_morgan_within_universe(a in arb_set(16), b in arb_set(16)) {
        let n = 16;
        prop_assert_eq!(
            a.union(b).complement_within(n),
            a.complement_within(n).intersection(b.complement_within(n))
        );
    }

    #[test]
    fn difference_and_subset_laws(a in arb_set(16), b in arb_set(16)) {
        prop_assert!(a.difference(b).is_subset(&a));
        prop_assert!(a.difference(b).is_disjoint(&b));
        prop_assert_eq!(a.difference(b).union(a.intersection(b)), a);
    }

    #[test]
    fn iteration_matches_membership(a in arb_set(16)) {
        let collected: ProcessSet = a.iter().collect();
        prop_assert_eq!(collected, a);
        prop_assert_eq!(a.iter().count(), a.len());
    }

    // ---------- FailurePattern invariants ----------

    #[test]
    fn crashed_at_is_monotone(f in arb_pattern(8, 100), t1 in 0u64..200, t2 in 0u64..200) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(f.crashed_at(Time::new(lo)).is_subset(&f.crashed_at(Time::new(hi))));
    }

    #[test]
    fn correct_and_faulty_partition(f in arb_pattern(8, 100)) {
        prop_assert!(f.correct().is_disjoint(&f.faulty()));
        prop_assert_eq!(f.correct().union(f.faulty()), ProcessSet::full(8));
    }

    #[test]
    fn prefix_agrees_up_to_cut(f in arb_pattern(8, 100), t in 0u64..150) {
        let pre = f.prefix(Time::new(t));
        prop_assert!(f.agrees_up_to(&pre, Time::new(t)));
        // The prefix has no crashes after t.
        for (_, ct) in pre.iter() {
            if let Some(c) = ct {
                prop_assert!(c <= Time::new(t));
            }
        }
    }

    #[test]
    fn agreement_is_symmetric_and_downward_closed(
        f in arb_pattern(6, 50), g in arb_pattern(6, 50), t in 0u64..80
    ) {
        let t = Time::new(t);
        prop_assert_eq!(f.agrees_up_to(&g, t), g.agrees_up_to(&f, t));
        if f.agrees_up_to(&g, t) {
            prop_assert!(f.agrees_up_to(&g, t.prev()));
        }
    }

    // ---------- History invariants ----------

    #[test]
    fn history_value_is_piecewise_constant(
        changes in prop::collection::vec((1u64..500, 0u32..10), 0..20)
    ) {
        let mut sorted = changes;
        sorted.sort();
        let mut h: History<u32> = History::new(1, 99);
        for (t, v) in &sorted {
            h.set_from(ProcessId::new(0), Time::new(*t), *v);
        }
        // The value at any probe equals the last change at or before it.
        for probe in [0u64, 1, 50, 250, 499, 1_000] {
            let expected = sorted
                .iter().rfind(|(t, _)| *t <= probe)   // NOTE: relies on stable sort order below
                .map(|(_, v)| *v);
            // Recompute properly: last change ≤ probe by time.
            let expected = sorted
                .iter()
                .filter(|(t, _)| *t <= probe)
                .max_by_key(|(t, _)| *t)
                .map(|(_, v)| *v)
                .or(expected)
                .unwrap_or(99);
            prop_assert_eq!(*h.value(ProcessId::new(0), Time::new(probe)), expected);
        }
    }

    // ---------- Oracle class invariants under random patterns ----------

    #[test]
    fn perfect_oracle_is_perfect(f in arb_pattern(6, 200), seed in 0u64..1_000) {
        let horizon = Time::new(500);
        let h = PerfectOracle::new(5, 3).generate(&f, horizon, seed);
        let report = class_report(&f, &h, &CheckParams::with_margin(horizon, 50));
        prop_assert!(report.is_in(ClassId::Perfect), "{f:?}");
    }

    #[test]
    fn ranked_oracle_is_partially_perfect(f in arb_pattern(6, 200), seed in 0u64..1_000) {
        let horizon = Time::new(500);
        let h = RankedOracle::new(5, 3).generate(&f, horizon, seed);
        let report = class_report(&f, &h, &CheckParams::with_margin(horizon, 50));
        prop_assert!(report.is_in(ClassId::PartiallyPerfect), "{f:?}");
        prop_assert!(report.strong_accuracy.is_ok(), "{f:?}");
    }

    #[test]
    fn every_oracle_respects_the_lattice(f in arb_pattern(6, 200), seed in 0u64..1_000) {
        let horizon = Time::new(500);
        let params = CheckParams::with_margin(horizon, 50);
        let reports = [
            class_report(&f, &PerfectOracle::new(5, 3).generate(&f, horizon, seed), &params),
            class_report(
                &f,
                &EventuallyPerfectOracle::new(Time::new(80), 5, 3).generate(&f, horizon, seed),
                &params,
            ),
            class_report(
                &f,
                &EventuallyStrongOracle::new(4).generate(&f, horizon, seed),
                &params,
            ),
            class_report(&f, &RankedOracle::new(5, 3).generate(&f, horizon, seed), &params),
            class_report(&f, &MaraboutOracle::new().generate(&f, horizon, seed), &params),
        ];
        for report in reports {
            prop_assert_eq!(respects_lattice(&report), Ok(()), "{:?}", f);
        }
    }

    #[test]
    fn oracle_generation_is_deterministic(f in arb_pattern(6, 200), seed in 0u64..1_000) {
        let horizon = Time::new(400);
        let o = PerfectOracle::new(5, 3);
        prop_assert_eq!(o.generate(&f, horizon, seed), o.generate(&f, horizon, seed));
    }

    /// The §3.1 realism core: a realistic oracle's history on a pattern
    /// prefix matches its history on the full pattern up to the cut —
    /// with the SAME seed (prefix determinism).
    #[test]
    fn realistic_oracles_are_prefix_determined(
        f in arb_pattern(6, 200), t in 0u64..200, seed in 0u64..1_000
    ) {
        let horizon = Time::new(400);
        let cut = Time::new(t);
        let g = f.prefix(cut);
        let o = PerfectOracle::new(5, 3);
        let h_full = o.generate(&f, horizon, seed);
        let h_pre = o.generate(&g, horizon, seed);
        prop_assert!(h_full.eq_up_to(&h_pre, cut), "{f:?} cut at {cut}");
        let o = RankedOracle::new(5, 3);
        prop_assert!(o.generate(&f, horizon, seed).eq_up_to(&o.generate(&g, horizon, seed), cut));
    }
}
