//! Eventually Perfect (`◇P`) and Eventually Strong (`◇S`) oracles.

use super::{build_suspect_history, mix, perfect_edits, Edit, Oracle};
use crate::pattern::FailurePattern;
use crate::process::{ProcessId, ProcessSet};
use crate::time::Time;
use crate::History;

/// A realistic Eventually Perfect (`◇P`) failure detector generator.
///
/// Before a global stabilization time (GST), each observer makes
/// seed-determined *mistakes*: transient false suspicions of processes that
/// have not crashed. From GST on, the oracle behaves like
/// [`super::PerfectOracle`]: crashed processes are permanently suspected
/// after a bounded delay and nobody is falsely suspected.
///
/// The output at time `t` depends only on crashes up to `t` (mistakes are
/// sampled independently of the pattern's future), so the oracle is
/// realistic — `◇P ∩ R ≠ ∅`, as §3 notes.
#[derive(Clone, Debug)]
pub struct EventuallyPerfectOracle {
    gst: Time,
    base_delay: u64,
    jitter: u64,
    mistakes_per_observer: usize,
    max_mistake_duration: u64,
}

impl EventuallyPerfectOracle {
    /// Creates a `◇P` oracle stabilizing at `gst`.
    #[must_use]
    pub fn new(gst: Time, base_delay: u64, jitter: u64) -> Self {
        Self {
            gst,
            base_delay,
            jitter,
            mistakes_per_observer: 3,
            max_mistake_duration: 20,
        }
    }

    /// Sets how many transient false suspicions each observer makes before
    /// GST (builder style).
    #[must_use]
    pub fn with_mistakes(mut self, count: usize, max_duration: u64) -> Self {
        self.mistakes_per_observer = count;
        self.max_mistake_duration = max_duration.max(1);
        self
    }

    /// The global stabilization time.
    #[must_use]
    pub fn gst(&self) -> Time {
        self.gst
    }

    fn detection_delay(&self, seed: u64, observer: ProcessId, crashed: ProcessId) -> u64 {
        if self.jitter == 0 {
            self.base_delay
        } else {
            self.base_delay
                + mix(seed, observer.index() as u64, crashed.index() as u64) % (self.jitter + 1)
        }
    }

    /// The mistake edits (false suspicions strictly before GST) for each
    /// observer. Mistakes never target an already-crashed process at their
    /// start time; they may overlap a later crash harmlessly (the perfect
    /// component re-adds the suspicion permanently).
    fn mistake_edits(
        &self,
        pattern: &FailurePattern,
        horizon: Time,
        seed: u64,
    ) -> Vec<Vec<(Time, Edit)>> {
        let n = pattern.num_processes();
        let mut events: Vec<Vec<(Time, Edit)>> = vec![Vec::new(); n];
        if self.gst == Time::ZERO {
            return events;
        }
        for (observer_ix, observer_events) in events.iter_mut().enumerate() {
            for k in 0..self.mistakes_per_observer {
                let r = mix(seed ^ 0xABCD, observer_ix as u64, k as u64);
                let target = ProcessId::new((r % n as u64) as usize);
                if target.index() == observer_ix {
                    continue;
                }
                let start = Time::new(r >> 32).ticks() % self.gst.ticks();
                let start = Time::new(start);
                // Only a *false* suspicion counts as a mistake.
                if pattern.is_crashed(target, start) {
                    continue;
                }
                let dur = 1 + (r >> 16) % self.max_mistake_duration;
                let end = start.advance(dur).min(self.gst).min(horizon);
                if start >= end {
                    continue;
                }
                // The perfect component permanently suspects `target` from
                // its detection time; do not let the mistake's removal
                // cancel that permanent suspicion.
                let removal_blocked = pattern.crash_time(target).is_some_and(|ct| {
                    let det =
                        ct.advance(self.detection_delay(seed, ProcessId::new(observer_ix), target));
                    det <= end
                });
                observer_events.push((start, Edit::Add(target)));
                if !removal_blocked {
                    observer_events.push((end, Edit::Remove(target)));
                }
            }
        }
        events
    }
}

impl Default for EventuallyPerfectOracle {
    fn default() -> Self {
        Self::new(Time::new(100), 5, 3)
    }
}

impl Oracle for EventuallyPerfectOracle {
    type Value = ProcessSet;

    fn name(&self) -> &'static str {
        "eventually-perfect"
    }

    fn generate(&self, pattern: &FailurePattern, horizon: Time, seed: u64) -> History<ProcessSet> {
        let mut events = perfect_edits(pattern, horizon, |observer, crashed| {
            self.detection_delay(seed, observer, crashed)
        });
        for (observer_ix, mut list) in self
            .mistake_edits(pattern, horizon, seed)
            .into_iter()
            .enumerate()
        {
            events[observer_ix].append(&mut list);
        }
        build_suspect_history(pattern.num_processes(), events)
    }
}

/// A realistic Eventually Strong (`◇S`) generator that is *not* `◇P`.
///
/// Each observer permanently suspects every process **except** the
/// lowest-index process that has not crashed *so far* (a past-determined
/// choice, hence realistic). When that process crashes, immunity moves to
/// the next lowest-index survivor. Eventually immunity settles on the
/// lowest-index *correct* process, giving eventual weak accuracy; all other
/// correct processes stay falsely suspected forever, so eventual strong
/// accuracy fails.
#[derive(Clone, Debug, Default)]
pub struct EventuallyStrongOracle {
    detection_delay: u64,
}

impl EventuallyStrongOracle {
    /// Creates a `◇S` oracle that notices crashes `detection_delay` ticks
    /// late.
    #[must_use]
    pub fn new(detection_delay: u64) -> Self {
        Self { detection_delay }
    }
}

impl Oracle for EventuallyStrongOracle {
    type Value = ProcessSet;

    fn name(&self) -> &'static str {
        "eventually-strong"
    }

    fn generate(&self, pattern: &FailurePattern, horizon: Time, _seed: u64) -> History<ProcessSet> {
        let n = pattern.num_processes();
        // Immunity transition times: the immune process is the lowest-index
        // one not *known* crashed (crash time + detection delay elapsed).
        let mut transitions: Vec<(Time, ProcessId)> = Vec::new();
        let mut known_crashed = ProcessSet::empty();
        // Collect detection events in time order.
        let mut detections: Vec<(Time, ProcessId)> = pattern
            .iter()
            .filter_map(|(pid, ct)| ct.map(|c| (c.advance(self.detection_delay), pid)))
            .collect();
        detections.sort_by_key(|(t, _)| *t);
        let alive_min = |known: ProcessSet| -> ProcessId {
            known
                .complement_within(n)
                .min()
                .unwrap_or(ProcessId::new(0))
        };
        transitions.push((Time::ZERO, alive_min(known_crashed)));
        for (t, pid) in detections {
            if t > horizon {
                break;
            }
            known_crashed.insert(pid);
            let new_immune = alive_min(known_crashed);
            if new_immune != transitions.last().expect("nonempty").1 {
                transitions.push((t, new_immune));
            }
        }
        let mut history = History::new(n, ProcessSet::empty());
        // Every observer outputs "everyone but the immune process" at all
        // times; crashed immune candidates get folded in automatically.
        for observer_ix in 0..n {
            let observer = ProcessId::new(observer_ix);
            for &(t, immune) in &transitions {
                let mut suspects = ProcessSet::full(n);
                suspects.remove(immune);
                history.set_from(observer, t, suspects);
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{class_report, ClassId};
    use crate::properties::CheckParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn ev_perfect_histories_are_eventually_perfect_not_perfect() {
        let oracle = EventuallyPerfectOracle::new(Time::new(100), 4, 2).with_mistakes(4, 15);
        let mut rng = StdRng::seed_from_u64(11);
        let horizon = Time::new(600);
        let params = CheckParams::with_margin(horizon, 50);
        let mut saw_mistake = false;
        for seed in 0..30 {
            let f = FailurePattern::random(6, 5, Time::new(400), &mut rng);
            let h = oracle.generate(&f, horizon, seed);
            let report = class_report(&f, &h, &params);
            assert!(
                report.is_in(ClassId::EventuallyPerfect),
                "seed {seed}, pattern {f:?}: {:?}",
                report.eventual_strong_accuracy
            );
            if !report.is_in(ClassId::Perfect) {
                saw_mistake = true;
            }
        }
        assert!(saw_mistake, "◇P oracle should make at least one mistake");
    }

    #[test]
    fn ev_perfect_is_accurate_after_gst() {
        let oracle = EventuallyPerfectOracle::new(Time::new(50), 3, 0).with_mistakes(5, 30);
        let f = FailurePattern::new(4).with_crash(p(3), Time::new(200));
        let h = oracle.generate(&f, Time::new(400), 5);
        // In (GST, crash): nobody should be suspected.
        for t in [60u64, 100, 150, 199] {
            for obs in 0..4 {
                assert!(
                    h.value(p(obs), Time::new(t)).is_empty(),
                    "false suspicion after GST at t={t}"
                );
            }
        }
        // After crash + delay: p3 suspected.
        assert!(h.value(p(0), Time::new(203)).contains(p(3)));
    }

    #[test]
    fn ev_strong_is_eventually_strong_but_not_eventually_perfect() {
        let oracle = EventuallyStrongOracle::new(3);
        let horizon = Time::new(500);
        let params = CheckParams::with_margin(horizon, 50);
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..20 {
            let f = FailurePattern::random(5, 4, Time::new(300), &mut rng);
            let h = oracle.generate(&f, horizon, seed);
            let report = class_report(&f, &h, &params);
            assert!(
                report.is_in(ClassId::EventuallyStrong),
                "pattern {f:?}: {:?}",
                report.eventual_weak_accuracy
            );
            // With ≥ 2 correct processes there is always a falsely
            // suspected correct process, so ◇P fails.
            if f.correct().len() >= 2 {
                assert!(!report.is_in(ClassId::EventuallyPerfect), "pattern {f:?}");
            }
        }
    }

    #[test]
    fn ev_strong_immunity_moves_to_next_survivor() {
        let oracle = EventuallyStrongOracle::new(2);
        let f = FailurePattern::new(3).with_crash(p(0), Time::new(10));
        let h = oracle.generate(&f, Time::new(100), 0);
        // Before detection: p0 immune.
        assert!(!h.value(p(1), Time::new(5)).contains(p(0)));
        assert!(h.value(p(1), Time::new(5)).contains(p(2)));
        // After detection (t=12): p1 immune, p0 suspected.
        assert!(h.value(p(2), Time::new(12)).contains(p(0)));
        assert!(!h.value(p(2), Time::new(12)).contains(p(1)));
    }
}
